//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! The build environment has no access to crates.io, so this shim provides
//! the slice of the rand 0.8 surface the workspace uses: [`RngCore`],
//! [`Rng`] (`gen_bool`, `gen_range`), [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic
//! in its seed, which is all the workload generators require (scripts must
//! replay identically across engines). Streams will not match upstream
//! `rand`'s `SmallRng` byte-for-byte.

/// The low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample from (integer ranges).
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A bool that is `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        // 53 bits of mantissa: uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A value uniform over `range` (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small fast deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..10).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
