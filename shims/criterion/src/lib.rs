//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the harness subset the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`, `bench_with_input`,
//! `finish`), [`Bencher`] (`iter`, `iter_batched`, `iter_batched_ref`),
//! [`BenchmarkId`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It measures honestly but simply: each benchmark runs `sample_size`
//! samples and reports the median wall-clock time per iteration on stdout.
//! There is no statistical analysis, warm-up calibration, or HTML report.

use std::time::{Duration, Instant};

/// How batched setups are sized. The shim runs one setup per measured
/// routine invocation regardless of the variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Names a benchmark: either a bare string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs and times one benchmark's iterations.
pub struct Bencher {
    samples: usize,
    collected: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.collected.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` value each sample, consuming it.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.collected.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` value each sample, by `&mut`.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.collected.push(start.elapsed());
        }
    }
}

/// The top-level harness handle passed to every bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), samples: 20 }
    }

    /// Benches a standalone function.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let mut group = BenchmarkGroup { _parent: self, name: String::new(), samples: 20 };
        group.bench_function(id, f);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.samples = n;
        self
    }

    /// Benches `f`, reporting under `id`.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher { samples: self.samples, collected: Vec::new() };
        f(&mut bencher);
        self.report(&id.into_id(), &mut bencher.collected);
    }

    /// Benches `f` with an input, reporting under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut bencher = Bencher { samples: self.samples, collected: Vec::new() };
        f(&mut bencher, input);
        self.report(&id.into_id(), &mut bencher.collected);
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &str, times: &mut [Duration]) {
        let full =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{}", self.name, id) };
        if times.is_empty() {
            println!("{full:<50} no samples");
            return;
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        let (lo, hi) = (times[0], times[times.len() - 1]);
        println!(
            "{full:<50} median {:>12.3?}   min {:>12.3?}   max {:>12.3?}   ({} samples)",
            median,
            lo,
            hi,
            times.len()
        );
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("iter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        let mut batched = 0;
        group.bench_function(BenchmarkId::new("batched", 7), |b| {
            b.iter_batched_ref(|| vec![1, 2, 3], |v| batched += v.len(), BatchSize::SmallInput)
        });
        assert_eq!(batched, 9);
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| ()));
    }
}
