//! Offline stand-in for the `rustc-hash` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external crates it needs as minimal shims (see
//! `shims/` in the repository root). This one reimplements the Fx hash —
//! a fast non-cryptographic multiply-rotate hash — with the same public
//! surface the workspace uses: [`FxHasher`], [`FxHashMap`], [`FxHashSet`],
//! [`FxBuildHasher`].
//!
//! The hash values are not guaranteed to match upstream `rustc-hash`
//! bit-for-bit; nothing in the workspace depends on concrete hash values.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A speed-oriented hasher in the style of FxHash: word-at-a-time
/// multiply-xor with a Fibonacci-hashing constant.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A [`BuildHasher`](std::hash::BuildHasher) producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let s: FxHashSet<u64> = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(&42));
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hellp"));
        assert_ne!(h(b"abc"), h(b"abcabc"));
    }
}
