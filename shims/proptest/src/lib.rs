//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! reimplements the slice of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` and `boxed`,
//! * strategies for integer ranges, tuples, `&'static str` patterns
//!   (a character-class subset of regex syntax), [`collection::vec`], and
//!   [`bool::ANY`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`prop_oneof!`] macros,
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest, deliberately accepted: **no shrinking**
//! (failures report the raw generated case; runs are deterministic per test
//! name, so failures reproduce), the string strategies accept only the
//! `[class]{m,n}` regex subset, and the default case count is 64.

pub mod strategy {
    //! Strategies: composable random value generators.

    use crate::test_runner::TestRng;

    /// A generator of values for property tests.
    ///
    /// Unlike real proptest there is no value tree: sampling draws a value
    /// directly and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// Object-safe sampling, for [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn sample_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V> {
        inner: Box<dyn DynStrategy<V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            self.inner.sample_dyn(rng)
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> OneOf<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// A strategy that always yields a clone of its value (proptest's
    /// `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn sample(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// `&str` patterns are string strategies over a regex subset:
    /// sequences of literal characters and `[class]` atoms, each with an
    /// optional `{n}` / `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let class = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("repetition bound"),
                        n.trim().parse::<usize>().expect("repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    /// Expands a character class body (`a-zA-Z0-9_.:+-`) into its members.
    /// A `-` that is first, last, or follows a range is literal.
    fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
        assert!(!body.is_empty(), "empty `[]` class in pattern `{pattern}`");
        let mut members = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i], body[i + 2]);
                assert!(lo <= hi, "inverted range `{lo}-{hi}` in pattern `{pattern}`");
                for c in lo..=hi {
                    members.push(c);
                }
                i += 3;
            } else {
                members.push(body[i]);
                i += 1;
            }
        }
        members
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A `Vec` strategy: length drawn from `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy generating both booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

pub mod test_runner {
    //! The (minimal) test runner: configuration and deterministic RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic per-test generator (xorshift64*), seeded from the
    /// test's name so each property gets a distinct but reproducible stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name.
        pub fn from_name(name: &str) -> TestRng {
            let mut state: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: state | 1 }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in `0..bound` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Supports the `proptest!` forms the workspace
/// uses: an optional leading `#![proptest_config(expr)]`, then any number
/// of documented `#[test]` functions whose arguments are `name in strategy`
/// pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // Real proptest bodies may `return Ok(())` early: run the
                // body in a Result-returning closure, as proptest does.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), ::std::string::String> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __outcome.expect("property returned Err");
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strategies_match_their_class() {
        let mut rng = TestRng::from_name("pattern");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.len()), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = Strategy::sample(&"[A-Z][ a-zA-Z0-9_.:+-]{0,5}", &mut rng);
            assert!(t.chars().next().unwrap().is_ascii_uppercase());
            assert!(t.chars().skip(1).all(|c| c.is_ascii_alphanumeric() || " _.:+-".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 3i64..9, pair in (0usize..4, 0u32..2)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(pair.0 < 4 && pair.1 < 2);
        }

        #[test]
        fn oneof_vec_and_map(
            v in crate::collection::vec(prop_oneof![0u32..5, 10u32..15], 1..6),
            flag in crate::bool::ANY,
            doubled in (0u32..10).prop_map(|n| n * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&n| n < 5 || (10..15).contains(&n)));
            prop_assert!(flag == (flag as u8 == 1));
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }
}
