//! A belief-revision session in the TMS tradition (Doyle 1979): default
//! reasoning about flying birds, maintained incrementally with supports.
//!
//! The classic non-monotonic staircase: birds fly by default, penguins are
//! abnormal, sick penguins in an aviary with a heater… each new observation
//! *revises* earlier conclusions rather than just adding to them.
//!
//! ```text
//! cargo run --example belief_revision
//! ```

use stratamaint::core::strategy::FactLevelEngine;
use stratamaint::core::MaintenanceEngine;
use stratamaint::datalog::{Fact, Program};

fn show(engine: &FactLevelEngine, step: &str) {
    let beliefs: Vec<String> = engine
        .model()
        .sorted_facts()
        .iter()
        .filter(|f| f.rel.as_str() == "flies" || f.rel.as_str() == "grounded")
        .map(ToString::to_string)
        .collect();
    println!("{step:<44} beliefs: {}", beliefs.join(", "));
}

fn main() {
    let program = Program::parse(
        "% Default reasoning, stratified:
         abnormal(X) :- penguin(X).
         flies(X)    :- bird(X), !abnormal(X).
         grounded(X) :- bird(X), !flies(X).

         bird(tweety).",
    )
    .expect("parses");

    // The fact-level engine keeps one support per *fact* — the closest
    // analogue of a TMS justification network (paper §5.2), so revisions
    // touch exactly the affected beliefs.
    let mut engine = FactLevelEngine::new(program).expect("stratified");
    show(&engine, "start: bird(tweety)");
    assert!(engine.model().contains_parsed("flies(tweety)"));

    // Learning that tweety is a penguin RETRACTS the belief flies(tweety):
    // an insertion that causes a deletion.
    engine.insert_fact(Fact::parse("penguin(tweety)").unwrap()).unwrap();
    show(&engine, "learn: penguin(tweety)");
    assert!(!engine.model().contains_parsed("flies(tweety)"));
    assert!(engine.model().contains_parsed("grounded(tweety)"));

    // A second bird is unaffected — supports keep revision local.
    let stats = engine.insert_fact(Fact::parse("bird(woody)").unwrap()).unwrap();
    show(&engine, "learn: bird(woody)");
    assert!(engine.model().contains_parsed("flies(woody)"));
    assert_eq!(stats.removed, 0, "adding woody disturbs no existing belief");

    // Retracting the penguin observation restores the default.
    engine.delete_fact(Fact::parse("penguin(tweety)").unwrap()).unwrap();
    show(&engine, "retract: penguin(tweety)");
    assert!(engine.model().contains_parsed("flies(tweety)"));

    // Revising the *rules*: exceptional evidence can be asserted directly.
    // flies(tweety) asserted as an observation survives any abnormality.
    engine.insert_fact(Fact::parse("flies(tweety)").unwrap()).unwrap();
    engine.insert_fact(Fact::parse("penguin(tweety)").unwrap()).unwrap();
    show(&engine, "observe flies(tweety); learn penguin again");
    assert!(
        engine.model().contains_parsed("flies(tweety)"),
        "direct observation outweighs the default"
    );

    println!("\nEach revision touched only the affected beliefs — the");
    println!("fact-level supports played the role of a justification network.");
}
