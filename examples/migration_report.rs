//! Migration comparison across all strategies on synthetic workloads —
//! a compact version of experiment E7 (see EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release --example migration_report
//! ```

use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{EngineBox, MaintenanceEngine, UpdateStats};
use stratamaint::datalog::Program;
use stratamaint::workload::script::{random_fact_script, ScriptConfig};
use stratamaint::workload::synth;

fn replay(engine: &mut dyn MaintenanceEngine, script: &[stratamaint::core::Update]) -> UpdateStats {
    let mut total = UpdateStats::default();
    for update in script {
        let stats = engine.apply(update).expect("script updates are valid");
        total.accumulate(&stats);
    }
    total
}

fn main() {
    let workloads: Vec<(&str, Program)> = vec![
        ("conference(60 papers)", synth::conference(60, 8, 1)),
        ("tc_complement(10 nodes)", synth::tc_complement(10, 18, 2)),
        ("bom(depth 4)", synth::bom(4, 3, 3)),
    ];
    let cfg = ScriptConfig { len: 40, insert_prob: 0.5 };

    println!(
        "{:<26} {:<20} {:>8} {:>9} {:>12}",
        "workload", "strategy", "removed", "migrated", "supportKiB"
    );
    for (name, program) in &workloads {
        let script = random_fact_script(program, &cfg, 42);
        // Fact-level supports are excluded as in E7 (their bookkeeping
        // dominates the table); everything else comes from the registry.
        let registry = EngineRegistry::standard();
        let mut engines: Vec<EngineBox> = registry
            .entries()
            .filter(|e| e.name != "fact-level")
            .map(|e| registry.build(e.name, program.clone()).unwrap())
            .collect();
        let mut reference: Option<Vec<stratamaint::datalog::Fact>> = None;
        for engine in &mut engines {
            let total = replay(engine.as_mut(), &script);
            // All engines must land on the same model.
            let facts = engine.model().sorted_facts();
            match &reference {
                None => reference = Some(facts),
                Some(r) => assert_eq!(r, &facts, "{} diverged", engine.name()),
            }
            println!(
                "{:<26} {:<20} {:>8} {:>9} {:>12.1}",
                name,
                engine.name(),
                total.removed,
                total.migrated,
                total.support_bytes as f64 / 1024.0
            );
        }
        println!();
    }
    println!("Expected shape (paper §§4–5): migration shrinks as supports get");
    println!("richer — static ≥ dynamic-single ≥ dynamic-multi ≈ cascade — while");
    println!("bookkeeping grows; the cascade gets multi-level precision at");
    println!("rule-pointer cost, which is the paper's recommended compromise.");
}
