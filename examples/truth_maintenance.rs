//! The paper's belief-revision lineage made executable: the same stratified
//! database maintained three ways —
//!
//! 1. by a maintenance engine (the paper's contribution),
//! 2. by Doyle's JTMS via the ground-justification bridge,
//! 3. (for the definite fragment) by de Kleer's ATMS, whose labels are the
//!    fact-level supports the paper's §5.2 weighs and rejects.
//!
//! All three agree on what is believed; they differ in bookkeeping — which
//! is the paper's whole point.
//!
//! ```text
//! cargo run --example truth_maintenance
//! ```

use stratamaint::core::strategy::CascadeEngine;
use stratamaint::core::MaintenanceEngine;
use stratamaint::datalog::{Fact, Program};
use stratamaint::tms::bridge::{FactSupports, JtmsBridge};

fn main() {
    let src = "submitted(1). submitted(2). submitted(3). accepted(2).
               rejected(X) :- submitted(X), !accepted(X).";
    let program = Program::parse(src).expect("parses");

    // 1. The paper's maintenance engine.
    let mut engine = CascadeEngine::new(program.clone()).expect("stratified");

    // 2. Doyle's JTMS over the grounded program.
    let mut jtms = JtmsBridge::new(&program, 100_000).expect("grounds");

    println!("== initial beliefs (engine vs JTMS) ==");
    let model_facts = engine.model().sorted_facts();
    assert_eq!(jtms.believed_facts(), model_facts, "JTMS IN-set = M(P)");
    for f in &model_facts {
        println!("  {f}");
    }

    // The same update, both ways: insert accepted(1).
    let accepted1 = Fact::parse("accepted(1)").unwrap();
    engine.insert_fact(accepted1.clone()).expect("insert");
    jtms.assert_fact(accepted1);
    println!("\n== after INSERT accepted(1) ==");
    assert_eq!(jtms.believed_facts(), engine.model().sorted_facts());
    assert!(!jtms.believes(&Fact::parse("rejected(1)").unwrap()));
    println!("  engine and JTMS still agree; rejected(1) retracted by both");

    // And a retraction: delete accepted(2).
    let accepted2 = Fact::parse("accepted(2)").unwrap();
    engine.delete_fact(accepted2.clone()).expect("delete");
    jtms.retract_fact(&accepted2);
    println!("\n== after DELETE accepted(2) ==");
    assert_eq!(jtms.believed_facts(), engine.model().sorted_facts());
    assert!(jtms.believes(&Fact::parse("rejected(2)").unwrap()));
    println!("  engine and JTMS still agree; rejected(2) believed by both");

    // 3. ATMS fact-level supports on a definite program: the minimal sets
    //    of asserted facts behind each belief (§5.2's rejected alternative).
    let definite = Program::parse(
        "uses(engine, piston). uses(engine, spark). uses(car, engine).
         uses(car, wheel).
         contains(X, Y) :- uses(X, Y).
         contains(X, Z) :- contains(X, Y), uses(Y, Z).",
    )
    .expect("parses");
    let fs = FactSupports::new(&definite, 100_000).expect("definite");
    println!("\n== ATMS fact-level supports (definite fragment) ==");
    for fact_str in ["contains(car, piston)", "contains(car, wheel)"] {
        let f = Fact::parse(fact_str).unwrap();
        for sup in fs.supports_of(&f) {
            let leaves: Vec<String> = sup.iter().map(ToString::to_string).collect();
            println!("  {f}  ⇐  {{{}}}", leaves.join(", "));
        }
    }
    // Deletion without recomputation: does contains(car, piston) survive
    // deleting uses(car, wheel)? The label answers directly.
    let survives = fs.survives_deletion(
        &Fact::parse("contains(car, piston)").unwrap(),
        &[Fact::parse("uses(car, wheel)").unwrap()],
    );
    println!("\n  contains(car, piston) survives deleting uses(car, wheel)? {survives}");
    assert!(survives);
    let gone = !fs.survives_deletion(
        &Fact::parse("contains(car, piston)").unwrap(),
        &[Fact::parse("uses(car, engine)").unwrap()],
    );
    println!("  …and dies with uses(car, engine)? {gone}");
    assert!(gone);
    println!(
        "\n  bookkeeping: {} label environments for {} nodes — the cost the paper rejects",
        fs.bookkeeping_size(),
        fs.atms().num_nodes(),
    );
}
