//! A bill-of-materials manufacturing scenario: which assemblies are
//! buildable given current stock? Stock movements are fact updates; the
//! engine keeps the `buildable`/`blocked` views consistent incrementally.
//!
//! ```text
//! cargo run --example bill_of_materials
//! ```

use stratamaint::core::strategy::CascadeEngine;
use stratamaint::core::MaintenanceEngine;
use stratamaint::datalog::{Fact, Program};

fn main() {
    let program = Program::parse(
        "% A bicycle and its parts.
         part(bike). part(frame). part(wheel). part(tube). part(valve). part(bell).
         uses(bike, frame). uses(bike, wheel). uses(bike, bell).
         uses(wheel, tube). uses(tube, valve).
         atomic(frame). atomic(valve). atomic(bell).
         in_stock(frame). in_stock(valve). in_stock(bell).

         contains(X, Y) :- uses(X, Y).
         contains(X, Z) :- contains(X, Y), contains(Y, Z).
         missing(X)   :- part(X), atomic(X), !in_stock(X).
         blocked(X)   :- contains(X, Y), missing(Y).
         buildable(X) :- part(X), !blocked(X), !missing(X).",
    )
    .expect("parses");

    let mut engine = CascadeEngine::new(program).expect("stratified");

    let report = |e: &CascadeEngine, label: &str| {
        let buildable: Vec<String> =
            e.model().facts_of("buildable".into()).map(|f| f.args[0].to_string()).collect();
        let mut buildable = buildable;
        buildable.sort();
        println!("{label:<38} buildable: {}", buildable.join(", "));
    };

    report(&engine, "initial stock");
    assert!(engine.model().contains_parsed("buildable(bike)"));

    // The valve supplier runs dry: everything containing a valve blocks.
    engine.delete_fact(Fact::parse("in_stock(valve)").unwrap()).unwrap();
    report(&engine, "valve out of stock");
    assert!(engine.model().contains_parsed("blocked(bike)"));
    assert!(engine.model().contains_parsed("blocked(wheel)"));
    assert!(engine.model().contains_parsed("buildable(bell)"));

    // A redesign: tubes no longer need valves (tubeless!). The rule update
    // unblocks the wheel and the bike without touching stock.
    use stratamaint::datalog::Rule;
    engine.delete_rule(Rule::parse("contains(X, Y) :- uses(X, Y).").unwrap()).unwrap();
    engine
        .insert_rule(Rule::parse("contains(X, Y) :- uses(X, Y), !deprecated(Y).").unwrap())
        .unwrap();
    engine.insert_fact(Fact::parse("deprecated(valve)").unwrap()).unwrap();
    report(&engine, "valves deprecated by redesign");
    assert!(engine.model().contains_parsed("buildable(bike)"));

    // Back-order arrives anyway.
    engine.insert_fact(Fact::parse("in_stock(valve)").unwrap()).unwrap();
    report(&engine, "valve restocked");

    println!("\nEvery view change was computed incrementally from supports,");
    println!("never by rebuilding the whole bill-of-materials closure.");
}
