//! The paper's conference examples (CONF, CONGRESS, MEET) run against every
//! maintenance strategy, showing exactly where each one migrates facts.
//!
//! ```text
//! cargo run --example conference
//! ```

use stratamaint::core::strategy::{
    CascadeEngine, DynamicMultiEngine, DynamicSingleEngine, StaticEngine,
};
use stratamaint::core::{EngineBox, MaintenanceEngine, Update};
use stratamaint::datalog::Fact;
use stratamaint::workload::paper;

fn engines_for(program: &stratamaint::datalog::Program) -> Vec<EngineBox> {
    vec![
        Box::new(StaticEngine::new(program.clone()).unwrap()),
        Box::new(DynamicSingleEngine::new(program.clone()).unwrap()),
        Box::new(DynamicMultiEngine::new(program.clone()).unwrap()),
        Box::new(CascadeEngine::new(program.clone()).unwrap()),
    ]
}

fn run(title: &str, program: stratamaint::datalog::Program, update: Update) {
    println!("── {title} ──");
    println!("   update: {update}");
    println!("   {:<16} {:>8} {:>9}", "strategy", "removed", "migrated");
    for mut engine in engines_for(&program) {
        let stats = engine.apply(&update).expect("update applies");
        println!("   {:<16} {:>8} {:>9}", engine.name(), stats.removed, stats.migrated);
    }
    println!();
}

fn main() {
    // Example 1 (CONF): inserting rejected(4) — the static solution
    // migrates the *asserted* fact accepted(4); the others keep it put.
    run(
        "Example 1: CONF, insert rejected(l+1)",
        paper::conf(3),
        Update::InsertFact(Fact::parse("rejected(4)").unwrap()),
    );

    // Example 3 (CONGRESS): accepted(l) has a second, smaller derivation;
    // keeping the pairwise-smaller support avoids migrating it.
    run(
        "Example 3: CONGRESS, insert rejected(l)",
        paper::congress(3),
        Update::InsertFact(Fact::parse("rejected(3)").unwrap()),
    );

    // Example 4 (MEET): accepted(paper1) is derivable two ways; a single
    // support migrates it, sets-of-sets (and rule pointers) do not.
    run(
        "Example 4: MEET, insert rejected(paper1)",
        paper::meet(3, 1),
        Update::InsertFact(Fact::parse("rejected(paper1)").unwrap()),
    );

    // §5.1 cascade demo: INSERT(p) into {r ← p, q ← r, q ← ¬p}.
    // Only the cascade engine leaves q untouched.
    run(
        "§5.1 demo: insert p into {r ← p, q ← r, q ← ¬p}",
        paper::cascade_demo(),
        Update::InsertFact(Fact::parse("p").unwrap()),
    );

    println!("All strategies agree on the final model; they differ only in");
    println!("how many facts they removed erroneously along the way.");
}
