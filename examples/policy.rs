//! An access-control policy as a maintained stratified database: deny by
//! default, explicit grants, revocations that dominate, and an integrity
//! constraint guarding every update.
//!
//! Shows the full read/write surface: incremental updates, conjunctive
//! queries with negation over the maintained model, and denial constraints
//! with automatic rollback.
//!
//! ```text
//! cargo run --example policy
//! ```

use stratamaint::core::constraints::{Constraint, GuardedEngine};
use stratamaint::core::strategy::CascadeEngine;
use stratamaint::datalog::{Fact, Program, Query};

fn main() {
    let program = Program::parse(
        "% Subjects, resources, grants.
         employee(ann). employee(bob). employee(cat).
         resource(payroll). resource(wiki). resource(deploy_key).
         public(wiki).
         granted(ann, payroll). granted(bob, deploy_key).
         suspended(bob).

         % Policy: public resources are open to all employees; otherwise a
         % grant is needed; suspension revokes everything.
         may_access(U, R) :- employee(U), resource(R), public(R), !suspended(U).
         may_access(U, R) :- granted(U, R), !suspended(U).
         denied(U, R) :- employee(U), resource(R), !may_access(U, R).",
    )
    .expect("parses");

    let engine = CascadeEngine::new(program).expect("stratified");
    let mut db = GuardedEngine::unconstrained(engine);

    // Nobody may ever access the payroll while suspended — as a denial.
    db.add_constraint(Constraint::parse(":- suspended(U), may_access(U, payroll).").unwrap())
        .expect("initially satisfied");

    let who_can = Query::parse("may_access(U, R)").unwrap();
    println!("== access matrix ==");
    for row in who_can.eval(db.model()) {
        println!("  {}", stratamaint::datalog::query::render_row(&who_can, &row));
    }

    // Bob is suspended: the deploy key grant is dormant.
    let bob_key = Fact::parse("may_access(bob, deploy_key)").unwrap();
    assert!(!db.model().contains(&bob_key));

    // Reinstating bob revives his grant AND his wiki access — one deletion,
    // several additions.
    println!("\n== DELETE suspended(bob) ==");
    let stats = db.delete_fact(Fact::parse("suspended(bob)").unwrap()).expect("allowed");
    println!("  net added {}, net removed {}", stats.net_added, stats.net_removed);
    assert!(db.model().contains(&bob_key));

    // The constraint guards *combinations*: granting payroll to cat is
    // fine, but granting it and suspending her afterwards is fine too —
    // the constraint only forbids access-while-suspended, and suspension
    // retracts access. Try to sneak a violation in: a rule that bypasses
    // the suspension check.
    println!("\n== try to install a backdoor rule ==");
    let backdoor =
        stratamaint::datalog::Rule::parse("may_access(U, payroll) :- granted(U, payroll).")
            .unwrap();
    db.insert_fact(Fact::parse("suspended(ann)").unwrap()).expect("suspending ann is fine");
    match db.insert_rule(backdoor) {
        Err(e) => println!("  rejected: {e}"),
        Ok(_) => unreachable!("the backdoor would let suspended ann reach payroll"),
    }
    assert_eq!(db.program().num_rules(), 3, "backdoor rolled back");

    // Queries keep answering from the maintained model.
    let denied = Query::parse("denied(U, R), !suspended(U)").unwrap();
    println!("\n== denied pairs (non-suspended users) ==");
    for row in denied.eval(db.model()) {
        println!("  {}", stratamaint::datalog::query::render_row(&denied, &row));
    }
    println!("\nEvery update kept the policy model exact and the invariant enforced.");
}
