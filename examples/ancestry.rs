//! Genealogy with negation: recursive ancestry, orphan/bachelor-style
//! defaults, and non-monotonic revision as the family tree changes.
//!
//! Shows the maintained model *and* why-provenance: every belief can be
//! traced to asserted facts and absences.
//!
//! ```text
//! cargo run --example ancestry
//! ```

use stratamaint::core::explain::Explainer;
use stratamaint::core::strategy::DynamicMultiEngine;
use stratamaint::core::MaintenanceEngine;
use stratamaint::datalog::{Fact, Program};

fn main() {
    let program = Program::parse(
        "% A three-generation family.
         parent(alice, bob).  parent(alice, carol).
         parent(bob, dave).   parent(carol, erin).
         person(alice). person(bob). person(carol). person(dave). person(erin).
         person(frank).
         married(alice). married(bob).

         ancestor(X, Y)  :- parent(X, Y).
         ancestor(X, Z)  :- parent(X, Y), ancestor(Y, Z).
         has_child(X)    :- parent(X, Y).
         childless(X)    :- person(X), !has_child(X).
         has_parent(Y)   :- parent(X, Y).
         founder(X)      :- person(X), !has_parent(X).
         bachelor(X)     :- person(X), !married(X), has_child(X).",
    )
    .expect("parses");

    let mut engine = DynamicMultiEngine::new(program.clone()).expect("stratified");
    println!("== initial model ==");
    for f in engine.model().sorted_facts() {
        println!("  {f}");
    }

    // Why is carol not a founder? Why is frank childless?
    let explainer = Explainer::new(&program).expect("stratified");
    let childless_frank = Fact::parse("childless(frank)").unwrap();
    println!("\nwhy childless(frank)?");
    println!("{}", explainer.explain(&childless_frank).expect("in model"));

    let anc = Fact::parse("ancestor(alice, erin)").unwrap();
    println!("\nwhy ancestor(alice, erin)?");
    println!("{}", explainer.explain(&anc).expect("in model"));

    // Frank adopts dave: frank stops being childless — and becomes a
    // bachelor (unmarried with a child). One insertion, one deletion, one
    // addition elsewhere: non-monotonic revision.
    println!("\n== INSERT parent(frank, dave) ==");
    let stats = engine.insert_fact(Fact::parse("parent(frank, dave)").unwrap()).expect("insert");
    println!(
        "  removed {} (migrated {}), net added {}",
        stats.removed, stats.migrated, stats.net_added
    );
    assert!(!engine.model().contains_parsed("childless(frank)"));
    assert!(engine.model().contains_parsed("bachelor(frank)"));
    assert!(engine.model().contains_parsed("ancestor(frank, dave)"));

    // Erin's line is erased: carol becomes childless again, ancestor pairs
    // through erin disappear.
    println!("== DELETE parent(carol, erin) ==");
    let stats = engine.delete_fact(Fact::parse("parent(carol, erin)").unwrap()).expect("delete");
    println!(
        "  removed {} (migrated {}), net added {}",
        stats.removed, stats.migrated, stats.net_added
    );
    assert!(engine.model().contains_parsed("childless(carol)"));
    assert!(!engine.model().contains_parsed("ancestor(alice, erin)"));
    assert!(engine.model().contains_parsed("founder(erin)"));

    println!("\n== final model ==");
    for f in engine.model().sorted_facts() {
        println!("  {f}");
    }
}
