//! Quickstart: the paper's §3 PODS database, maintained incrementally.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use stratamaint::core::strategy::CascadeEngine;
use stratamaint::core::MaintenanceEngine;
use stratamaint::datalog::{Fact, Program};

fn main() {
    // The PODS database: submissions, some acceptances, and the rule
    //   rejected(X) :- submitted(X), !accepted(X).
    let program = Program::parse(
        "submitted(1). submitted(2). submitted(3). submitted(4). submitted(5).
         accepted(2). accepted(4).
         rejected(X) :- submitted(X), !accepted(X).",
    )
    .expect("program parses");

    let mut engine = CascadeEngine::new(program).expect("program is stratified");
    println!("M(PODS)  = {:?}\n", engine.model());

    // Insertion of accepted(1) DELETES rejected(1) from the model:
    // maintenance of stratified databases is non-monotonic.
    let stats =
        engine.insert_fact(Fact::parse("accepted(1)").unwrap()).expect("insert accepted(1)");
    println!("INSERT(accepted(1))");
    println!("  net added   = {}", stats.net_added);
    println!("  net removed = {}", stats.net_removed);
    println!("M(PODS') = {:?}\n", engine.model());
    assert!(!engine.model().contains_parsed("rejected(1)"));

    // Deletion of accepted(2) ADDS rejected(2).
    let stats =
        engine.delete_fact(Fact::parse("accepted(2)").unwrap()).expect("delete accepted(2)");
    println!("DELETE(accepted(2))");
    println!("  net added   = {}", stats.net_added);
    println!("  net removed = {}", stats.net_removed);
    println!("M(PODS'') = {:?}\n", engine.model());
    assert!(engine.model().contains_parsed("rejected(2)"));

    // Rule updates work too — and must keep the program stratified.
    use stratamaint::datalog::Rule;
    engine
        .insert_rule(Rule::parse("camera_ready(X) :- accepted(X), !withdrawn(X).").unwrap())
        .expect("insert rule");
    println!("after rule insert: {:?}", engine.model());

    let err = engine
        .insert_rule(Rule::parse("withdrawn(X) :- submitted(X), !camera_ready(X).").unwrap())
        .expect_err("recursion through negation must be rejected");
    println!("rejected as expected: {err}");
}
