//! The MVCC read path, end to end: snapshot reads never block behind the
//! engine mutex, acknowledged writes are already readable
//! (read-your-writes via commit-version tokens), and — the acceptance
//! bar — snapshot query results are **identical** to engine-mutex query
//! results after every commit, for all registry strategies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use strata_core::registry::EngineRegistry;
use strata_core::Update;
use strata_datalog::{Fact, Program, Query};
use strata_service::net::{self, Client, QueryReply};
use strata_service::{IngestConfig, Outcome, Service};

const STRATEGIES: [&str; 8] = [
    "recompute",
    "static",
    "dynamic-single",
    "dynamic-multi",
    "cascade",
    "fact-level",
    "cascade-parallel",
    "recompute-parallel",
];

fn program() -> Program {
    Program::parse(
        "edge(0, 1). edge(1, 2).
         reach(X, Y) :- edge(X, Y).
         reach(X, Z) :- reach(X, Y), edge(Y, Z).
         isolated(X) :- edge(X, X), !reach(0, X).",
    )
    .unwrap()
}

fn ins(s: &str) -> Update {
    Update::InsertFact(Fact::parse(s).unwrap())
}

/// The acceptance-criteria equivalence check: for every strategy, after
/// every single commit, the published snapshot answers queries exactly as
/// the engine behind the mutex does.
#[test]
fn snapshot_queries_equal_engine_queries_after_every_commit() {
    let queries = [
        Query::parse("reach(0, X)").unwrap(),
        Query::parse("reach(X, Y)").unwrap(),
        Query::parse("edge(X, Y), !reach(Y, X)").unwrap(),
        Query::parse("reach(0, 5)").unwrap(),
    ];
    // Serial groups (max_group 1) so *every* update is its own commit and
    // the snapshot is compared at every intermediate version.
    let cfg = IngestConfig { max_group: 1, ..IngestConfig::default() };
    for strategy in STRATEGIES {
        let engine = EngineRegistry::standard().build(strategy, program()).unwrap();
        let service = Service::start(engine, cfg);
        let script = [
            ins("edge(2, 3)"),
            ins("edge(3, 4)"),
            Update::DeleteFact(Fact::parse("edge(1, 2)").unwrap()),
            ins("edge(4, 5)"),
            ins("edge(1, 2)"),
            Update::DeleteFact(Fact::parse("edge(0, 1)").unwrap()),
        ];
        for update in script {
            let Outcome::Accepted { version, .. } = service.apply(update) else {
                panic!("{strategy}: scripted update must be accepted")
            };
            let snap = service.snapshot_at(version).expect("acked version is published");
            // The full model agrees fact for fact...
            let engine_facts = service.with_engine(|e| e.model().sorted_facts());
            assert_eq!(
                snap.model.sorted_facts(),
                engine_facts,
                "{strategy}: snapshot v{version} diverges from the engine model"
            );
            // ...and so does every query, through both read paths.
            for q in &queries {
                let via_snapshot = q.eval(&snap.model);
                let via_engine = service.with_engine(|e| q.eval(e.model()));
                assert_eq!(
                    via_snapshot, via_engine,
                    "{strategy}: query `{q}` diverges at v{version}"
                );
            }
        }
        service.shutdown();
    }
}

/// Deterministic non-blocking proof: reads complete while the engine
/// mutex is *held* — not merely busy — so a snapshot read provably never
/// acquires it.
#[test]
fn reads_complete_while_the_engine_mutex_is_held() {
    let engine = EngineRegistry::standard().build("cascade", program()).unwrap();
    let service = Arc::new(Service::start(engine, IngestConfig::default()));
    let Outcome::Accepted { version, .. } = service.apply(ins("edge(2, 3)")) else {
        panic!("insert must be accepted")
    };
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    std::thread::scope(|s| {
        let svc = Arc::clone(&service);
        s.spawn(move || {
            svc.with_engine(|_| {
                rx.recv().expect("release signal");
            });
        });
        // Give the holder time to acquire, then prove the point:
        // latest-snapshot read, versioned read, and stats all complete
        // while the mutex is hostage. (Any engine access would deadlock.)
        std::thread::sleep(Duration::from_millis(30));
        let q = Query::parse("reach(0, X)").unwrap();
        let snap = service.snapshot();
        assert!(!q.eval(&snap.model).is_empty());
        let pinned = service.snapshot_at(version).expect("published");
        assert!(pinned.model.contains_parsed("edge(2, 3)"));
        let stats = service.stats();
        assert!(stats.snapshot_version >= version);
        tx.send(()).expect("holder alive");
    });
}

/// Reader/writer stress over TCP: while writer clients saturate large
/// group commits, reader clients' snapshot queries all complete with
/// bounded latency and consistent results.
#[test]
fn readers_proceed_while_writers_saturate_group_commits() {
    const WRITERS: usize = 2;
    const READERS: usize = 2;
    const WRITES_PER_WRITER: usize = 200;
    const READS_PER_READER: usize = 60;
    let engine = EngineRegistry::standard().build("cascade", program()).unwrap();
    let service = Arc::new(Service::start(
        engine,
        IngestConfig { max_group: 256, max_delay: Duration::from_millis(1), ..Default::default() },
    ));
    let server = net::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();
    let writers_done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let addr = addr.clone();
            s.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for i in 0..WRITES_PER_WRITER {
                    // Disjoint edges: plenty of commit pressure without the
                    // transitive closure growing quadratically.
                    let n = 10 + 2 * (w * WRITES_PER_WRITER + i);
                    client
                        .submit_text(&format!("+ edge({n}, {})", n + 1))
                        .expect("io")
                        .expect("accepted");
                }
            });
        }
        let done = Arc::clone(&writers_done);
        for _ in 0..READERS {
            let addr = addr.clone();
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut client =
                    Client::connect_timeout(&addr, Duration::from_secs(10)).expect("connect");
                let mut reads = 0usize;
                while reads < READS_PER_READER && !done.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let reply = client.query("reach(0, X)").expect("io").expect("query ok");
                    assert!(matches!(reply, QueryReply::Rows(_)));
                    // Generous bound — the point is "milliseconds, not
                    // stuck behind a commit", while staying robust on a
                    // loaded 1-CPU CI host.
                    assert!(
                        t0.elapsed() < Duration::from_secs(5),
                        "a snapshot read stalled behind the writers"
                    );
                    reads += 1;
                }
                assert!(reads > 0, "readers must get reads in while writers run");
            });
        }
        // Scope joins writers and readers; flag stops readers early if the
        // writers finish first (keeps the test fast).
        s.spawn(move || {
            // This thread just flips the flag after the writers' share of
            // work is visibly done.
            loop {
                std::thread::sleep(Duration::from_millis(20));
                let stats = service.stats();
                if stats.accepted >= (WRITERS * WRITES_PER_WRITER) as u64 {
                    done.store(true, Ordering::Relaxed);
                    break;
                }
            }
        });
    });
    server.stop();
}

/// Read-your-writes across connections: any acked version, queried
/// `@version` from a *different* connection, observes the write.
#[test]
fn query_at_observes_own_commit_across_connections() {
    let engine = EngineRegistry::standard().build("cascade", program()).unwrap();
    let service = Arc::new(Service::start(engine, IngestConfig::default()));
    let server = net::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();
    let mut writer = Client::connect(&addr).expect("connect");
    for i in 0..20 {
        let n = 100 + i;
        let ack =
            writer.submit_text(&format!("+ edge({n}, {})", n + 1)).expect("io").expect("accepted");
        // A brand-new connection pins the ack's version: the write must be
        // there, every time.
        let mut reader = Client::connect(&addr).expect("connect");
        let reply =
            reader.query_at(ack.version, &format!("edge({n}, Y)")).expect("io").expect("query ok");
        assert_eq!(
            reply,
            QueryReply::Rows(vec![format!("Y = {}", n + 1)]),
            "acked write invisible at its own version"
        );
    }
    server.stop();
}
