//! Coalescing correctness: for random interleaved insert/delete streams,
//! draining the queue and applying coalesced groups yields the same final
//! model, the same support dump, and the same per-request accept/reject
//! outcomes (error values included) as applying the stream one update at a
//! time — for every engine, durable engines included, across a
//! kill-and-reopen.

use proptest::prelude::*;
use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{EngineBox, MaintenanceEngine, StorageSpec, SupportDump, Update};
use stratamaint::datalog::{Fact, Program, Rule};
use stratamaint::service::{Coalescer, Decision};
use stratamaint::workload::script::{random_fact_script, ScriptConfig};
use stratamaint::workload::synth::{self, random_stratified, RandomConfig};

fn fact(s: &str) -> Fact {
    Fact::parse(s).unwrap()
}

fn ins(s: &str) -> Update {
    Update::InsertFact(fact(s))
}

fn del(s: &str) -> Update {
    Update::DeleteFact(fact(s))
}

fn state(e: &dyn MaintenanceEngine) -> (Vec<Fact>, SupportDump) {
    (e.model().sorted_facts(), e.support_dump())
}

/// The per-update oracle: apply one at a time, each its own transaction,
/// rejections leaving the engine unchanged.
fn oracle_run(engine: &mut EngineBox, stream: &[Update]) -> Vec<Decision> {
    stream
        .iter()
        .map(|u| match engine.apply(u) {
            Ok(_) => Decision::Accepted,
            Err(e) => Decision::Rejected(e),
        })
        .collect()
}

/// The service path, minus the threads: cut the stream into groups of
/// `group` updates, rule updates acting as barriers exactly as the ingest
/// queue would cut them, plan each group through the coalescer, and commit
/// each non-empty net batch with one `apply_all`.
fn grouped_run(engine: &mut EngineBox, stream: &[Update], group: usize) -> Vec<Decision> {
    let mut coalescer = Coalescer::new();
    let mut decisions = Vec::with_capacity(stream.len());
    let mut pending: Vec<Update> = Vec::new();
    let flush_group = |engine: &mut EngineBox,
                       coalescer: &mut Coalescer,
                       pending: &mut Vec<Update>,
                       decisions: &mut Vec<Decision>| {
        if pending.is_empty() {
            return;
        }
        let plan = coalescer.plan_group(engine.program(), pending.iter());
        if !plan.batch.is_empty() {
            engine.apply_all(&plan.batch).expect("planned net batch must apply");
        }
        decisions.extend(plan.decisions);
        pending.clear();
    };
    for u in stream {
        let is_barrier = matches!(
            stratamaint::core::engine::normalize(u),
            Update::InsertRule(_) | Update::DeleteRule(_)
        );
        if is_barrier {
            flush_group(engine, &mut coalescer, &mut pending, &mut decisions);
            let precheck = match stratamaint::core::engine::normalize(u) {
                Update::InsertRule(rule) => coalescer.precheck_rule(engine.program(), &rule),
                _ => Ok(()),
            };
            decisions.push(match precheck.and_then(|()| engine.apply(u).map(|_| ())) {
                Ok(()) => Decision::Accepted,
                Err(e) => Decision::Rejected(e),
            });
            continue;
        }
        pending.push(u.clone());
        if pending.len() >= group {
            flush_group(engine, &mut coalescer, &mut pending, &mut decisions);
        }
    }
    flush_group(engine, &mut coalescer, &mut pending, &mut decisions);
    decisions
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_svc_coal_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The canonical support dump for a belief state: what a fresh engine
/// rebuilt from the final program believes. Support *content* is a sound
/// approximation whose exact shape is update-path-dependent for the
/// support-bearing engines (e.g. the cascade only attaches a rule pointer
/// when a firing first derives the fact, and §4.2 keeps one arbitrary
/// valid witness pair), so two paths to the same belief state may hold
/// different — equally sound — dumps. Canonicalization is the store's own
/// normal form (`compact` rebuilds before snapshotting), which makes it
/// the right equality for comparing states reached along different paths.
fn canonical_dump(name: &str, program: &Program) -> SupportDump {
    EngineRegistry::standard().build(name, program.clone()).unwrap().support_dump()
}

/// Runs the oracle and the grouped path over the same stream for one
/// strategy and storage config, asserting decision + model + program +
/// canonical-support equality (and exact kill-and-reopen equality when
/// durable).
fn differential(
    name: &str,
    program: &Program,
    stream: &[Update],
    group: usize,
    storage: &StorageSpec,
) {
    let registry = EngineRegistry::standard();
    let mut oracle = registry.build(name, program.clone()).unwrap();
    let oracle_decisions = oracle_run(&mut oracle, stream);
    let grouped_state = {
        let mut grouped = registry.build_with_storage(name, program.clone(), storage).unwrap();
        let grouped_decisions = grouped_run(&mut grouped, stream, group);
        assert_eq!(
            grouped_decisions, oracle_decisions,
            "[{name}/g{group}/{storage}] decisions diverged"
        );
        assert_eq!(
            grouped.model().sorted_facts(),
            oracle.model().sorted_facts(),
            "[{name}/g{group}/{storage}] model diverged"
        );
        // The programs (asserted EDB + rules) must agree exactly — and
        // with them the canonical belief state, supports included.
        let (gp, op) = (grouped.program(), oracle.program());
        let facts = |p: &Program| {
            let mut fs: Vec<Fact> = p.facts().cloned().collect();
            fs.sort();
            fs
        };
        assert_eq!(facts(gp), facts(op), "[{name}/g{group}/{storage}] EDB diverged");
        let rules = |p: &Program| p.rules().map(|(_, r)| r.to_string()).collect::<Vec<_>>();
        assert_eq!(rules(gp), rules(op), "[{name}/g{group}/{storage}] rules diverged");
        assert_eq!(
            canonical_dump(name, gp),
            canonical_dump(name, op),
            "[{name}/g{group}/{storage}] canonical support dump diverged"
        );
        state(grouped.as_ref())
    }; // durable: dropped = simulated process kill after the last commit
    if let Some(dir) = storage.wal_dir() {
        let reopened = registry.build_with_storage(name, Program::new(), storage).unwrap();
        // Recovery replays the grouped transactions through the same entry
        // points, so it must land on the grouped engine's exact pre-kill
        // state — model *and* support dump, byte for byte.
        assert_eq!(
            state(reopened.as_ref()),
            grouped_state,
            "[{name}/g{group}] kill-and-reopen diverged from the live state"
        );
        assert_eq!(
            reopened.model().sorted_facts(),
            oracle.model().sorted_facts(),
            "[{name}/g{group}] kill-and-reopen diverged from the oracle"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn every_engine(program: &Program, stream: &[Update], group: usize) {
    let registry = EngineRegistry::standard();
    for name in registry.names() {
        differential(name, program, stream, group, &StorageSpec::Mem);
    }
    // The durable leg: cascade (batch-override path) and dynamic-single
    // (sequential batch default) cover both apply_all code shapes.
    for name in ["cascade", "dynamic-single"] {
        let dir = scratch(&format!("{name}_{group}"));
        differential(name, program, stream, group, &StorageSpec::wal(dir));
    }
}

#[test]
fn handcrafted_hostile_stream_all_engines() {
    let program = synth::conference(20, 5, 3);
    // Transients, duplicates, unasserted deletes, arity mismatches, and a
    // couple of rule barriers — everything the decision layer must mirror.
    let stream = vec![
        ins("ghost(1)"),
        del("ghost(1)"),    // cancels: the engine never sees ghost/1
        ins("ghost(1, 2)"), // arity mismatch vs the *coalesced-away* ghost/1
        del("phantom(9)"),  // NotAsserted
        ins("extra(1)"),
        ins("extra(1)"), // duplicate insert, accepted no-op
        del("extra(1)"),
        del("extra(1)"), // second delete rejected
        Update::InsertRule(Rule::parse("odd(X) :- extra(X), !ghost(X).").unwrap()),
        ins("extra(2)"),
        del("extra(2)"),
        Update::DeleteRule(Rule::parse("odd(X) :- extra(X), !ghost(X).").unwrap()),
        Update::DeleteRule(Rule::parse("no_such(X) :- extra(X).").unwrap()), // UnknownRule
        Update::InsertRule(Rule::parse("bad(X) :- ghost(X, X, X).").unwrap()), // arity vs ghost/1
    ];
    for group in [1, 3, 64] {
        every_engine(&program, &stream, group);
    }
}

#[test]
fn conference_random_scripts_all_engines() {
    let program = synth::conference(30, 6, 11);
    let stream = random_fact_script(&program, &ScriptConfig { len: 60, insert_prob: 0.5 }, 23);
    for group in [1, 7, 16] {
        every_engine(&program, &stream, group);
    }
}

#[test]
fn unstratifiable_rule_barrier_rejects_identically() {
    let program = Program::parse(
        "submitted(1). submitted(2). accepted(2).
         rejected(X) :- submitted(X), !accepted(X).",
    )
    .unwrap();
    let stream = vec![
        ins("submitted(3)"),
        Update::InsertRule(Rule::parse("accepted(X) :- submitted(X), !rejected(X).").unwrap()),
        ins("submitted(4)"),
    ];
    every_engine(&program, &stream, 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random stratified programs × random interleaved insert/delete
    /// streams × random group sizes: grouped-coalesced ingestion is
    /// indistinguishable from the per-update oracle on every engine,
    /// durable engines included.
    #[test]
    fn random_streams_group_to_the_oracle(
        seed in 0u64..500,
        group in 1usize..12,
    ) {
        let cfg = RandomConfig {
            edb_rels: 3,
            idb_rels: 4,
            rules_per_rel: 2,
            facts_per_rel: 6,
            domain: 5,
            neg_prob: 0.35,
        };
        let program = random_stratified(&cfg, seed);
        let stream = random_fact_script(
            &program,
            &ScriptConfig { len: 40, insert_prob: 0.55 },
            seed ^ 0x5eed,
        );
        every_engine(&program, &stream, group);
    }
}
