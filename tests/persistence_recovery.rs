//! Crash-recovery properties: a simulated kill after **every byte prefix**
//! of the WAL must recover to a transaction boundary — the state just
//! before or just after some batch, never a hybrid — with the model *and*
//! the support sets reproduced exactly.
//!
//! The kill is simulated by copying the store directory with the WAL
//! truncated at the cut point and `Store::open`-ing the copy; the WAL
//! replay path is identical to what a real post-crash open runs (torn-tail
//! detection included).

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use stratamaint::core::durable::{DurableEngine, EngineCtor};
use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{MaintenanceEngine, SupportDump, Update};
use stratamaint::datalog::{Fact, Program};
use stratamaint::store::{Durability, SNAPSHOT_FILE, WAL_FILE};
use stratamaint::workload::script::{random_fact_script, ScriptConfig};
use stratamaint::workload::synth::{self, RandomConfig};

type State = (Vec<Fact>, SupportDump);

fn state(e: &DurableEngine) -> State {
    (e.model().sorted_facts(), e.support_dump())
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_crash_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ctor_for(name: &str) -> EngineCtor {
    EngineRegistry::standard().ctor(name).expect("registered strategy")
}

/// Runs `script` in batches of `batch` through a durable engine at `dir`,
/// recording the WAL byte boundary and expected state after each committed
/// batch. Returns (boundaries, states): `states[k]` is the exact state once
/// the first `k` batches are on disk.
fn run_batches(
    dir: &Path,
    strategy: &str,
    program: &Program,
    script: &[Update],
    batch: usize,
) -> (Vec<u64>, Vec<State>) {
    let mut engine = DurableEngine::open(
        dir,
        strategy,
        ctor_for(strategy),
        program.clone(),
        Durability::Buffered, // a process kill keeps page-cache writes
    )
    .unwrap();
    let mut boundaries = vec![engine.wal_bytes()];
    let mut states = vec![state(&engine)];
    for chunk in script.chunks(batch) {
        engine.apply_all(chunk).expect("script batch applies");
        boundaries.push(engine.wal_bytes());
        states.push(state(&engine));
    }
    (boundaries, states)
}

/// Simulates the kill: a copy of the store with the WAL cut to `cut` bytes.
fn killed_copy(src: &Path, label: &str, cut: usize) -> PathBuf {
    let dst = scratch(label);
    std::fs::create_dir_all(&dst).unwrap();
    std::fs::copy(src.join(SNAPSHOT_FILE), dst.join(SNAPSHOT_FILE)).unwrap();
    let wal = std::fs::read(src.join(WAL_FILE)).unwrap();
    std::fs::write(dst.join(WAL_FILE), &wal[..cut.min(wal.len())]).unwrap();
    dst
}

/// The invariant: recovery from a WAL cut at `cut` bytes lands exactly on
/// the last batch boundary at or before the cut.
fn check_cut(src: &Path, strategy: &str, cut: usize, boundaries: &[u64], states: &[State]) {
    let dst = killed_copy(src, &format!("{strategy}_cut"), cut);
    let recovered = DurableEngine::open(
        &dst,
        strategy,
        ctor_for(strategy),
        Program::new(),
        Durability::Buffered,
    )
    .unwrap();
    let k = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
    assert_eq!(
        state(&recovered),
        states[k],
        "[{strategy}] cut {cut}: expected the state after batch {k}"
    );
    let _ = std::fs::remove_dir_all(&dst);
}

/// Exhaustive single-workload run: every byte of the WAL is a kill point.
#[test]
fn every_wal_byte_prefix_recovers_to_a_batch_boundary() {
    for strategy in ["cascade", "dynamic-multi"] {
        let program = Program::parse(
            "submitted(1). submitted(2). submitted(3). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).
             pending(X) :- submitted(X), !accepted(X), !withdrawn(X).",
        )
        .unwrap();
        let script = random_fact_script(&program, &ScriptConfig { len: 9, insert_prob: 0.5 }, 3);
        assert!(script.len() >= 6, "script long enough to form several batches");
        let dir = scratch(&format!("exhaustive_{strategy}"));
        let (boundaries, states) = run_batches(&dir, strategy, &program, &script, 3);
        let wal_len = *boundaries.last().unwrap() as usize;
        assert!(wal_len > 0);
        for cut in 0..=wal_len {
            check_cut(&dir, strategy, cut, &boundaries, &states);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A kill mid-compaction: the snapshot is already renamed but the WAL not
/// yet truncated. Recovery must skip the covered transactions by sequence
/// number and reproduce the exact post-compaction state.
#[test]
fn kill_between_snapshot_rename_and_wal_truncate() {
    let strategy = "cascade";
    let program = synth::conference(8, 3, 5);
    let script = random_fact_script(&program, &ScriptConfig { len: 8, insert_prob: 0.5 }, 11);
    let dir = scratch("midcompact");
    let expected;
    let stale_wal;
    {
        let mut engine = DurableEngine::open(
            &dir,
            strategy,
            ctor_for(strategy),
            program.clone(),
            Durability::Buffered,
        )
        .unwrap();
        for chunk in script.chunks(2) {
            engine.apply_all(chunk).unwrap();
        }
        stale_wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
        engine.compact().unwrap();
        expected = state(&engine);
    }
    // Resurrect the pre-compaction WAL next to the new snapshot: exactly
    // the state a crash between rename and truncate leaves behind.
    std::fs::write(dir.join(WAL_FILE), &stale_wal).unwrap();
    let recovered = DurableEngine::open(
        &dir,
        strategy,
        ctor_for(strategy),
        Program::new(),
        Durability::Buffered,
    )
    .unwrap();
    assert_eq!(state(&recovered), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A kill at every byte across an **incremental (delta) snapshot write**.
///
/// The crash window of a delta checkpoint is: write `…tmp` → atomic rename
/// into the chain → truncate the WAL. Three phases are simulated:
///
/// 1. before the rename — a partial temp file beside an intact WAL: the
///    temp file must be ignored and engine replay must land the exact
///    pre-checkpoint state (live supports included);
/// 2. after the rename, before the truncate — the delta plus **every byte
///    prefix** of the stale WAL: every covered transaction is skipped by
///    sequence and recovery lands the checkpoint state;
/// 3. the same window around the *second* chain link, so mid-chain crashes
///    are covered too.
#[test]
fn every_wal_byte_across_a_delta_snapshot_write_recovers_exactly() {
    use stratamaint::core::durable::{SnapshotMode, WalSpec};
    use stratamaint::store::DELTA_FILE_PREFIX;

    let strategy = "cascade";
    let program = synth::conference(8, 3, 5);
    let script = random_fact_script(&program, &ScriptConfig { len: 12, insert_prob: 0.5 }, 17);
    let dir = scratch("delta_crash");
    let mut spec = WalSpec::new(&dir);
    spec.fsync = Durability::Buffered;
    spec.snapshot = SnapshotMode::Incremental { max_chain: 8 };
    let open_spec = |seed: Program| {
        DurableEngine::open_spec(&spec, strategy, ctor_for(strategy), seed, None).unwrap()
    };
    // What recovery through a chain lands: the canonical support form.
    let canonical =
        |e: &DurableEngine| ctor_for(strategy)(e.program().clone()).unwrap().support_dump();

    let mut engine = open_spec(program.clone());
    for chunk in script[..6].chunks(3) {
        engine.apply_all(chunk).unwrap();
    }
    let stale_wal_1 = std::fs::read(dir.join(WAL_FILE)).unwrap();
    let live_dump_1 = engine.support_dump();
    engine.checkpoint().unwrap(); // writes snapshot.delta-1
    let model_1 = engine.model().sorted_facts();
    let canonical_1 = canonical(&engine);
    let delta_1 = std::fs::read(dir.join(format!("{DELTA_FILE_PREFIX}1"))).unwrap();
    // Round two: more updates on top of the chain, then a second link.
    for chunk in script[6..].chunks(3) {
        engine.apply_all(chunk).unwrap();
    }
    let stale_wal_2 = std::fs::read(dir.join(WAL_FILE)).unwrap();
    engine.checkpoint().unwrap(); // writes snapshot.delta-2
    let model_2 = engine.model().sorted_facts();
    let canonical_2 = canonical(&engine);
    let delta_2 = std::fs::read(dir.join(format!("{DELTA_FILE_PREFIX}2"))).unwrap();
    drop(engine);

    // Builds a killed copy: base snapshot + the given chain files + a WAL
    // prefix (+ optionally a torn temp file, which recovery must ignore).
    let killed = |label: &str, deltas: &[&[u8]], wal: &[u8], tmp: Option<&[u8]>| -> PathBuf {
        let dst = scratch(label);
        std::fs::create_dir_all(&dst).unwrap();
        std::fs::copy(dir.join(SNAPSHOT_FILE), dst.join(SNAPSHOT_FILE)).unwrap();
        for (i, bytes) in deltas.iter().enumerate() {
            std::fs::write(dst.join(format!("{DELTA_FILE_PREFIX}{}", i + 1)), bytes).unwrap();
        }
        std::fs::write(dst.join(WAL_FILE), wal).unwrap();
        if let Some(bytes) = tmp {
            let k = deltas.len() + 1;
            std::fs::write(dst.join(format!("{DELTA_FILE_PREFIX}{k}.tmp")), bytes).unwrap();
        }
        dst
    };

    // Phase 1: killed mid-temp-write — partial temp at several cuts.
    for cut in [0, delta_1.len() / 2, delta_1.len()] {
        let dst = killed("delta_tmp", &[], &stale_wal_1, Some(&delta_1[..cut]));
        let mut copy_spec = spec.clone();
        copy_spec.dir = dst.clone();
        let recovered = DurableEngine::open_spec(
            &copy_spec,
            strategy,
            ctor_for(strategy),
            Program::new(),
            None,
        )
        .unwrap();
        assert_eq!(recovered.model().sorted_facts(), model_1, "tmp cut {cut}: model");
        assert_eq!(recovered.support_dump(), live_dump_1, "tmp cut {cut}: engine-replay supports");
        let _ = std::fs::remove_dir_all(&dst);
    }

    // Phases 2 and 3: delta renamed in, WAL cut at every byte.
    for (label, deltas, stale_wal, model, dump) in [
        ("delta1_wal", vec![delta_1.as_slice()], &stale_wal_1, &model_1, &canonical_1),
        (
            "delta2_wal",
            vec![delta_1.as_slice(), delta_2.as_slice()],
            &stale_wal_2,
            &model_2,
            &canonical_2,
        ),
    ] {
        for cut in 0..=stale_wal.len() {
            let dst = killed(label, &deltas, &stale_wal[..cut], None);
            let mut copy_spec = spec.clone();
            copy_spec.dir = dst.clone();
            let recovered = DurableEngine::open_spec(
                &copy_spec,
                strategy,
                ctor_for(strategy),
                Program::new(),
                None,
            )
            .unwrap();
            assert_eq!(recovered.model().sorted_facts(), *model, "[{label}] cut {cut}: model");
            assert_eq!(recovered.support_dump(), *dump, "[{label}] cut {cut}: supports");
            let _ = std::fs::remove_dir_all(&dst);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random stratified programs and update scripts, killed at every
    /// record-level cut around each batch boundary plus random interior
    /// bytes: the recovered model+supports always sit on a boundary.
    #[test]
    fn crash_recovery_on_random_workloads(seed in 0u64..1000) {
        let cfg = RandomConfig {
            edb_rels: 3,
            idb_rels: 4,
            rules_per_rel: 2,
            facts_per_rel: 8,
            domain: 6,
            neg_prob: 0.4,
        };
        let program = synth::random_stratified(&cfg, seed);
        let script =
            random_fact_script(&program, &ScriptConfig { len: 10, insert_prob: 0.5 }, seed ^ 0x5a);
        if script.is_empty() {
            return Ok(());
        }
        let strategy = ["cascade", "dynamic-single", "fact-level"][(seed % 3) as usize];
        let dir = scratch(&format!("prop_{strategy}_{seed}"));
        let (boundaries, states) = run_batches(&dir, strategy, &program, &script, 4);
        let wal_len = *boundaries.last().unwrap() as usize;
        // Cuts: each boundary, just before/after each boundary, and a
        // deterministic scatter of interior bytes.
        let mut cuts: Vec<usize> = Vec::new();
        for &b in &boundaries {
            let b = b as usize;
            cuts.extend([b.saturating_sub(1), b, (b + 1).min(wal_len)]);
        }
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for _ in 0..8 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cuts.push((x >> 16) as usize % (wal_len + 1));
        }
        cuts.sort_unstable();
        cuts.dedup();
        for cut in cuts {
            check_cut(&dir, strategy, cut, &boundaries, &states);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
