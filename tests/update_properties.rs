//! Properties of the update layer shared by every engine: round trips,
//! idempotence, rejection semantics, and the migration-ordering claim the
//! paper's strategy ladder makes.

use proptest::prelude::*;
use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::verify::assert_matches_ground_truth;
use stratamaint::core::{EngineBox, MaintenanceEngine, MaintenanceError, Update};
use stratamaint::datalog::{Fact, Program, Rule};
use stratamaint::workload::paper;
use stratamaint::workload::script::{random_fact_script, ScriptConfig};
use stratamaint::workload::synth::{random_stratified, RandomConfig};

fn engines(program: &Program) -> Vec<EngineBox> {
    EngineRegistry::standard().build_all(program)
}

fn fact(s: &str) -> Fact {
    Fact::parse(s).unwrap()
}

#[test]
fn insert_then_delete_is_identity() {
    let program = paper::pods(2, 5);
    for mut e in engines(&program) {
        let before = e.model().sorted_facts();
        e.insert_fact(fact("accepted(4)")).unwrap();
        e.delete_fact(fact("accepted(4)")).unwrap();
        assert_eq!(e.model().sorted_facts(), before, "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
    }
}

#[test]
fn delete_then_insert_is_identity() {
    let program = paper::pods(2, 5);
    for mut e in engines(&program) {
        let before = e.model().sorted_facts();
        e.delete_fact(fact("accepted(2)")).unwrap();
        e.insert_fact(fact("accepted(2)")).unwrap();
        assert_eq!(e.model().sorted_facts(), before, "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
    }
}

#[test]
fn duplicate_insert_is_noop_and_reported_as_such() {
    let program = paper::pods(2, 5);
    for mut e in engines(&program) {
        let before = e.model().sorted_facts();
        let stats = e.insert_fact(fact("accepted(2)")).unwrap();
        assert_eq!(stats.removed + stats.net_added + stats.net_removed, 0, "[{}]", e.name());
        assert_eq!(e.model().sorted_facts(), before, "[{}]", e.name());
    }
}

#[test]
fn deleting_unasserted_facts_is_rejected_uniformly() {
    let program = paper::pods(2, 5);
    for mut e in engines(&program) {
        // rejected(5) is derived, not asserted: the paper allows deletions
        // only on the extensional part.
        let err = e.delete_fact(fact("rejected(5)")).unwrap_err();
        assert!(matches!(err, MaintenanceError::NotAsserted(_)), "[{}]", e.name());
        // Rejected updates leave the engine untouched and consistent.
        assert_matches_ground_truth(e.as_ref());
        // Deleting a fact that was never mentioned at all.
        let err = e.delete_fact(fact("zz(1)")).unwrap_err();
        assert!(matches!(err, MaintenanceError::NotAsserted(_)), "[{}]", e.name());
    }
}

#[test]
fn unstratifying_rule_rejected_uniformly() {
    let src = "e(1). p(X) :- e(X), !q(X).";
    let bad = Rule::parse("q(X) :- e(X), !p(X).").unwrap();
    for mut e in engines(&Program::parse(src).unwrap()) {
        let before = e.model().sorted_facts();
        let err = e.insert_rule(bad.clone()).unwrap_err();
        assert!(matches!(err, MaintenanceError::WouldUnstratify(_)), "[{}]", e.name());
        assert_eq!(e.model().sorted_facts(), before, "[{}] must roll back", e.name());
        assert_eq!(e.program().num_rules(), 1, "[{}]", e.name());
        // Engine still functional afterwards.
        e.insert_fact(fact("e(2)")).unwrap();
        assert_matches_ground_truth(e.as_ref());
    }
}

#[test]
fn deleting_unknown_rule_rejected_uniformly() {
    let program = Program::parse("e(1). p(X) :- e(X).").unwrap();
    let ghost = Rule::parse("p(X) :- e(X), !zz(X).").unwrap();
    for mut e in engines(&program) {
        let err = e.delete_rule(ghost.clone()).unwrap_err();
        assert!(matches!(err, MaintenanceError::UnknownRule(_)), "[{}]", e.name());
    }
}

/// The paper's ladder: on its own examples, migration never *increases*
/// as the supports get richer: static ≥ dynamic-single ≥ dynamic-multi ≥
/// fact-level = 0.
#[test]
fn migration_ordering_on_paper_examples() {
    let cases: Vec<(Program, Fact)> = vec![
        (paper::conf(4), fact("rejected(5)")),
        (paper::congress(4), fact("rejected(4)")),
        (paper::meet(3, 2), fact("rejected(paper1)")),
    ];
    for (program, update) in cases {
        let mut migrated = Vec::new();
        for mut e in engines(&program) {
            let stats = e.insert_fact(update.clone()).unwrap();
            migrated.push((e.name(), stats.migrated));
            assert_matches_ground_truth(e.as_ref());
        }
        let get = |n: &str| migrated.iter().find(|(m, _)| *m == n).unwrap().1;
        assert!(get("static") >= get("dynamic-single"), "{migrated:?}");
        assert!(get("dynamic-single") >= get("dynamic-multi"), "{migrated:?}");
        assert_eq!(get("fact-level"), 0, "{migrated:?}");
        assert_eq!(get("recompute"), 0, "{migrated:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replay–undo: applying a random script forward and then the inverse
    /// script backward restores the original model, on every engine.
    #[test]
    fn scripts_are_reversible(seed in 0u64..500) {
        let cfg = RandomConfig {
            edb_rels: 2, idb_rels: 4, rules_per_rel: 2,
            facts_per_rel: 5, domain: 4, neg_prob: 0.35,
        };
        let program = random_stratified(&cfg, seed);
        let script = random_fact_script(
            &program,
            &ScriptConfig { len: 12, insert_prob: 0.5 },
            seed ^ 0xabcd,
        );
        let inverse: Vec<Update> = script
            .iter()
            .rev()
            .map(|u| match u {
                Update::InsertFact(f) => Update::DeleteFact(f.clone()),
                Update::DeleteFact(f) => Update::InsertFact(f.clone()),
                other => other.clone(),
            })
            .collect();
        for mut e in engines(&program) {
            let before = e.model().sorted_facts();
            for u in script.iter().chain(inverse.iter()) {
                e.apply(u).unwrap();
            }
            prop_assert_eq!(
                e.model().sorted_facts(),
                before.clone(),
                "[{}] seed {} not reversible", e.name(), seed
            );
        }
    }
}
