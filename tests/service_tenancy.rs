//! Multi-tenant isolation: databases in one [`Cluster`] share a process,
//! a metrics registry, and (optionally) a worker budget — and nothing
//! else. A tenant wedged read-only by faults must not slow, block, or
//! corrupt its neighbors; named tenants recover independently from their
//! own directories under the data root.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stratamaint::core::{FaultPlan, FaultPoint, StorageSpec, Update};
use stratamaint::datalog::{Fact, Program};
use stratamaint::service::{Cluster, DbOptions, Outcome, ShardedDb, WorkerBudget};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_tenant_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed() -> Program {
    Program::parse(
        "submitted(1). submitted(2). accepted(2).
         rejected(X) :- submitted(X), !accepted(X).",
    )
    .unwrap()
}

fn insert(db: &ShardedDb, fact: &str) -> Outcome {
    db.submit(Update::InsertFact(Fact::parse(fact).unwrap())).wait()
}

/// Named tenants persist under `<data_root>/<name>` and recover exactly
/// after a hard kill of the whole cluster; dropping a tenant reclaims its
/// directory.
#[test]
fn named_tenants_recover_durably_from_the_data_root() {
    let root = scratch("root");
    let storage = StorageSpec::wal(root.join("default"));
    let opts = DbOptions::new("cascade");
    let cluster = Cluster::new(seed(), storage.clone(), Some(root.clone()), opts.clone()).unwrap();
    let alpha = cluster.create("alpha").unwrap();
    assert!(matches!(insert(&alpha, "visited(1)"), Outcome::Accepted { .. }));
    assert!(matches!(insert(&alpha, "visited(2)"), Outcome::Accepted { .. }));
    assert!(matches!(insert(&cluster.default_db(), "submitted(7)"), Outcome::Accepted { .. }));
    alpha.flush();
    cluster.default_db().flush();
    let alpha_state = alpha.snapshot().sorted_facts();
    let default_state = cluster.default_db().snapshot().sorted_facts();
    assert_ne!(alpha_state, default_state, "tenants hold independent state");
    // Hard kill: drop every handle without shutdown.
    drop(alpha);
    drop(cluster);
    // Reopen the same layout: the default from its legacy directory, the
    // tenant by re-creating its name over the existing directory.
    let cluster = Cluster::new(Program::new(), storage, Some(root.clone()), opts).unwrap();
    assert_eq!(cluster.default_db().snapshot().sorted_facts(), default_state);
    let alpha = cluster.create("alpha").unwrap();
    assert_eq!(alpha.snapshot().sorted_facts(), alpha_state, "tenant recovers from its own WAL");
    // Drop reclaims the tenant's directory from under the data root.
    assert!(root.join("alpha").exists());
    drop(alpha);
    cluster.drop_db("alpha").unwrap();
    assert!(!root.join("alpha").exists(), "drop removes the tenant's store");
    let _ = std::fs::remove_dir_all(&root);
}

/// Tenant A takes a worker panic and (being in-memory, with no rebuild)
/// degrades to permanent read-only. Tenant B and the default database
/// keep committing at full service the whole time, and A still serves
/// reads of its committed state.
#[test]
fn a_wedged_tenant_never_blocks_its_neighbors() {
    let faults = Arc::new(FaultPlan::none().arm());
    let mut opts = DbOptions::new("cascade");
    opts.faults = Some(Arc::clone(&faults));
    let cluster = Cluster::new(seed(), StorageSpec::Mem, None, opts).unwrap();
    let a = cluster.create("wedged").unwrap();
    let b = cluster.create("healthy").unwrap();

    // One trigger, armed only now that every database is built: the next
    // group to reach a worker panics. Tenant A consumes it first.
    faults.rearm(&FaultPlan::once(FaultPoint::WorkerPreApply, 1));
    let Outcome::Rejected(e) = insert(&a, "boom(1)") else {
        panic!("the faulted group must be rejected")
    };
    assert!(e.is_retryable(), "a dropped group rejects retryably: {e}");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !a.stats().read_only {
        assert!(Instant::now() < deadline, "an in-memory tenant with no rebuild must wedge");
        std::thread::sleep(Duration::from_millis(2));
    }

    // A is wedged: writes reject with the read-only code, reads serve.
    let Outcome::Rejected(e) = insert(&a, "boom(2)") else { panic!("wedged writes reject") };
    assert_eq!(e.code(), "read-only");
    assert_eq!(a.snapshot().model_facts(), 0, "unacked writes stay invisible");

    // B and the default keep committing, unaffected.
    for i in 0..20 {
        assert!(
            matches!(insert(&b, &format!("alive({i})")), Outcome::Accepted { .. }),
            "neighbor writes must keep committing while A is wedged"
        );
    }
    assert!(matches!(insert(&cluster.default_db(), "submitted(9)"), Outcome::Accepted { .. }));
    b.flush();
    assert_eq!(b.snapshot().model_facts(), 20);
    assert!(!b.stats().read_only);
    assert!(!cluster.default_db().stats().read_only);
    assert!(a.stats().read_only, "A stays wedged: in-memory tenants cannot heal");

    // The registry still serves every tenant, wedged or not.
    let names: Vec<String> = cluster.list().into_iter().map(|i| i.name).collect();
    assert_eq!(names, vec!["default".to_string(), "healthy".to_string(), "wedged".to_string()]);
}

/// A shared `WorkerBudget` of one permit caps concurrent group commits
/// across every tenant's workers without deadlocking any of them.
#[test]
fn worker_budget_caps_concurrent_commits_across_tenants() {
    let budget = WorkerBudget::new(1);
    let mut opts = DbOptions::new("cascade");
    opts.budget = Some(Arc::clone(&budget));
    let cluster = Cluster::new(seed(), StorageSpec::Mem, None, opts).unwrap();
    let done = Arc::new(AtomicBool::new(false));
    const PER_TENANT: usize = 40;
    let writers: Vec<_> = ["t1", "t2"]
        .into_iter()
        .map(|name| {
            let db = cluster.create(name).unwrap();
            std::thread::spawn(move || {
                for i in 0..PER_TENANT {
                    assert!(
                        matches!(insert(&db, &format!("w({i})")), Outcome::Accepted { .. }),
                        "a budget must never starve a tenant"
                    );
                }
                db.flush();
                assert_eq!(db.snapshot().model_facts(), PER_TENANT);
            })
        })
        .collect();
    // Sample the semaphore while both tenants are writing: the number of
    // actively committing workers must never exceed the budget.
    let sampler = {
        let budget = Arc::clone(&budget);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut max_seen = 0;
            while !done.load(Ordering::Relaxed) {
                max_seen = max_seen.max(budget.active());
                std::thread::yield_now();
            }
            max_seen
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let max_seen = sampler.join().unwrap();
    assert!(max_seen <= budget.limit(), "{max_seen} active workers exceeded the budget");
    assert_eq!(budget.active(), 0, "all permits return once the tenants go idle");
    // Both tenants finished their full workload under a one-permit budget;
    // drop them and confirm the cluster tears down cleanly.
    cluster.drop_db("t1").unwrap();
    cluster.drop_db("t2").unwrap();
}
