//! Batched updates: aggregate semantics, atomicity (prefix rollback), and
//! the cascade's single-walk override against the sequential default.

use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::strategy::CascadeEngine;
use stratamaint::core::verify::assert_matches_ground_truth;
use stratamaint::core::{EngineBox, MaintenanceEngine, MaintenanceError, Update};
use stratamaint::datalog::{Fact, Program, Rule};
use stratamaint::workload::paper;
use stratamaint::workload::script::{random_fact_script, ScriptConfig};
use stratamaint::workload::synth;

fn engines(program: &Program) -> Vec<EngineBox> {
    EngineRegistry::standard().build_all(program)
}

fn fact(s: &str) -> Fact {
    Fact::parse(s).unwrap()
}

#[test]
fn batch_equals_sequential_on_every_engine() {
    let program = paper::pods(2, 6);
    let batch = vec![
        Update::InsertFact(fact("accepted(3)")),
        Update::DeleteFact(fact("accepted(1)")),
        Update::InsertFact(fact("submitted(7)")),
        Update::InsertFact(fact("accepted(7)")),
    ];
    for mut e in engines(&program) {
        e.apply_all(&batch).unwrap();
        assert_matches_ground_truth(e.as_ref());
    }
    // And all engines agree pairwise.
    let mut models = Vec::new();
    for mut e in engines(&program) {
        e.apply_all(&batch).unwrap();
        models.push(e.model().sorted_facts());
    }
    for m in &models[1..] {
        assert_eq!(m, &models[0]);
    }
}

#[test]
fn cascade_batch_walks_once_and_matches_sequential() {
    let program = synth::conference(40, 8, 3);
    let script = random_fact_script(&program, &ScriptConfig { len: 25, insert_prob: 0.5 }, 17);

    let mut sequential = CascadeEngine::new(program.clone()).unwrap();
    for u in &script {
        sequential.apply(u).unwrap();
    }
    let mut batched = CascadeEngine::new(program).unwrap();
    let stats = batched.apply_all(&script).unwrap();
    assert_eq!(batched.model().sorted_facts(), sequential.model().sorted_facts());
    assert_matches_ground_truth(&batched);
    // One walk must not fire more derivations than 25 walks.
    let mut seq_derivs = 0;
    let mut sequential2 = CascadeEngine::new(synth::conference(40, 8, 3)).unwrap();
    for u in &script {
        seq_derivs += sequential2.apply(u).unwrap().derivations;
    }
    assert!(
        stats.derivations <= seq_derivs,
        "batched walk ({}) must not exceed sequential derivations ({seq_derivs})",
        stats.derivations
    );
}

#[test]
fn batch_insert_then_delete_nets_out() {
    let program = paper::pods(2, 5);
    for mut e in engines(&program) {
        let before = e.model().sorted_facts();
        e.apply_all(&[
            Update::InsertFact(fact("accepted(4)")),
            Update::DeleteFact(fact("accepted(4)")),
        ])
        .unwrap();
        assert_eq!(e.model().sorted_facts(), before, "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
    }
}

#[test]
fn failed_batch_rolls_back_completely() {
    let program = paper::pods(2, 5);
    for mut e in engines(&program) {
        let before = e.model().sorted_facts();
        let err = e
            .apply_all(&[
                Update::InsertFact(fact("accepted(4)")),
                Update::DeleteFact(fact("accepted(5)")), // never asserted: rejected
                Update::InsertFact(fact("accepted(5)")),
            ])
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::NotAsserted(_)), "[{}]", e.name());
        assert_eq!(e.model().sorted_facts(), before, "[{}] must roll back", e.name());
        assert!(!e.program().is_asserted(&fact("accepted(4)")), "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
    }
}

#[test]
fn failed_batch_does_not_retract_preexisting_facts() {
    // The first update "inserts" accepted(2), which is already asserted: a
    // no-op. The rollback of the failing batch must NOT delete it.
    let program = paper::pods(2, 5);
    for mut e in engines(&program) {
        let err = e
            .apply_all(&[
                Update::InsertFact(fact("accepted(2)")),
                Update::DeleteFact(fact("ghost(1)")),
            ])
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::NotAsserted(_)));
        assert!(
            e.program().is_asserted(&fact("accepted(2)")),
            "[{}] rollback must not retract a pre-existing fact",
            e.name()
        );
        assert_matches_ground_truth(e.as_ref());
    }
}

#[test]
fn batch_with_rule_updates_falls_back_and_stays_atomic() {
    let program = Program::parse("e(1). e(2). f(2).").unwrap();
    for mut e in engines(&program) {
        // Valid mixed batch.
        e.apply_all(&[
            Update::InsertRule(Rule::parse("p(X) :- e(X), !f(X).").unwrap()),
            Update::InsertFact(fact("e(3)")),
        ])
        .unwrap();
        assert!(e.model().contains_parsed("p(1)"), "[{}]", e.name());
        assert!(e.model().contains_parsed("p(3)"), "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
        // Failing mixed batch: the rule insert must be rolled back.
        let before = e.model().sorted_facts();
        let rules_before = e.program().num_rules();
        let err = e
            .apply_all(&[
                Update::InsertRule(Rule::parse("q(X) :- e(X).").unwrap()),
                Update::DeleteFact(fact("ghost(1)")),
            ])
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::NotAsserted(_)));
        assert_eq!(e.program().num_rules(), rules_before, "[{}]", e.name());
        assert_eq!(e.model().sorted_facts(), before, "[{}]", e.name());
    }
}

#[test]
fn cascade_batch_deletes_across_strata_rederive_correctly() {
    // Asserted facts in two different strata deleted in one batch; the one
    // with an alternative derivation must survive.
    let program = Program::parse(
        "base(1). base(2).
         mid(X) :- base(X).
         mid(9).
         top(X) :- mid(X), !blocked(X).
         top(7).",
    )
    .unwrap();
    let mut e = CascadeEngine::new(program).unwrap();
    e.apply_all(&[
        Update::DeleteFact(fact("mid(9)")),
        Update::DeleteFact(fact("top(7)")),
        Update::DeleteFact(fact("base(2)")),
    ])
    .unwrap();
    assert!(!e.model().contains_parsed("mid(9)"));
    assert!(!e.model().contains_parsed("top(7)"));
    assert!(!e.model().contains_parsed("mid(2)"));
    assert!(e.model().contains_parsed("top(1)"));
    assert_matches_ground_truth(&e);
}

#[test]
fn empty_and_noop_batches() {
    let program = paper::pods(1, 3);
    for mut e in engines(&program) {
        let stats = e.apply_all(&[]).unwrap();
        assert_eq!(stats.removed + stats.net_added + stats.net_removed, 0);
        let stats = e
            .apply_all(&[Update::InsertFact(fact("accepted(1)"))]) // already asserted
            .unwrap();
        assert_eq!(stats.net_added, 0, "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
    }
}
