//! `cascade-parallel` ≡ `cascade` and `recompute-parallel` ≡ `recompute`,
//! **per step**: accept/reject decisions, statistics, models, and support
//! dumps must be identical at every point of every script, for every thread
//! count — the determinism guarantee of `strata_datalog::eval::par`
//! (contiguous order-preserving sharding + in-order merge) made into a
//! gate. The CI `parallel-equivalence` job additionally runs this suite —
//! and the rest of the differential suites — under `STRATA_THREADS=1,2,8`,
//! which the `*-parallel` registry constructors pick up.

use proptest::prelude::*;
use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::strategy::{CascadeEngine, RecomputeEngine};
use stratamaint::core::{
    EngineBox, MaintenanceEngine, Parallelism, StorageSpec, SupportDump, Update,
};
use stratamaint::datalog::{Fact, Program};
use stratamaint::workload::paper;
use stratamaint::workload::script::{random_fact_script, ScriptConfig};
use stratamaint::workload::synth::{self, RandomConfig};

/// The full observable state of an engine.
fn state(e: &dyn MaintenanceEngine) -> (Vec<Fact>, SupportDump) {
    (e.model().sorted_facts(), e.support_dump())
}

/// A script with engine-rejected updates spliced in, so decisions (not just
/// states) are differential-tested.
fn script_with_rejections(program: &Program, seed: u64, len: usize) -> Vec<Update> {
    let mut script = random_fact_script(program, &ScriptConfig { len, insert_prob: 0.5 }, seed);
    let ghost = Update::DeleteFact(Fact::parse("absolutely_not_asserted(999)").unwrap());
    let step = (script.len() / 3).max(1);
    let mut at = step;
    while at <= script.len() {
        script.insert(at, ghost.clone());
        at += step + 1;
    }
    script
}

/// Builds the (sequential, parallel) pair for one strategy family.
fn pair(family: &str, program: &Program, threads: usize) -> (EngineBox, EngineBox) {
    let par = Parallelism::new(threads);
    match family {
        "cascade" => (
            Box::new(CascadeEngine::new(program.clone()).unwrap()),
            Box::new(CascadeEngine::parallel(program.clone(), par).unwrap()),
        ),
        "recompute" => (
            Box::new(RecomputeEngine::new(program.clone()).unwrap()),
            Box::new(RecomputeEngine::parallel(program.clone(), par).unwrap()),
        ),
        other => panic!("unknown strategy family {other}"),
    }
}

/// Replays `script` step-by-step on both members of each family's pair,
/// asserting identical decisions, statistics, and states throughout.
fn differential_on(program: &Program, seed: u64, len: usize, threads: &[usize]) {
    let script = script_with_rejections(program, seed, len);
    for family in ["cascade", "recompute"] {
        for &t in threads {
            let (mut seq, mut par) = pair(family, program, t);
            assert_eq!(state(seq.as_ref()), state(par.as_ref()), "[{family} x{t}] initial");
            for (i, u) in script.iter().enumerate() {
                let a = seq.apply(u);
                let b = par.apply(u);
                match (&a, &b) {
                    (Ok(sa), Ok(sb)) => assert_eq!(sa, sb, "[{family} x{t}] step {i} stats"),
                    (Err(ea), Err(eb)) => {
                        assert_eq!(ea.to_string(), eb.to_string(), "[{family} x{t}] step {i} error")
                    }
                    _ => panic!("[{family} x{t}] step {i}: decisions diverged ({a:?} vs {b:?})"),
                }
                assert_eq!(state(seq.as_ref()), state(par.as_ref()), "[{family} x{t}] step {i}");
            }
        }
    }
}

#[test]
fn paper_workloads_are_identical_across_thread_counts() {
    differential_on(&paper::pods(3, 8), 1, 25, &[1, 2, 8]);
    differential_on(&paper::meet(4, 2), 2, 25, &[2]);
    differential_on(&paper::chain(6), 3, 20, &[3]);
}

#[test]
fn synthetic_workloads_are_identical_across_thread_counts() {
    differential_on(&synth::conference(15, 4, 7), 4, 20, &[2, 8]);
    differential_on(&synth::tc_complement(6, 9, 11), 5, 18, &[2]);
    differential_on(&synth::bom(2, 2, 13), 6, 18, &[4]);
}

/// Deltas large enough to actually shard (≥ `MIN_PARALLEL_TUPLES` tuples per
/// round): batch edge insertions into a transitive closure, applied as one
/// `apply_all` transaction so the whole batch drives a single stratum walk.
#[test]
fn large_batches_shard_and_stay_identical() {
    let program = synth::tc_complement(14, 60, 17);
    let batch: Vec<Update> = (0..80)
        .map(|i| {
            Update::InsertFact(Fact::parse(&format!("edge({}, {})", i % 14, (i * 5) % 14)).unwrap())
        })
        .collect();
    for &t in &[2, 8] {
        let (mut seq, mut par) = pair("cascade", &program, t);
        let sa = seq.apply_all(&batch).unwrap();
        let sb = par.apply_all(&batch).unwrap();
        assert_eq!(sa, sb, "x{t} batch stats");
        assert_eq!(state(seq.as_ref()), state(par.as_ref()), "x{t} batch state");
    }
}

/// The durable wrapper composes with parallel engines: a WAL-replayed
/// `cascade-parallel` recovers bit-identically to the in-memory sequential
/// cascade after the same script.
#[test]
fn durable_parallel_engine_recovers_identically() {
    let dir = std::env::temp_dir().join(format!("strata_par_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = EngineRegistry::standard();
    let program = synth::conference(12, 3, 9);
    let script = script_with_rejections(&program, 21, 18);
    let storage = StorageSpec::wal(dir.clone());

    let mut plain = CascadeEngine::new(program.clone()).unwrap();
    {
        let mut durable =
            registry.build_with_storage("cascade-parallel", program.clone(), &storage).unwrap();
        for (i, u) in script.iter().enumerate() {
            let a = plain.apply(u);
            let b = durable.apply(u);
            assert_eq!(a.is_ok(), b.is_ok(), "step {i} decision");
            assert_eq!(state(&plain), state(durable.as_ref()), "step {i}");
        }
    } // dropped: the reopen below performs real recovery (WAL replay)
    let reopened =
        registry.build_with_storage("cascade-parallel", Program::new(), &storage).unwrap();
    assert_eq!(reopened.name(), "cascade-parallel");
    assert_eq!(state(reopened.as_ref()), state(&plain), "kill-and-reopen");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random stratified programs × random scripts × random thread counts:
    /// the parallel engines remain step-identical to their sequential
    /// counterparts — decisions, stats, model, and supports.
    #[test]
    fn random_programs_are_identical_across_thread_counts(
        seed in 0u64..1000,
        threads in 2usize..9,
    ) {
        let cfg = RandomConfig {
            edb_rels: 3,
            idb_rels: 5,
            rules_per_rel: 2,
            facts_per_rel: 8,
            domain: 6,
            neg_prob: 0.4,
        };
        let program = synth::random_stratified(&cfg, seed);
        differential_on(&program, seed ^ 0xa5, 15, &[threads]);
    }
}
