//! Wire-framing properties of the pipelined protocol: tagged request and
//! response lines round-trip for arbitrary client tags and hostile quoted
//! symbols, and a live pipelined connection keeps interleaved tagged
//! traffic correctly correlated end to end.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use strata_core::registry::EngineRegistry;
use strata_core::Update;
use strata_datalog::{Fact, Program, Query, Value};
use strata_service::net::{self, Client};
use strata_service::protocol::{parse_request, render_tagged, render_update, split_tag, Request};
use strata_service::{IngestConfig, Service};

/// Client-chosen tags: any non-empty run of printable, non-whitespace
/// ASCII — including `#`, quotes, and punctuation.
fn tag_strategy() -> impl Strategy<Value = String> {
    "[!-~]{1,8}".prop_map(|s| s)
}

/// Symbol content that must survive quote-on-write framing: whitespace,
/// quotes, backslashes, newlines, unicode, protocol keywords — and, the
/// wire-specific hazards, strings that *look like* tags, verbs, or
/// response terminators.
fn hostile_symbol_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s),
        "[ -~]{0,8}".prop_map(|s| s),
        prop_oneof![
            Just("#tag submit".to_string()),
            Just("ok group=1 version=2".to_string()),
            Just("err boom".to_string()),
            Just("query @7 p(X)".to_string()),
            Just("row X = 1".to_string()),
            Just(String::new()),
            Just("a\"b\\c".to_string()),
            Just("line\nbreak\ttab\rret".to_string()),
            Just("héllo wörld 日本".to_string()),
        ],
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::int),
        hostile_symbol_strategy().prop_map(|s| Value::sym(&s)),
    ]
}

fn fact_strategy() -> impl Strategy<Value = Fact> {
    ("[a-z][a-z0-9_]{0,6}", proptest::collection::vec(value_strategy(), 0..3))
        .prop_map(|(rel, args)| Fact::new(rel.as_str(), args))
}

fn update_strategy() -> impl Strategy<Value = Update> {
    (fact_strategy(), proptest::bool::ANY).prop_map(|(f, insert)| {
        if insert {
            Update::InsertFact(f)
        } else {
            Update::DeleteFact(f)
        }
    })
}

proptest! {
    /// A tagged submit line — hostile fact and all — splits back into the
    /// same tag and parses back into the same update.
    #[test]
    fn tagged_submits_round_trip(tag in tag_strategy(), update in update_strategy()) {
        let line = render_tagged(Some(&tag), &format!("submit {}", render_update(&update)));
        let (got_tag, rest) = split_tag(&line);
        prop_assert_eq!(got_tag, Some(tag.as_str()));
        let Request::Submit { update: round, seq } = parse_request(rest)
            .unwrap_or_else(|e| panic!("`{line}` failed to re-parse: {e}")) else {
            panic!("`{line}` did not parse as a submit")
        };
        prop_assert_eq!(round, update);
        prop_assert_eq!(seq, None);
    }

    /// Version-pinned queries round-trip their tag, their version, and
    /// their body, even when the body is a hostile quoted fact.
    #[test]
    fn tagged_versioned_queries_round_trip(
        tag in tag_strategy(),
        version in prop_oneof![Just(None), (0u64..1_000_000_000).prop_map(Some)],
        fact in fact_strategy(),
    ) {
        let body = fact.to_string();
        let at = version.map(|v| format!("@{v} ")).unwrap_or_default();
        let line = render_tagged(Some(&tag), &format!("query {at}{body}"));
        let (got_tag, rest) = split_tag(&line);
        prop_assert_eq!(got_tag, Some(tag.as_str()));
        let Request::Query { query, at } = parse_request(rest)
            .unwrap_or_else(|e| panic!("`{line}` failed to re-parse: {e}")) else {
            panic!("`{line}` did not parse as a query")
        };
        prop_assert_eq!(at, version);
        prop_assert_eq!(query.to_string(), Query::parse(&body).unwrap().to_string());
    }

    /// Response framing: any terminator or `row` line — including rendered
    /// hostile bindings that themselves look like protocol traffic — comes
    /// back from the tag round-trip byte for byte.
    #[test]
    fn tagged_responses_round_trip(tag in tag_strategy(), value in value_strategy()) {
        for payload in [
            format!("row X = {value}"),
            "ok group=3 version=9".to_string(),
            format!("err cannot parse `{value}`"),
        ] {
            let line = render_tagged(Some(&tag), &payload);
            prop_assert_eq!(split_tag(&line), (Some(tag.as_str()), payload.as_str()));
        }
    }

    /// Untagged lines never grow a tag, whatever their first token looks
    /// like (unless it genuinely is one — then it splits consistently).
    #[test]
    fn untagged_lines_stay_untagged(update in update_strategy()) {
        let line = format!("submit {}", render_update(&update));
        prop_assert_eq!(split_tag(&line), (None, line.as_str()));
        let rendered = render_tagged(None, &line);
        prop_assert_eq!(rendered.as_str(), line.as_str());
    }
}

/// Live pipelined framing: one connection fires a burst of tagged submits
/// and queries over facts with hostile symbols, reads every response line
/// as it arrives, and correlates strictly by tag. Every submit must ack,
/// and every query must return exactly its own fact's binding.
#[test]
fn pipelined_hostile_traffic_correlates_by_tag() {
    let nasty = ["ok group=1", "#t submit", "a\"b\\c", "héllo 日本", "query @1 p(X)"];
    let program = Program::parse("seen(X) :- item(_, X).").unwrap();
    let engine = EngineRegistry::standard().build("cascade", program).unwrap();
    let service = Arc::new(Service::start(
        engine,
        IngestConfig { max_group: 16, max_delay: Duration::from_millis(1), ..Default::default() },
    ));
    let server = net::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");

    // Fire the whole burst before reading anything: submits and queries
    // interleave, and responses may come back in any order.
    for (i, sym) in nasty.iter().enumerate() {
        let fact = Fact::new("item", vec![Value::int(i as i64), Value::sym(sym)]);
        client.send_raw(&format!("#w{i} submit + {fact}")).expect("send submit");
    }
    let mut acked = 0u64;
    let mut version = 0u64;
    for _ in 0..nasty.len() {
        let (tag, line) = client.recv_raw().expect("recv ack");
        let tag = tag.expect("acks carry the request tag");
        assert!(tag.starts_with('w'), "unexpected tag `{tag}`");
        assert!(line.starts_with("ok group="), "unexpected ack `{line}`");
        let v: u64 = line.split("version=").nth(1).unwrap().parse().unwrap();
        version = version.max(v);
        acked += 1;
    }
    assert_eq!(acked, nasty.len() as u64);

    // Now a burst of version-pinned queries, one per fact, all in flight
    // at once; collect responses by tag.
    for (i, _) in nasty.iter().enumerate() {
        client.send_raw(&format!("#r{i} query @{version} item({i}, X)")).expect("send query");
    }
    let mut rows: HashMap<String, Vec<String>> = HashMap::new();
    let mut done = 0;
    while done < nasty.len() {
        let (tag, line) = client.recv_raw().expect("recv row");
        let tag = tag.expect("query responses carry the request tag");
        if let Some(row) = line.strip_prefix("row ") {
            rows.entry(tag).or_default().push(row.to_string());
        } else {
            assert_eq!(line, "ok 1", "query `{tag}` should see exactly one row: `{line}`");
            done += 1;
        }
    }
    for (i, sym) in nasty.iter().enumerate() {
        let expect = format!("X = {}", Value::sym(sym));
        assert_eq!(
            rows.get(&format!("r{i}")).map(Vec::as_slice),
            Some(&[expect.clone()][..]),
            "query r{i} must see its own hostile fact"
        );
    }
    client.quit().expect("quit");
    server.stop();
    Arc::try_unwrap(service).ok().expect("all clones dropped").shutdown();
}
