//! Differential property test: the compiled matcher ([`plan`]) enumerates
//! exactly the same ground rule instances as the legacy interpreted path,
//! across random programs and databases, for every delta position —
//! including deltas on **negative** literals (incremental removed-tuple
//! firing) — and under seed bindings.
//!
//! [`plan`]: stratamaint::datalog::eval::plan

use proptest::prelude::*;
use stratamaint::datalog::eval::matcher::for_each_match_interpreted;
use stratamaint::datalog::eval::plan::{CompiledRule, MatchScratch};
use stratamaint::datalog::model::StandardModel;
use stratamaint::datalog::storage::Relation;
use stratamaint::datalog::{Database, Fact, Value};
use stratamaint::workload::synth::{random_stratified, RandomConfig};

/// One enumerated ground instance, in comparable form.
type Instance = (String, Vec<String>, Vec<String>);

fn collect<F>(run: F) -> Vec<Instance>
where
    F: FnOnce(&mut dyn FnMut(Fact, &[Fact], &[Fact]) -> bool),
{
    let mut out: Vec<Instance> = Vec::new();
    run(&mut |head, pos, neg| {
        out.push((
            head.to_string(),
            pos.iter().map(ToString::to_string).collect(),
            neg.iter().map(ToString::to_string).collect(),
        ));
        true
    });
    // The two paths share the greedy order, but index scan order is not
    // part of the contract: compare as sets.
    out.sort();
    out
}

/// A deterministic LCG stream for auxiliary choices (delta contents, seeds).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn cfg() -> RandomConfig {
    RandomConfig {
        edb_rels: 3,
        idb_rels: 4,
        rules_per_rel: 2,
        facts_per_rel: 5,
        domain: 5,
        neg_prob: 0.5,
    }
}

/// Builds a delta relation for body position `li`: a mix of tuples drawn
/// from the database extension (when present) and random domain tuples —
/// for a negative literal the latter model removed-but-absent tuples.
fn make_delta(
    db: &Database,
    rule: &stratamaint::datalog::Rule,
    li: usize,
    lcg: &mut Lcg,
) -> Relation {
    let atom = &rule.body[li].atom;
    let arity = atom.arity();
    let mut delta = Relation::new(arity);
    if let Some(rel) = db.relation(atom.rel) {
        for t in rel.iter() {
            if lcg.next() % 2 == 0 {
                delta.insert(t.into());
            }
        }
    }
    for _ in 0..(lcg.next() % 4) {
        let tuple: Box<[Value]> =
            (0..arity).map(|_| Value::int((lcg.next() % cfg().domain as u64) as i64)).collect();
        delta.insert(tuple);
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Compiled ≡ interpreted on the saturated model database, for the
    /// full-enumeration plan and every delta position of every rule.
    #[test]
    fn compiled_matches_interpreted_on_all_delta_positions(seed in 0u64..100_000) {
        let program = random_stratified(&cfg(), seed);
        // The saturated model exercises richer joins than the EDB alone.
        let db = StandardModel::compute(&program).unwrap().into_db();
        let mut lcg = Lcg(seed ^ 0xdead_beef);
        let mut scratch = MatchScratch::new();
        for (id, rule) in program.rules() {
            let compiled = CompiledRule::compile(id, rule.clone());
            // Full enumeration.
            let got = collect(|f| {
                compiled.plan().for_each_derivation(&db, None, &[], &mut scratch, f)
            });
            let want = collect(|f| for_each_match_interpreted(&db, rule, None, &[], f));
            prop_assert_eq!(&got, &want, "delta=None rule={}", rule);
            // Every delta position, negative literals included.
            for li in 0..rule.body.len() {
                let delta = make_delta(&db, rule, li, &mut lcg);
                let got = collect(|f| {
                    compiled.delta_plan(li).for_each_derivation(
                        &db,
                        Some(&delta),
                        &[],
                        &mut scratch,
                        f,
                    )
                });
                let want = collect(|f| {
                    for_each_match_interpreted(&db, rule, Some((li, &delta)), &[], f)
                });
                prop_assert_eq!(
                    &got,
                    &want,
                    "delta={} ({}) rule={}",
                    li,
                    if rule.body[li].positive { "positive" } else { "negative" },
                    rule
                );
            }
        }
    }

    /// Compiled ≡ interpreted under seed bindings (the re-derivation path).
    #[test]
    fn compiled_matches_interpreted_under_seeds(seed in 0u64..100_000) {
        let program = random_stratified(&cfg(), seed);
        let db = StandardModel::compute(&program).unwrap().into_db();
        let mut lcg = Lcg(seed ^ 0x5eed_5eed);
        let mut scratch = MatchScratch::new();
        for (id, rule) in program.rules() {
            let vars = rule.vars();
            if vars.is_empty() {
                continue;
            }
            let mut bound = Vec::new();
            for &v in &vars {
                if lcg.next() % 2 == 0 {
                    bound.push((v, Value::int((lcg.next() % cfg().domain as u64) as i64)));
                }
            }
            let compiled = CompiledRule::compile(id, rule.clone());
            let got = collect(|f| {
                compiled.plan().for_each_derivation(&db, None, &bound, &mut scratch, f)
            });
            let want = collect(|f| for_each_match_interpreted(&db, rule, None, &bound, f));
            prop_assert_eq!(&got, &want, "seeds={:?} rule={}", bound.len(), rule);
        }
    }
}
