//! Property-based tests of the §2 Theorem: for a stratified program,
//! `M(P)` is independent of the stratification (i), a minimal model (ii),
//! and a supported model (iii); and the backchaining interpreter (vi)
//! agrees with it.

use proptest::prelude::*;
use stratamaint::datalog::eval::backchain::Backchainer;
use stratamaint::datalog::ground::ground_program;
use stratamaint::datalog::model::{StandardModel, StratKind};
use stratamaint::datalog::{Database, Fact, Program};
use stratamaint::workload::synth::{random_stratified, RandomConfig};

/// Whether `db` (plus the asserted facts) satisfies every ground instance
/// of every rule: body true ⇒ head true.
fn is_model(program: &Program, db: &Database) -> bool {
    if !program.facts().all(|f| db.contains(f)) {
        return false;
    }
    let ground = ground_program(program, 2_000_000).expect("test programs are small");
    ground.iter().all(|g| {
        let body_true =
            g.pos.iter().all(|f| db.contains(f)) && g.neg.iter().all(|f| !db.contains(f));
        !body_true || db.contains(&g.head)
    })
}

fn small_cfg() -> RandomConfig {
    RandomConfig {
        edb_rels: 2,
        idb_rels: 4,
        rules_per_rel: 2,
        facts_per_rel: 4,
        domain: 4,
        neg_prob: 0.4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem (i): the stratification does not matter.
    #[test]
    fn model_independent_of_stratification(seed in 0u64..5000) {
        let p = random_stratified(&small_cfg(), seed);
        let by_levels = StandardModel::compute_with(&p, StratKind::ByLevels).unwrap();
        let maximal = StandardModel::compute_with(&p, StratKind::Maximal).unwrap();
        prop_assert_eq!(by_levels.db(), maximal.db());
        // The naive engine agrees with the delta-driven one, too (§5.2's
        // order-independence of SAT).
        let naive = StandardModel::compute_naive(&p).unwrap();
        prop_assert_eq!(naive.db(), by_levels.db());
    }

    /// M(P) is a model, and it is supported (Theorem iii).
    #[test]
    fn model_is_a_supported_model(seed in 0u64..5000) {
        let p = random_stratified(&small_cfg(), seed);
        let m = StandardModel::compute(&p).unwrap();
        prop_assert!(is_model(&p, m.db()), "M(P) must satisfy every rule");
        prop_assert!(m.is_supported(&p), "M(P) must be supported");
    }

    /// Theorem (ii), single-removal consequence: removing any *derived*
    /// fact of M(P) breaks model-hood or supportedness — nothing in the
    /// model is superfluous. (Full minimality is checked exhaustively below
    /// for tiny programs.)
    #[test]
    fn every_model_fact_is_needed(seed in 0u64..2000) {
        let p = random_stratified(&small_cfg(), seed);
        let m = StandardModel::compute(&p).unwrap();
        for f in m.db().iter_facts() {
            if p.is_asserted(&f) {
                continue;
            }
            let mut smaller = m.db().clone();
            smaller.remove(&f);
            // A supported minimal model loses model-hood when a derived
            // fact is dropped only if some rule instance now fires into the
            // gap — which supportedness guarantees.
            prop_assert!(
                !is_model(&p, &smaller),
                "removing {f} from M(P) left a model: M(P) was not minimal"
            );
        }
    }

    /// Theorem (vi): the backchaining interpreter decides membership.
    #[test]
    fn backchainer_agrees_with_model(seed in 0u64..2000) {
        let p = random_stratified(&small_cfg(), seed);
        let m = StandardModel::compute(&p).unwrap();
        let mut bc = Backchainer::new(&p, 2_000_000).unwrap();
        // Check every atom of the grounded Herbrand base of rule heads,
        // plus every model fact.
        let ground = ground_program(&p, 2_000_000).unwrap();
        let mut goals: Vec<Fact> = ground.iter().map(|g| g.head.clone()).collect();
        goals.extend(m.db().iter_facts());
        goals.sort();
        goals.dedup();
        for g in goals {
            prop_assert_eq!(
                bc.holds(&g),
                m.db().contains(&g),
                "backchainer disagrees on {}", g
            );
        }
    }
}

/// Exhaustive minimality on tiny programs: no proper subset of `M(P)`
/// containing the asserted facts is a model (Theorem ii, literally).
#[test]
fn exhaustive_minimality_on_tiny_programs() {
    let sources = [
        "p1 :- !p0. p2 :- !p1. p3 :- !p2.",
        "r :- p. q :- r. q :- !p.",
        "s(1). s(2). a(1). r(X) :- s(X), !a(X).",
        "e(1). e(2). p(X) :- e(X), !q(X). q(2).",
        "b(1). a(X) :- b(X). c(X) :- a(X), !d(X).",
    ];
    for src in sources {
        let p = Program::parse(src).unwrap();
        let m = StandardModel::compute(&p).unwrap();
        let facts: Vec<Fact> = m.db().iter_facts().collect();
        let n = facts.len();
        assert!(n <= 12, "keep the exhaustive check tractable");
        for mask in 0..(1u32 << n) - 1 {
            let subset: Vec<Fact> = facts
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, f)| f.clone())
                .collect();
            let db = Database::from_facts(subset);
            assert!(
                !is_model(&p, &db),
                "proper subset {db:?} of M({src}) is a model — M(P) not minimal"
            );
        }
    }
}

/// M(P) is a model of Clark's completion in the propositional sense checked
/// here: every model fact is supported, and every supported candidate head
/// is in the model (if-and-only-if reading of the rules).
#[test]
fn completion_iff_on_ground_programs() {
    let sources = ["p1 :- !p0. p2 :- !p1. p3 :- !p2.", "r :- p. q :- r. q :- !p."];
    for src in sources {
        let p = Program::parse(src).unwrap();
        let m = StandardModel::compute(&p).unwrap();
        let ground = ground_program(&p, 10_000).unwrap();
        for g in &ground {
            let body_true = g.pos.iter().all(|f| m.db().contains(f))
                && g.neg.iter().all(|f| !m.db().contains(f));
            if body_true {
                assert!(m.db().contains(&g.head), "completion ⇒ direction broken for {g}");
            }
        }
        // ⇐ direction: each non-asserted model fact has a true body.
        for f in m.db().iter_facts() {
            if p.is_asserted(&f) {
                continue;
            }
            let supported = ground.iter().any(|g| {
                g.head == f
                    && g.pos.iter().all(|b| m.db().contains(b))
                    && g.neg.iter().all(|b| !m.db().contains(b))
            });
            assert!(supported, "model fact {f} lacks a supporting instance");
        }
    }
}
