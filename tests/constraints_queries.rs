//! The read path over maintained models: conjunctive queries must answer
//! from a maintained model exactly as from the recomputed ground truth, and
//! guarded engines must enforce denials across update scripts.

use proptest::prelude::*;
use stratamaint::core::constraints::{Constraint, GuardedEngine};
use stratamaint::core::strategy::{CascadeEngine, DynamicSingleEngine};
use stratamaint::core::verify::ground_truth;
use stratamaint::core::MaintenanceEngine;
use stratamaint::datalog::{Fact, Program, Query};
use stratamaint::workload::script::{random_fact_script, ScriptConfig};
use stratamaint::workload::synth;

#[test]
fn queries_over_maintained_model_match_ground_truth() {
    let program = synth::conference(25, 5, 3);
    let queries = [
        "accepted(P)",
        "rejected(P), !conflicted(P)",
        "eligible(P), !accepted(P), !rejected(P)",
        "author(A, P), accepted(P)",
    ];
    let compiled: Vec<Query> = queries.iter().map(|q| Query::parse(q).unwrap()).collect();
    let script = random_fact_script(&program, &ScriptConfig { len: 30, insert_prob: 0.5 }, 7);
    let mut engine = CascadeEngine::new(program).unwrap();
    for u in &script {
        engine.apply(u).unwrap();
        let truth = ground_truth(engine.program());
        for q in &compiled {
            assert_eq!(q.eval(engine.model()), q.eval(&truth), "query `{q}` diverged after {u}");
        }
    }
}

#[test]
fn guarded_engine_holds_invariant_across_script() {
    // Invariant: a paper is never both accepted and rejected. The pipeline
    // rules make this impossible, so every scripted update must pass — and
    // the invariant must hold after each.
    let program = synth::conference(20, 4, 11);
    let engine = DynamicSingleEngine::new(program.clone()).unwrap();
    let mut guarded = GuardedEngine::unconstrained(engine);
    guarded.add_constraint(Constraint::parse(":- accepted(P), rejected(P).").unwrap()).unwrap();
    let script = random_fact_script(&program, &ScriptConfig { len: 40, insert_prob: 0.5 }, 13);
    for u in &script {
        guarded.apply(u).unwrap_or_else(|e| panic!("pipeline invariant broken by {u}: {e}"));
        assert!(guarded.constraints().first_violation(guarded.model()).is_none());
    }
}

#[test]
fn guarded_engine_blocks_direct_contradiction() {
    let program = Program::parse(
        "submitted(1). verdict(1, accept).
         decided(P) :- verdict(P, accept).
         decided(P) :- verdict(P, reject).",
    )
    .unwrap();
    let engine = CascadeEngine::new(program).unwrap();
    let mut g = GuardedEngine::unconstrained(engine);
    g.add_constraint(Constraint::parse(":- verdict(P, accept), verdict(P, reject).").unwrap())
        .unwrap();
    let err = g.insert_fact(Fact::parse("verdict(1, reject)").unwrap()).unwrap_err();
    assert!(err.to_string().contains("violates"));
    assert!(!g.program().is_asserted(&Fact::parse("verdict(1, reject)").unwrap()));
    // The engine still accepts consistent updates afterwards.
    g.insert_fact(Fact::parse("verdict(2, reject)").unwrap()).unwrap();
    assert!(g.model().contains_parsed("decided(2)"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random single-variable queries answer identically on the maintained
    /// and recomputed models after random scripts.
    #[test]
    fn random_queries_differential(seed in 0u64..300) {
        let cfg = synth::RandomConfig {
            edb_rels: 2, idb_rels: 4, rules_per_rel: 2,
            facts_per_rel: 6, domain: 5, neg_prob: 0.4,
        };
        let program = synth::random_stratified(&cfg, seed);
        let script =
            random_fact_script(&program, &ScriptConfig { len: 10, insert_prob: 0.5 }, seed ^ 7);
        let mut engine = CascadeEngine::new(program).unwrap();
        for u in &script {
            engine.apply(u).unwrap();
        }
        let truth = ground_truth(engine.program());
        for rel in ["i0", "i1", "i2", "i3"] {
            let q = Query::parse(&format!("{rel}(X)")).unwrap();
            prop_assert_eq!(q.eval(engine.model()), q.eval(&truth), "on {}", rel);
        }
        // A negated conjunction too.
        let q = Query::parse("i0(X), !i3(X)").unwrap();
        prop_assert_eq!(q.eval(engine.model()), q.eval(&truth));
    }

    /// A guarded engine never lets a scripted update violate its denial;
    /// whenever an update is rejected, the model is exactly what it was.
    #[test]
    fn guard_rollback_is_exact(seed in 0u64..300) {
        let cfg = synth::RandomConfig {
            edb_rels: 2, idb_rels: 3, rules_per_rel: 2,
            facts_per_rel: 5, domain: 4, neg_prob: 0.3,
        };
        let program = synth::random_stratified(&cfg, seed);
        let engine = CascadeEngine::new(program.clone()).unwrap();
        let mut g = GuardedEngine::unconstrained(engine);
        // Forbid i2 and i1 overlapping — may or may not be violable.
        let c = Constraint::parse(":- i1(X), i2(X).").unwrap();
        if g.add_constraint(c).is_err() {
            return Ok(()); // already violated initially: nothing to guard
        }
        let script =
            random_fact_script(&program, &ScriptConfig { len: 15, insert_prob: 0.6 }, seed ^ 3);
        for u in &script {
            let before = g.model().sorted_facts();
            match g.apply(u) {
                Ok(_) => {
                    prop_assert!(g.constraints().first_violation(g.model()).is_none());
                }
                Err(_) => {
                    prop_assert_eq!(g.model().sorted_facts(), before, "rollback not exact");
                }
            }
        }
    }
}
