//! Service integration: N client threads × M updates against one service,
//! the final state equals a sequential oracle, the WAL holds ≈ group-count
//! transactions (not per-update), and a kill-and-reopen reproduces the
//! service's exact belief state.
//!
//! Clients operate on **disjoint fact universes** (facts tagged with the
//! client id), so per-request decisions and the final state are
//! independent of how the queue interleaves clients — which makes the
//! sequential oracle well-defined: apply each client's stream in order,
//! clients in any order.

use std::sync::Arc;
use std::time::Duration;

use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{EngineBox, MaintenanceEngine, StorageSpec, SupportDump, Update};
use stratamaint::datalog::{Fact, Program};
use stratamaint::service::net::{self, Client, QueryReply};
use stratamaint::service::{IngestConfig, Outcome, Service};

fn fact(s: &str) -> Fact {
    Fact::parse(s).unwrap()
}

fn program() -> Program {
    Program::parse(
        "seeded(0).
         rejected(C, P) :- submitted(C, P), !accepted(C, P).
         notified(C, P) :- rejected(C, P).",
    )
    .unwrap()
}

/// Client `c`'s deterministic update stream: inserts, duplicate inserts,
/// deletes (some of unasserted facts — guaranteed rejections), and
/// insert/delete transients, all on facts tagged `c`.
fn client_stream(c: usize, m: usize) -> Vec<Update> {
    let mut out = Vec::with_capacity(m);
    let mut x = (c as u64 + 1) * 0x9e37_79b9;
    for j in 0.. {
        if out.len() >= m {
            break;
        }
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let sub = format!("submitted({c}, {j})");
        let acc = format!("accepted({c}, {j})");
        match x % 5 {
            0 => {
                out.push(Update::InsertFact(fact(&sub)));
                out.push(Update::InsertFact(fact(&acc)));
            }
            1 => {
                out.push(Update::InsertFact(fact(&sub)));
                out.push(Update::InsertFact(fact(&sub))); // duplicate
            }
            2 => {
                out.push(Update::InsertFact(fact(&sub)));
                out.push(Update::DeleteFact(fact(&sub))); // transient
            }
            3 => {
                out.push(Update::DeleteFact(fact(&acc))); // unasserted: reject
                out.push(Update::InsertFact(fact(&sub)));
            }
            _ => {
                out.push(Update::InsertFact(fact(&acc)));
                out.push(Update::InsertFact(fact(&sub)));
                out.push(Update::DeleteFact(fact(&acc)));
            }
        }
    }
    out.truncate(m);
    out
}

/// The sequential oracle: each client's stream applied in client order,
/// one update per transaction. Returns (engine, per-client decisions).
fn oracle(clients: usize, m: usize) -> (EngineBox, Vec<Vec<bool>>) {
    let mut engine = EngineRegistry::standard().build("cascade", program()).unwrap();
    let mut decisions = Vec::new();
    for c in 0..clients {
        decisions.push(client_stream(c, m).iter().map(|u| engine.apply(u).is_ok()).collect());
    }
    (engine, decisions)
}

fn state(e: &dyn MaintenanceEngine) -> (Vec<Fact>, SupportDump) {
    (e.model().sorted_facts(), e.support_dump())
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_svc_ingest_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn n_clients_m_updates_durable_group_commit_and_reopen() {
    const CLIENTS: usize = 4;
    const M: usize = 150;
    let dir = scratch("nm");
    let storage = StorageSpec::wal(dir.clone());
    let registry = EngineRegistry::standard();
    let (service_state, commits, wal_txns, accepted_total) = {
        let engine = registry.build_with_storage("cascade", program(), &storage).unwrap();
        let service = Arc::new(Service::start(
            engine,
            IngestConfig {
                max_group: 32,
                max_delay: Duration::from_millis(5),
                max_pending: 4096,
                ..IngestConfig::default()
            },
        ));
        // Fire-and-forget from CLIENTS producer threads, decisions
        // collected per client at the end: the backlog keeps groups fat.
        let mut workers = Vec::new();
        for c in 0..CLIENTS {
            let service = Arc::clone(&service);
            workers.push(std::thread::spawn(move || {
                let handles: Vec<_> =
                    client_stream(c, M).into_iter().map(|u| service.submit(u)).collect();
                handles.iter().map(|h| h.wait()).map(|o| o.is_accepted()).collect::<Vec<bool>>()
            }));
        }
        let service_decisions: Vec<Vec<bool>> =
            workers.into_iter().map(|w| w.join().expect("client thread")).collect();
        service.flush();
        // Decisions match the oracle exactly (per client — the universes
        // are disjoint, so interleaving cannot change them).
        let (oracle_engine, oracle_decisions) = oracle(CLIENTS, M);
        assert_eq!(service_decisions, oracle_decisions, "per-request decisions");
        let stats = service.stats();
        assert_eq!(stats.accepted + stats.rejected, (CLIENTS * M) as u64, "every request decided");
        let d = stats.durability.expect("durable engine reports stats");
        // Group commit: the WAL holds one transaction per *commit* (net
        // batch), and far fewer commits than accepted updates.
        assert_eq!(d.wal_txns, stats.commits, "one WAL txn per group commit");
        assert!(
            stats.commits * 4 <= stats.accepted,
            "grouping must average >= 4 accepted updates per commit \
             ({} commits for {} accepted)",
            stats.commits,
            stats.accepted
        );
        // The final model equals the oracle's.
        let final_state = service.with_engine(state);
        assert_eq!(final_state.0, oracle_engine.model().sorted_facts(), "final model");
        let engine = match Arc::try_unwrap(service) {
            Ok(s) => s.shutdown(),
            Err(_) => panic!("producers joined, service unshared"),
        };
        assert_eq!(state(engine.as_ref()), final_state, "shutdown returns the live engine");
        (final_state, stats.commits, d.wal_txns, stats.accepted)
    }; // engine dropped: the reopen below is a real recovery
    assert!(wal_txns == commits && accepted_total > 0);
    let reopened = registry.build_with_storage("cascade", Program::new(), &storage).unwrap();
    assert_eq!(
        state(reopened.as_ref()),
        service_state,
        "kill-and-reopen reproduces the service's exact belief state"
    );
    let d = reopened.durability().expect("durable");
    assert_eq!(
        d.recovered_txns, commits,
        "restart metrics surface the recovered group transactions"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_clients_against_one_server_match_the_oracle() {
    const CLIENTS: usize = 3;
    const M: usize = 40;
    let engine = EngineRegistry::standard().build("cascade", program()).unwrap();
    let service = Arc::new(Service::start(
        engine,
        IngestConfig {
            max_group: 16,
            max_delay: Duration::from_millis(2),
            max_pending: 1024,
            ..IngestConfig::default()
        },
    ));
    let server = net::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();
    let mut workers = Vec::new();
    for c in 0..CLIENTS {
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            let decisions: Vec<bool> =
                client_stream(c, M).iter().map(|u| client.submit(u).expect("io").is_ok()).collect();
            client.flush().expect("io").expect("flush ok");
            decisions
        }));
    }
    let service_decisions: Vec<Vec<bool>> =
        workers.into_iter().map(|w| w.join().expect("client thread")).collect();
    let (oracle_engine, oracle_decisions) = oracle(CLIENTS, M);
    assert_eq!(service_decisions, oracle_decisions, "per-request decisions over TCP");
    // Observe the final state through the protocol as well.
    let mut client = Client::connect(&addr).expect("connect");
    let QueryReply::Rows(rows) = client.query("rejected(C, P)").expect("io").expect("query") else {
        panic!("binding query returns rows")
    };
    let oracle_rejected = oracle_engine
        .model()
        .sorted_facts()
        .iter()
        .filter(|f| f.rel == stratamaint::datalog::Symbol::new("rejected"))
        .count();
    assert_eq!(rows.len(), oracle_rejected, "wire query sees the oracle's model");
    let accepted = client.stats_field("accepted").expect("io").expect("stats");
    let rejected = client.stats_field("rejected").expect("io").expect("stats");
    assert_eq!(accepted + rejected, (CLIENTS * M) as u64);
    client.quit().expect("io");
    server.stop();
    // Detached connection threads may still hold their service handles
    // briefly; the model comparison goes through the shared reference.
    assert_eq!(
        service.with_engine(|e| e.model().sorted_facts()),
        oracle_engine.model().sorted_facts(),
        "final model over TCP"
    );
}

#[test]
fn rule_barriers_interleave_with_fact_traffic() {
    let engine = EngineRegistry::standard().build("cascade", program()).unwrap();
    let service = Service::start(engine, IngestConfig::default());
    for j in 0..10 {
        assert!(service
            .apply(Update::InsertFact(fact(&format!("submitted(7, {j})"))))
            .is_accepted());
    }
    let rule = stratamaint::datalog::Rule::parse("flagged(P) :- rejected(7, P).").unwrap();
    assert!(service.apply(Update::InsertRule(rule)).is_accepted());
    assert!(service.apply(Update::InsertFact(fact("submitted(7, 99)"))).is_accepted());
    service.flush();
    let (model, _) = service.with_engine(state);
    assert!(model.contains(&fact("flagged(99)")), "rule fired on later traffic");
    assert!(model.contains(&fact("flagged(0)")), "rule fired on earlier traffic");
    // The oracle agrees.
    let mut oracle = EngineRegistry::standard().build("cascade", program()).unwrap();
    for j in 0..10 {
        oracle.apply(&Update::InsertFact(fact(&format!("submitted(7, {j})")))).unwrap();
    }
    oracle
        .apply(&Update::InsertRule(
            stratamaint::datalog::Rule::parse("flagged(P) :- rejected(7, P).").unwrap(),
        ))
        .unwrap();
    oracle.apply(&Update::InsertFact(fact("submitted(7, 99)"))).unwrap();
    let engine = service.shutdown();
    assert_eq!(engine.model().sorted_facts(), oracle.model().sorted_facts());
}

#[test]
fn backpressure_bounds_pending_under_load() {
    let engine = EngineRegistry::standard().build("cascade", program()).unwrap();
    let service = Arc::new(Service::start(
        engine,
        IngestConfig {
            max_group: 8,
            max_delay: Duration::from_millis(1),
            max_pending: 64,
            ..IngestConfig::default()
        },
    ));
    let producers: Vec<_> = (0..4)
        .map(|c| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for u in client_stream(c, 100) {
                    service.submit(u);
                    assert!(service.stats().pending <= 64, "backpressure bound violated");
                }
            })
        })
        .collect();
    for p in producers {
        p.join().expect("producer");
    }
    service.flush();
    let stats = service.stats();
    assert_eq!(stats.accepted + stats.rejected, 400);
    assert_eq!(stats.pending, 0, "flush drains everything");
}

#[test]
fn outcome_reports_rejection_reasons() {
    let engine = EngineRegistry::standard().build("cascade", program()).unwrap();
    let service = Service::start(engine, IngestConfig::default());
    let Outcome::Rejected(e) = service.apply(Update::DeleteFact(fact("seeded(99)"))) else {
        panic!("unasserted delete must reject")
    };
    assert!(e.to_string().contains("not an asserted fact"), "{e}");
    let Outcome::Accepted { group, version } = service.apply(Update::InsertFact(fact("seeded(1)")))
    else {
        panic!("insert must be accepted")
    };
    assert!(group >= 1);
    assert!(version >= 1, "a committing insert carries its commit version");
}
