//! Every worked example of the paper, executed across every engine.
//!
//! These are the paper's "evaluation": §3 PODS, §4.1 Example 1 (CONF),
//! §4.2 Example 2 (chain) and Example 3 (CONGRESS), §4.2/4.3 Example 4
//! (MEET), and the §5.1 cascade demo. `EXPERIMENTS.md` records the
//! corresponding measured tables (exp_e1 … exp_e6).

use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::strategy::{CascadeEngine, DynamicMultiEngine};
use stratamaint::core::verify::assert_matches_ground_truth;
use stratamaint::core::{EngineBox, MaintenanceEngine, Update};
use stratamaint::datalog::{Fact, Program};
use stratamaint::workload::paper;

fn engines(program: &Program) -> Vec<EngineBox> {
    EngineRegistry::standard().build_all(program)
}

fn fact(s: &str) -> Fact {
    Fact::parse(s).unwrap()
}

/// §3: M(PODS') = M(PODS) \ {rejected(m)} ∪ {accepted(m)}.
#[test]
fn pods_insertion_swaps_rejected_for_accepted() {
    for mut e in engines(&paper::pods(2, 6)) {
        assert!(e.model().contains_parsed("rejected(5)"), "[{}]", e.name());
        e.insert_fact(fact("accepted(5)")).unwrap();
        assert!(e.model().contains_parsed("accepted(5)"), "[{}]", e.name());
        assert!(!e.model().contains_parsed("rejected(5)"), "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
    }
}

/// §3: M(PODS'') = M(PODS) \ {accepted(nj)} ∪ {rejected(nj)}.
#[test]
fn pods_deletion_swaps_accepted_for_rejected() {
    for mut e in engines(&paper::pods(2, 6)) {
        e.delete_fact(fact("accepted(2)")).unwrap();
        assert!(!e.model().contains_parsed("accepted(2)"), "[{}]", e.name());
        assert!(e.model().contains_parsed("rejected(2)"), "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
    }
}

/// §4.1 Example 1: all engines stay correct; only the static engine
/// migrates the asserted fact accepted(l+1).
#[test]
fn conf_example_static_migrates_asserted_fact() {
    let program = paper::conf(3);
    let mut migrations = Vec::new();
    for mut e in engines(&program) {
        let stats = e.insert_fact(fact("rejected(4)")).unwrap();
        assert!(e.model().contains_parsed("accepted(4)"), "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
        migrations.push((e.name(), stats.migrated));
    }
    let migrated = |name: &str| migrations.iter().find(|(n, _)| *n == name).unwrap().1;
    // The static engine removes all 4 accepted facts; 4 migrate back.
    assert_eq!(migrated("static"), 4);
    // The dynamic engines keep the asserted fact but migrate the derived 3.
    assert_eq!(migrated("dynamic-single"), 3);
    assert_eq!(migrated("dynamic-multi"), 3);
    assert_eq!(migrated("cascade"), 3);
    // Fact-level supports and recompute migrate nothing.
    assert_eq!(migrated("fact-level"), 0);
    assert_eq!(migrated("recompute"), 0);
}

/// §4.2 Example 2: the chain p1 ← ¬p0, p2 ← ¬p1, p3 ← ¬p2 under insertion
/// and deletion of p0. (The *naive unsigned* §4.2 variant fails here — that
/// negative result is covered in `strata-core`'s unit tests.)
#[test]
fn chain_example_insert_delete_round_trip() {
    for mut e in engines(&paper::chain(3)) {
        let initial = e.model().sorted_facts();
        e.insert_fact(fact("p0")).unwrap();
        assert!(e.model().contains_parsed("p2"), "[{}]", e.name());
        assert!(!e.model().contains_parsed("p3"), "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
        e.delete_fact(fact("p0")).unwrap();
        assert_eq!(e.model().sorted_facts(), initial, "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
    }
}

/// §4.2 Example 3 (CONGRESS): the second derivation of accepted(l) has the
/// pairwise-smaller support; keeping it prevents migration in §4.2+.
#[test]
fn congress_smaller_support_prevents_migration() {
    let program = paper::congress(4);
    for mut e in engines(&program) {
        let stats = e.insert_fact(fact("rejected(4)")).unwrap();
        assert!(e.model().contains_parsed("accepted(4)"), "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
        if e.name() == "dynamic-single" || e.name() == "dynamic-multi" {
            // accepted(4) keeps its rejected-free support: no migration of it.
            // (accepted(1..3) still migrate at relation granularity.)
            assert_eq!(stats.migrated, 3, "[{}]", e.name());
        }
    }
}

/// §4.2/§4.3 Example 4 (MEET): with one support per fact accepted(a)
/// migrates; with sets of sets (or rule pointers, or fact-level supports)
/// it survives in place.
#[test]
fn meet_example_single_vs_multi_support() {
    let src = "submitted(a). in_pc(chair). author(chair, a).
               accepted(X) :- submitted(X), !rejected(X).
               accepted(Y) :- author(X, Y), in_pc(X).";
    let program = Program::parse(src).unwrap();
    for mut e in engines(&program) {
        let stats = e.insert_fact(fact("rejected(a)")).unwrap();
        assert!(e.model().contains_parsed("accepted(a)"), "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
        match e.name() {
            "dynamic-single" => assert_eq!(stats.migrated, 1, "single support loses Example 4"),
            "dynamic-multi" | "cascade" | "fact-level" | "recompute" => {
                assert_eq!(stats.migrated, 0, "[{}] must keep accepted(a) in place", e.name())
            }
            _ => {}
        }
    }
}

/// §5.1's closing example: INSERT(p) into {r ← p, q ← r, q ← ¬p}. The §4.3
/// engine removes q and re-inserts it; the cascade never removes it.
#[test]
fn cascade_example_improves_on_dynamic_multi() {
    let program = paper::cascade_demo();
    let mut multi = DynamicMultiEngine::new(program.clone()).unwrap();
    let stats = multi.insert_fact(fact("p")).unwrap();
    assert_eq!(stats.migrated, 1, "§4.3 migrates q");
    assert_matches_ground_truth(&multi);

    let mut cascade = CascadeEngine::new(program).unwrap();
    let stats = cascade.insert_fact(fact("p")).unwrap();
    assert_eq!(stats.removed, 0, "§5.1 never removes q");
    assert_eq!(cascade.model().sorted_facts(), multi.model().sorted_facts());
    assert_matches_ground_truth(&cascade);
}

/// Rule updates across all engines on the PODS program.
#[test]
fn rule_updates_agree_across_engines() {
    let program = paper::pods(1, 4);
    let rule: Update = Update::InsertRule(
        stratamaint::datalog::Rule::parse("late(X) :- submitted(X), !accepted(X), !rejected(X).")
            .unwrap(),
    );
    for mut e in engines(&program) {
        // rejected(X) already holds for 2..4, so `late` stays empty…
        e.apply(&rule).unwrap();
        assert_eq!(e.model().count("late".into()), 0, "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
        // …until rejected's rule is deleted.
        e.apply(&Update::DeleteRule(
            stratamaint::datalog::Rule::parse("rejected(X) :- submitted(X), !accepted(X).")
                .unwrap(),
        ))
        .unwrap();
        assert_eq!(e.model().count("late".into()), 3, "[{}]", e.name());
        assert_matches_ground_truth(e.as_ref());
    }
}
