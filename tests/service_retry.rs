//! Idempotent retry under a lossy network: a deterministic proxy sits
//! between a `RetryClient` and the server and kills connections on a
//! schedule — sometimes *before* a request reaches the server (the safe
//! case), sometimes *after* the server has committed but before the ack
//! gets back (the ambiguous case). The client retries every loss under
//! the same `(client, seq)`; the server's dedup window must make the
//! result exactly-once: per-request decisions and the final model equal
//! the no-loss oracle's, for every registered strategy.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::MaintenanceEngine;
use stratamaint::datalog::Program;
use stratamaint::service::net::{self, RetryClient};
use stratamaint::service::{IngestConfig, Service};
use stratamaint::workload::script::{random_fact_script, ScriptConfig};

fn program() -> Program {
    Program::parse(
        "submitted(1). submitted(2). submitted(3). accepted(2). reviewed(3).
         rejected(X) :- submitted(X), !accepted(X).
         notified(X) :- rejected(X), reviewed(X).",
    )
    .unwrap()
}

/// One proxied connection: pump bytes server→client raw, pump lines
/// client→server counting requests, and cut both directions at the
/// scheduled request — before forwarding it (`drop_before`: the server
/// never sees it) or just after (the server processes it; the ack is
/// lost).
fn pump_connection(client: TcpStream, upstream: SocketAddr, cut: usize, drop_before: bool) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let back = {
        let (Ok(mut src), Ok(mut dst)) = (server.try_clone(), client.try_clone()) else { return };
        std::thread::spawn(move || {
            let _ = io::copy(&mut src, &mut dst);
        })
    };
    let mut reader = BufReader::new(match client.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    });
    let mut server_w = match server.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut line = String::new();
    let mut forwarded = 0usize;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if forwarded + 1 == cut && drop_before {
            break; // lost on the way in: the server never sees the request
        }
        if server_w.write_all(line.as_bytes()).and_then(|_| server_w.flush()).is_err() {
            break;
        }
        forwarded += 1;
        if forwarded == cut {
            break; // the request arrived; the ack is (likely) lost
        }
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    let _ = back.join();
}

/// A lossy proxy in front of `upstream`: connection `k` follows
/// `schedule[k % len]`. The schedule always ends with an uncut entry, so
/// liveness survives even a pathologically hostile draw.
fn lossy_proxy(upstream: SocketAddr, mut schedule: Vec<(usize, bool)>) -> SocketAddr {
    schedule.push((usize::MAX, false));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        for (k, stream) in listener.incoming().enumerate() {
            let Ok(client) = stream else { break };
            let (cut, drop_before) = schedule[k % schedule.len()];
            std::thread::spawn(move || pump_connection(client, upstream, cut, drop_before));
        }
    });
    addr
}

/// Drives one strategy's service through the lossy proxy and checks the
/// exactly-once contract against the per-update oracle.
fn lossy_run(strategy: &str, seed: u64, schedule: Vec<(usize, bool)>) {
    let registry = EngineRegistry::standard();
    let engine = registry.build(strategy, program()).unwrap();
    let cfg = IngestConfig {
        max_group: 8,
        max_delay: Duration::from_millis(1),
        ..IngestConfig::default()
    };
    let service = Arc::new(Service::start(engine, cfg));
    let server = net::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind server");
    let proxy = lossy_proxy(server.addr(), schedule);

    let script = random_fact_script(&program(), &ScriptConfig { len: 30, insert_prob: 0.6 }, seed);
    let mut rc =
        RetryClient::with_policy(&proxy.to_string(), "lossy", 24, Duration::from_millis(1));
    let decisions: Vec<bool> = script
        .iter()
        .map(|u| rc.submit(u).expect("retries must converge through the proxy").is_ok())
        .collect();
    assert_eq!(rc.last_seq(), script.len() as u64, "one sequence number per logical submit");
    rc.flush().expect("flush converges").expect("flush acks");

    // The no-loss oracle: the same stream, one update per transaction.
    let mut oracle = registry.build(strategy, program()).unwrap();
    let oracle_decisions: Vec<bool> = script.iter().map(|u| oracle.apply(u).is_ok()).collect();
    assert_eq!(decisions, oracle_decisions, "[{strategy}] decisions diverged under loss");
    assert_eq!(
        service.with_engine(|e| e.model().sorted_facts()),
        oracle.model().sorted_facts(),
        "[{strategy}] model diverged under loss"
    );
    // Exactly-once at the counters too: every logical submit was decided
    // precisely once; ambiguous retries were replays, not re-applications.
    let stats = service.stats();
    assert_eq!(
        stats.accepted + stats.rejected,
        script.len() as u64,
        "[{strategy}] each submit decided exactly once (deduped={})",
        stats.deduped
    );
    server.stop();
}

#[test]
fn every_strategy_survives_a_moderately_lossy_link() {
    // A fixed, representative schedule: an early handshake loss, an
    // ambiguous post-commit loss, a healthy stretch.
    let schedule = vec![(1, true), (3, false), (64, false), (2, false)];
    for name in EngineRegistry::standard().names() {
        lossy_run(name, 1007, schedule.clone());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random scripts × random drop schedules × random strategies: the
    /// retrying client is indistinguishable from a lossless one.
    #[test]
    fn random_loss_schedules_are_exactly_once(
        seed in 0u64..1000,
        strategy_idx in 0usize..64,
        cuts in proptest::collection::vec((1usize..8, proptest::bool::ANY), 1..5),
    ) {
        let names = EngineRegistry::standard().names();
        lossy_run(names[strategy_idx % names.len()], seed, cuts);
    }
}
