//! Facade-level tests of the strategy registry and the batch-update
//! transaction API: every registered name round-trips into a working
//! engine, `apply_all` is atomic for every strategy, and registry-built
//! engines compose with the constraint guard.

use stratamaint::core::constraints::{Constraint, GuardedEngine};
use stratamaint::core::registry::{EngineRegistry, RegistryError};
use stratamaint::core::{MaintenanceEngine, MaintenanceError, Update};
use stratamaint::datalog::{Fact, Program};
use stratamaint::workload::paper;

fn fact(s: &str) -> Fact {
    Fact::parse(s).unwrap()
}

#[test]
fn every_name_builds_a_matching_engine() {
    let registry = EngineRegistry::standard();
    let names = registry.names();
    assert_eq!(
        names,
        vec![
            "recompute",
            "static",
            "dynamic-single",
            "dynamic-multi",
            "cascade",
            "fact-level",
            "cascade-parallel",
            "recompute-parallel",
        ],
        "the six paper strategies in paper order, then the parallel variants"
    );
    for name in names {
        let engine = registry.build(name, paper::pods(2, 6)).unwrap();
        assert_eq!(engine.name(), name);
        assert!(engine.model().contains_parsed("rejected(5)"), "[{name}]");
    }
}

#[test]
fn unknown_strategy_reports_the_candidates() {
    let registry = EngineRegistry::standard();
    let err = registry.build("paxos", Program::new()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unknown strategy `paxos`"), "{msg}");
    assert!(msg.contains("dynamic-multi"), "candidates listed: {msg}");
    assert!(matches!(err, RegistryError::UnknownStrategy { .. }));
}

#[test]
fn apply_all_is_atomic_for_every_registered_strategy() {
    let registry = EngineRegistry::standard();
    for name in registry.names() {
        let mut engine = registry.build(name, paper::pods(2, 6)).unwrap();
        let before = engine.model().sorted_facts();
        // The middle update deletes a fact that is derived, not asserted:
        // rejected, and the whole batch must be undone.
        let err = engine
            .apply_all(&[
                Update::InsertFact(fact("accepted(1)")),
                Update::DeleteFact(fact("rejected(5)")),
                Update::InsertFact(fact("submitted(9)")),
            ])
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::NotAsserted(_)), "[{name}] {err}");
        assert_eq!(engine.model().sorted_facts(), before, "[{name}] model unchanged");
        // The engine stays usable after a rejected batch.
        engine.apply_all(&[Update::InsertFact(fact("accepted(1)"))]).unwrap();
        assert!(!engine.model().contains_parsed("rejected(1)"), "[{name}]");
    }
}

#[test]
fn registry_engines_compose_with_the_constraint_guard() {
    let registry = EngineRegistry::standard();
    for name in registry.names() {
        let engine = registry.build(name, paper::pods(2, 6)).unwrap();
        let mut guarded = GuardedEngine::unconstrained(engine);
        guarded
            .add_constraint(Constraint::parse(":- accepted(X), withdrawn(X).").unwrap())
            .unwrap();
        let before = guarded.model().sorted_facts();
        // The batch ends with paper 2 both accepted (it already is) and
        // withdrawn: the final state violates the denial.
        let err = guarded
            .apply_all(&[
                Update::InsertFact(fact("submitted(10)")),
                Update::InsertFact(fact("withdrawn(2)")),
            ])
            .unwrap_err();
        assert!(err.to_string().contains("violates"), "[{name}] {err}");
        assert_eq!(guarded.model().sorted_facts(), before, "[{name}] batch rolled back");
        // A clean batch passes and nets the expected model change.
        guarded
            .apply_all(&[
                Update::InsertFact(fact("submitted(10)")),
                Update::InsertFact(fact("accepted(10)")),
            ])
            .unwrap();
        assert!(guarded.model().contains_parsed("accepted(10)"), "[{name}]");
        assert!(!guarded.model().contains_parsed("rejected(10)"), "[{name}]");
    }
}
