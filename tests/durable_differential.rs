//! `DurableEngine`-wrapped engines must be observationally identical to
//! their in-memory counterparts — model, support dumps, accept/reject
//! decisions, statistics — and must reproduce that state exactly after a
//! kill-and-reopen. The durable layer is a *logger*, never a participant.

use std::path::PathBuf;

use proptest::prelude::*;
use stratamaint::core::constraints::{Constraint, GuardedEngine};
use stratamaint::core::durable::DurableEngine;
use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{MaintenanceEngine, StorageSpec, Update};
use stratamaint::datalog::{Fact, Program, Rule};
use stratamaint::store::{Durability, SNAPSHOT_FILE};
use stratamaint::workload::paper;
use stratamaint::workload::script::{random_fact_script, ScriptConfig};
use stratamaint::workload::synth;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_diff_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The full observable state of an engine.
fn state(e: &dyn MaintenanceEngine) -> (Vec<Fact>, stratamaint::core::SupportDump) {
    (e.model().sorted_facts(), e.support_dump())
}

/// The snapshot's *state* bytes (the canonical payload: program + model +
/// support dump). The header's sequence number records how much history
/// preceded the snapshot, so it is excluded from byte-identity claims.
fn snapshot_state_bytes(dir: &std::path::Path) -> Vec<u8> {
    let bytes = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
    stratamaint::store::Snapshot::decode(&bytes).unwrap().payload
}

/// A script with engine-rejected updates spliced in, so the differential
/// covers the error path too.
fn script_with_rejections(program: &Program, seed: u64, len: usize) -> Vec<Update> {
    let mut script = random_fact_script(program, &ScriptConfig { len, insert_prob: 0.5 }, seed);
    let ghost = Update::DeleteFact(Fact::parse("absolutely_not_asserted(999)").unwrap());
    let step = (script.len() / 3).max(1);
    let mut at = step;
    while at <= script.len() {
        script.insert(at, ghost.clone());
        at += step + 1;
    }
    script
}

/// Replays `script` step-by-step on the plain and durable builds of every
/// registered strategy, checking observational equality at each step, then
/// kills the durable engine and checks the reopened state.
fn differential_on(program: &Program, label: &str, seed: u64, len: usize) {
    let registry = EngineRegistry::standard();
    let script = script_with_rejections(program, seed, len);
    for name in registry.names() {
        let dir = scratch(&format!("{label}_{name}"));
        let storage = StorageSpec::wal(dir.clone());
        let mut plain = registry.build(name, program.clone()).unwrap();
        let mut durable = registry.build_with_storage(name, program.clone(), &storage).unwrap();
        assert_eq!(state(plain.as_ref()), state(durable.as_ref()), "[{name}] initial");
        for (i, u) in script.iter().enumerate() {
            let a = plain.apply(u);
            let b = durable.apply(u);
            match (&a, &b) {
                (Ok(sa), Ok(sb)) => assert_eq!(sa, sb, "[{name}] step {i} stats"),
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea.to_string(), eb.to_string(), "[{name}] step {i} error")
                }
                _ => panic!("[{name}] step {i}: decisions diverged ({a:?} vs {b:?})"),
            }
            assert_eq!(state(plain.as_ref()), state(durable.as_ref()), "[{name}] step {i}");
        }
        // Kill (drop) and reopen: the recovered state must be exact.
        let expected = state(plain.as_ref());
        drop(durable);
        let reopened = registry.build_with_storage(name, Program::new(), &storage).unwrap();
        assert_eq!(state(reopened.as_ref()), expected, "[{name}] kill-and-reopen");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn durable_equals_inmemory_on_paper_workload() {
    differential_on(
        &Program::parse(
            "submitted(1). submitted(2). submitted(3). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap(),
        "pods",
        1,
        30,
    );
    differential_on(&paper::congress(4), "congress", 2, 25);
}

#[test]
fn durable_equals_inmemory_on_conference_pipeline() {
    differential_on(&synth::conference(12, 4, 7), "conf", 3, 25);
}

#[test]
fn durable_equals_inmemory_on_tc_complement() {
    differential_on(&synth::tc_complement(5, 8, 11), "tc", 4, 20);
}

#[test]
fn durable_equals_inmemory_on_random_programs() {
    for pseed in 0..2 {
        let cfg = synth::RandomConfig {
            edb_rels: 3,
            idb_rels: 5,
            rules_per_rel: 2,
            facts_per_rel: 10,
            domain: 8,
            neg_prob: 0.35,
        };
        let program = synth::random_stratified(&cfg, pseed);
        differential_on(&program, &format!("rand{pseed}"), 5 + pseed, 20);
    }
}

#[test]
fn durable_batches_equal_inmemory_batches() {
    let program = synth::conference(10, 3, 5);
    let registry = EngineRegistry::standard();
    let script = random_fact_script(&program, &ScriptConfig { len: 24, insert_prob: 0.5 }, 9);
    for name in registry.names() {
        let dir = scratch(&format!("batch_{name}"));
        let storage = StorageSpec::wal(dir.clone());
        let mut plain = registry.build(name, program.clone()).unwrap();
        let mut durable = registry.build_with_storage(name, program.clone(), &storage).unwrap();
        for chunk in script.chunks(6) {
            let a = plain.apply_all(chunk);
            let b = durable.apply_all(chunk);
            assert_eq!(a.is_ok(), b.is_ok(), "[{name}]");
            assert_eq!(state(plain.as_ref()), state(durable.as_ref()), "[{name}]");
        }
        drop(durable);
        let reopened = registry.build_with_storage(name, Program::new(), &storage).unwrap();
        assert_eq!(state(reopened.as_ref()), state(plain.as_ref()), "[{name}] reopen");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn rule_updates_differential() {
    let program = Program::parse("e(1). e(2). base(X) :- e(X).").unwrap();
    let registry = EngineRegistry::standard();
    let updates = [
        Update::InsertRule(Rule::parse("p(X) :- e(X), !q(X).").unwrap()),
        Update::InsertFact(Fact::parse("q(1)").unwrap()),
        Update::InsertRule(Rule::parse("r(X) :- p(X).").unwrap()),
        Update::DeleteRule(Rule::parse("p(X) :- e(X), !q(X).").unwrap()),
        Update::InsertFact(Fact::parse("e(3)").unwrap()),
        // A rejected rule insertion: recursion through negation.
        Update::InsertRule(Rule::parse("q(X) :- e(X), !r2(X).").unwrap()),
        Update::DeleteRule(Rule::parse("never_added(X) :- e(X).").unwrap()),
    ];
    for name in registry.names() {
        let dir = scratch(&format!("rules_{name}"));
        let storage = StorageSpec::wal(dir.clone());
        let mut plain = registry.build(name, program.clone()).unwrap();
        let mut durable = registry.build_with_storage(name, program.clone(), &storage).unwrap();
        for (i, u) in updates.iter().enumerate() {
            let a = plain.apply(u);
            let b = durable.apply(u);
            assert_eq!(a.is_ok(), b.is_ok(), "[{name}] step {i}");
            assert_eq!(state(plain.as_ref()), state(durable.as_ref()), "[{name}] step {i}");
        }
        drop(durable);
        let reopened = registry.build_with_storage(name, Program::new(), &storage).unwrap();
        assert_eq!(state(reopened.as_ref()), state(plain.as_ref()), "[{name}] reopen");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Chain-replay equivalence for **every registered strategy**: a workload
/// checkpointed through an incremental snapshot chain, then killed and
/// reopened, must land the exact model of the live engine — and the
/// canonical support dump (the store's normal form: what a fresh engine
/// built from the recovered program holds). Both replay modes are checked.
#[test]
fn chain_recovery_is_exact_for_every_strategy() {
    use stratamaint::core::durable::{ReplayMode, SnapshotMode};

    let program = synth::conference(10, 3, 5);
    let registry = EngineRegistry::standard();
    let script = script_with_rejections(&program, 21, 18);
    for name in registry.names() {
        let dir = scratch(&format!("chain_{name}"));
        let storage =
            StorageSpec::wal(dir.clone()).snapshot_mode(SnapshotMode::Incremental { max_chain: 8 });
        let mut live = registry.build_with_storage(name, program.clone(), &storage).unwrap();
        for chunk in script.chunks(4) {
            for u in chunk {
                let _ = live.apply(u); // rejections are part of the workload
            }
            live.checkpoint().unwrap(); // grows the delta chain
        }
        let expected_model = live.model().sorted_facts();
        let canonical = registry.build(name, live.program().clone()).unwrap().support_dump();
        drop(live);
        for replay in [ReplayMode::Engine, ReplayMode::Bulk] {
            let reopened = registry
                .build_with_storage(name, Program::new(), &storage.clone().replay(replay))
                .unwrap();
            assert_eq!(
                reopened.model().sorted_facts(),
                expected_model,
                "[{name}/{replay}] chain recovery: model"
            );
            assert_eq!(
                reopened.support_dump(),
                canonical,
                "[{name}/{replay}] chain recovery: canonical supports"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Bulk replay ≡ engine replay on random workloads: both modes must
    /// recover the byte-identical model. Engine replay additionally
    /// reproduces the live engine's support dump exactly; bulk recovery
    /// holds the canonical dump of the recovered program (the same normal
    /// form `compact` writes).
    #[test]
    fn bulk_replay_equals_engine_replay(seed in 0u64..500) {
        use stratamaint::core::durable::ReplayMode;

        let cfg = synth::RandomConfig {
            edb_rels: 3,
            idb_rels: 4,
            rules_per_rel: 2,
            facts_per_rel: 8,
            domain: 6,
            neg_prob: 0.35,
        };
        let program = synth::random_stratified(&cfg, seed);
        let script = script_with_rejections(&program, seed ^ 0xb01d, 16);
        let registry = EngineRegistry::standard();
        let names = registry.names();
        let name = names[(seed % names.len() as u64) as usize];
        let dir = scratch(&format!("bulk_{name}_{seed}"));
        let storage = StorageSpec::wal(dir.clone());
        let mut live = registry.build_with_storage(name, program.clone(), &storage).unwrap();
        for u in &script {
            let _ = live.apply(u);
        }
        let live_state = state(live.as_ref());
        let canonical =
            registry.build(name, live.program().clone()).unwrap().support_dump();
        drop(live);

        let engine_replayed = registry
            .build_with_storage(name, Program::new(), &storage.clone().replay(ReplayMode::Engine))
            .unwrap();
        prop_assert_eq!(
            state(engine_replayed.as_ref()),
            live_state.clone(),
            "[{}] engine replay must be byte-exact", name
        );
        let bulk_replayed = registry
            .build_with_storage(name, Program::new(), &storage.clone().replay(ReplayMode::Bulk))
            .unwrap();
        prop_assert_eq!(
            bulk_replayed.model().sorted_facts(),
            live_state.0,
            "[{}] bulk replay: model", name
        );
        prop_assert_eq!(
            bulk_replayed.support_dump(),
            canonical,
            "[{}] bulk replay: canonical supports", name
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Acceptance criterion: a batch rejected by `GuardedEngine` leaves the
/// on-disk state equivalent to the pre-batch state after recovery — and the
/// compacted snapshot is byte-identical to one taken at the pre-batch
/// state.
#[test]
fn guarded_rejection_leaves_disk_state_byte_identical() {
    let program = Program::parse("submitted(1). submitted(2). rejected(2).").unwrap();
    let registry = EngineRegistry::standard();
    let ctor = registry.ctor("cascade").unwrap();

    // Reference: the pre-batch state, compacted, snapshot bytes captured.
    let ref_dir = scratch("guard_ref");
    let mut reference =
        DurableEngine::open(&ref_dir, "cascade", ctor.clone(), program.clone(), Durability::Fsync)
            .unwrap();
    reference.compact().unwrap();
    let ref_snapshot = snapshot_state_bytes(&ref_dir);
    let pre_state = state(&reference);

    // Subject: same state, then a guarded batch that violates a denial.
    let dir = scratch("guard_subj");
    let subject =
        DurableEngine::open(&dir, "cascade", ctor.clone(), program, Durability::Fsync).unwrap();
    let mut guarded = GuardedEngine::unconstrained(subject);
    guarded.add_constraint(Constraint::parse(":- accepted(X), rejected(X).").unwrap()).unwrap();
    let err = guarded
        .apply_all(&[
            Update::InsertFact(Fact::parse("submitted(7)").unwrap()),
            Update::InsertFact(Fact::parse("accepted(2)").unwrap()), // violates
        ])
        .unwrap_err();
    assert!(err.to_string().contains("violates"), "{err}");
    assert_eq!(state(guarded.inner()), pre_state, "live state rolled back");

    // Kill, recover, compact: the snapshot must equal the reference's
    // byte for byte.
    drop(guarded);
    let mut reopened =
        DurableEngine::open(&dir, "cascade", ctor, Program::new(), Durability::Fsync).unwrap();
    assert_eq!(state(&reopened), pre_state, "recovered state is pre-batch");
    reopened.compact().unwrap();
    let subj_snapshot = snapshot_state_bytes(&dir);
    assert_eq!(subj_snapshot, ref_snapshot, "compacted snapshot payloads byte-identical");

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
