//! The belief-revision correspondence (paper §1/§6): a stratified database
//! maintained by the engines, a Doyle JTMS over the grounded program, and —
//! on the definite fragment — de Kleer ATMS fact-level labels all agree on
//! what is believed.

use proptest::prelude::*;
use stratamaint::core::strategy::CascadeEngine;
use stratamaint::core::MaintenanceEngine;
use stratamaint::datalog::model::StandardModel;
use stratamaint::datalog::{Fact, Program};
use stratamaint::tms::bridge::{FactSupports, JtmsBridge};
use stratamaint::workload::paper;
use stratamaint::workload::script::{random_fact_script, ScriptConfig};
use stratamaint::workload::synth::{random_stratified, RandomConfig};

fn model_facts(program: &Program) -> Vec<Fact> {
    let mut v: Vec<Fact> = StandardModel::compute(program).unwrap().db().iter_facts().collect();
    v.sort();
    v
}

#[test]
fn jtms_in_set_is_the_standard_model_on_paper_examples() {
    for program in [
        paper::pods(2, 6),
        paper::conf(4),
        paper::congress(4),
        paper::meet(3, 2),
        paper::cascade_demo(),
        paper::chain(5),
    ] {
        let bridge = JtmsBridge::new(&program, 500_000).unwrap();
        assert_eq!(bridge.believed_facts(), model_facts(&program));
    }
}

#[test]
fn jtms_tracks_engine_across_update_script() {
    let program = paper::pods(2, 6);
    let script = random_fact_script(&program, &ScriptConfig { len: 25, insert_prob: 0.5 }, 42);
    let mut engine = CascadeEngine::new(program.clone()).unwrap();
    let mut bridge = JtmsBridge::new(&program, 500_000).unwrap();
    for u in &script {
        match u {
            stratamaint::core::Update::InsertFact(f) => {
                engine.insert_fact(f.clone()).unwrap();
                bridge.assert_fact(f.clone());
            }
            stratamaint::core::Update::DeleteFact(f) => {
                engine.delete_fact(f.clone()).unwrap();
                assert!(bridge.retract_fact(f), "script deletes only asserted facts");
            }
            _ => unreachable!("fact scripts only"),
        }
        assert_eq!(
            bridge.believed_facts(),
            engine.model().sorted_facts(),
            "JTMS and engine diverged after {u}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The JTMS encoding reproduces M(P) on random stratified programs.
    #[test]
    fn jtms_matches_model_on_random_programs(seed in 0u64..1000) {
        let cfg = RandomConfig {
            edb_rels: 2, idb_rels: 4, rules_per_rel: 2,
            facts_per_rel: 4, domain: 4, neg_prob: 0.4,
        };
        let program = random_stratified(&cfg, seed);
        let bridge = JtmsBridge::new(&program, 500_000).unwrap();
        prop_assert_eq!(bridge.believed_facts(), model_facts(&program));
    }

    /// ATMS-derived facts equal the model on random definite programs, and
    /// `survives_deletion` answers exactly as a recomputation would.
    #[test]
    fn atms_labels_decide_deletions_exactly(seed in 0u64..1000) {
        let cfg = RandomConfig {
            edb_rels: 2, idb_rels: 3, rules_per_rel: 2,
            facts_per_rel: 4, domain: 4, neg_prob: 0.0, // definite
        };
        let program = random_stratified(&cfg, seed);
        let fs = FactSupports::new(&program, 500_000).unwrap();
        prop_assert_eq!(fs.derivable_facts(), model_facts(&program));

        // Pick the first asserted fact and compare label-based survival
        // with actual recomputation.
        let Some(victim) = program.facts().next().cloned() else { return Ok(()) };
        let mut smaller = program.clone();
        smaller.retract_fact(&victim);
        let recomputed = model_facts(&smaller);
        for f in model_facts(&program) {
            let survives = fs.survives_deletion(&f, std::slice::from_ref(&victim));
            let really = recomputed.contains(&f);
            prop_assert_eq!(
                survives, really,
                "label verdict differs from recomputation on {} after deleting {}",
                f, victim
            );
        }
    }
}
