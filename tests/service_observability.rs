//! End-to-end observability: a live TCP server under a saturating
//! multi-client writer exposes the pipeline through the `metrics` and
//! `trace` wire verbs, and the numbers cohere with the acks the clients
//! actually received.
//!
//! * **Metrics exposition** — the Prometheus text surface carries the
//!   group-commit and WAL-fsync latency histograms, the queue depth
//!   gauge, and the supervisor gauges; `# TYPE` names come out sorted
//!   (diff-stable) and histogram buckets are cumulative up to `+Inf` =
//!   `_count`.
//! * **Trace coherence** — every ack's group ordinal maps to exactly one
//!   sealed span (filtered by the service's process-unique worker id),
//!   per-stage timestamps are monotonic (enqueue ≤ cut ≤ coalesce ≤
//!   apply ≤ fsync ≤ publish), trace ids are distinct, and the spans'
//!   sizes sum to the number of accepted submits.
//! * **Supervisor events** — an injected worker panic (the PR 7 fault
//!   injector) leaves a typed panic-caught / heal-attempt / healed event
//!   sequence and bumps the restart metrics.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{EngineBox, FaultPlan, MaintenanceError, StorageSpec, Update};
use stratamaint::datalog::{Fact, Program};
use stratamaint::obs::{self, EventKind};
use stratamaint::service::net::{self, Client};
use stratamaint::service::{EngineRebuild, IngestConfig, Service, SupervisorConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_obs_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tight_cfg() -> IngestConfig {
    IngestConfig {
        max_group: 8,
        max_delay: Duration::from_millis(1),
        max_pending: 256,
        ..IngestConfig::default()
    }
}

fn program() -> Program {
    Program::parse("seeded(0). rejected(C, P) :- submitted(C, P), !accepted(C, P).").unwrap()
}

/// A durable supervised service over `dir`, healing by WAL replay.
fn durable_service(dir: &Path, plan: Option<&FaultPlan>) -> Service {
    let storage = StorageSpec::wal(dir.to_path_buf());
    let faults = plan.map(|p| Arc::new(p.arm()));
    let engine = EngineRegistry::standard()
        .build_with_storage_faults("cascade", program(), &storage, faults.clone())
        .expect("open store");
    let rebuild: EngineRebuild = {
        let storage = storage.clone();
        Arc::new(move || {
            EngineRegistry::standard()
                .build_with_storage("cascade", Program::new(), &storage)
                .map_err(|e| MaintenanceError::Storage(format!("rebuild failed: {e}")))
        })
    };
    let supervisor = SupervisorConfig {
        max_restarts: 3,
        backoff: Duration::from_millis(1),
        probe_interval: Duration::from_millis(5),
    };
    Service::start_supervised(engine, tight_cfg(), supervisor, Some(rebuild), faults)
}

/// An in-memory service (unsupervised start — no rebuild source).
fn mem_service() -> Service {
    let engine: EngineBox = EngineRegistry::standard().build("cascade", program()).unwrap();
    Service::start(engine, tight_cfg())
}

/// `threads` clients × `per_client` distinct inserts against `addr`;
/// returns every ack's group ordinal (all submits must be accepted).
fn saturate(addr: &str, threads: usize, per_client: usize) -> Vec<u64> {
    let mut handles = Vec::new();
    for c in 0..threads {
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            let mut groups = Vec::with_capacity(per_client);
            for j in 0..per_client {
                let update =
                    Update::InsertFact(Fact::parse(&format!("submitted({c}, {j})")).unwrap());
                let ack = client.submit(&update).expect("io").expect("accepted");
                groups.push(ack.group);
            }
            client.quit().expect("quit");
            groups
        }));
    }
    handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
}

/// Parses one rendered span line into its `key=value` fields.
fn span_fields(line: &str) -> HashMap<String, String> {
    line.split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn field_u64(span: &HashMap<String, String>, key: &str) -> u64 {
    span[key].parse().unwrap_or_else(|_| panic!("non-numeric {key} in {span:?}"))
}

#[test]
fn metrics_exposition_over_a_live_saturated_server() {
    let dir = scratch("metrics");
    let service = Arc::new(durable_service(&dir, None));
    let handle = net::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let acks = saturate(&handle.addr().to_string(), 4, 40);
    assert_eq!(acks.len(), 160, "every submit accepted");

    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let text = client.metrics().expect("io").expect("metrics ok");

    // The headline series the issue demands, all present with type lines.
    for needle in [
        "# TYPE strata_group_commit_us histogram",
        "# TYPE strata_wal_fsync_us histogram",
        "# TYPE strata_queue_depth gauge",
        "# TYPE strata_service_worker_restarts gauge",
        "# TYPE strata_service_read_only gauge",
        "strata_service_worker_restarts 0",
        "strata_service_read_only 0",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }

    // Both latency histograms actually observed this run's traffic.
    for hist in ["strata_group_commit_us", "strata_wal_fsync_us"] {
        let count = metric_value(&text, &format!("{hist}_count")).unwrap();
        assert!(count > 0, "{hist} recorded nothing:\n{text}");
        // Cumulative buckets: non-decreasing, and +Inf equals _count.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with(&format!("{hist}_bucket{{le=")))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!buckets.is_empty(), "{hist} has no buckets");
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{hist} not cumulative: {buckets:?}");
        let inf = text
            .lines()
            .find(|l| l.starts_with(&format!("{hist}_bucket{{le=\"+Inf\"}}")))
            .and_then(|l| l.rsplit(' ').next().unwrap().parse::<u64>().ok())
            .unwrap();
        assert_eq!(inf, count, "{hist}: +Inf bucket must equal _count");
    }

    // Satellite: `# TYPE` lines are sorted by metric name (diff-stable).
    let names: Vec<&str> = text
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .map(|l| l.split(' ').next().unwrap())
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "exposition must be sorted by metric name");

    // Satellite: the legacy stats line and the registry agree.
    let stats = client.stats().expect("io").expect("stats ok");
    let text = client.metrics().expect("io").expect("metrics ok");
    for (skey, mname) in [
        ("worker_restarts", "strata_service_worker_restarts"),
        ("blocked", "strata_service_blocked"),
        ("snapshot_reads", "strata_service_snapshot_reads"),
    ] {
        let s: u64 = stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(skey)?.strip_prefix('=')?.parse().ok())
            .unwrap_or_else(|| panic!("{skey} missing from stats: {stats}"));
        let m = metric_value(&text, mname)
            .unwrap_or_else(|| panic!("{mname} missing from metrics:\n{text}"));
        assert_eq!(s, m, "stats {skey} and registry {mname} must agree");
    }

    handle.stop();
    drop(client);
    drop(service); // connection threads hold the last refs briefly
    let _ = std::fs::remove_dir_all(&dir);
}

/// A counter/gauge sample's value from the exposition text.
fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|l| l.strip_prefix(name)?.strip_prefix(' ')?.trim().parse().ok())
}

/// The `compact` verb and the recovery-facing surface over a live
/// connection: the stats line carries the new durability keys, the
/// recovery gauges ride the exposition, `compact` acks with the covered
/// sequence and bumps `strata_store_compactions_total` — and an
/// in-memory server refuses the verb with a typed reason.
#[test]
fn compact_verb_and_recovery_surface_over_the_wire() {
    let dir = scratch("compact_wire");
    let service = Arc::new(durable_service(&dir, None));
    let handle = net::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    for j in 0..6 {
        let update = Update::InsertFact(Fact::parse(&format!("submitted(1, {j})")).unwrap());
        client.submit(&update).expect("io").expect("accepted");
    }

    let stats = client.stats().expect("io").expect("stats ok");
    for key in ["recovery_ms=", "snapshot_chain_len=", "snapshot_seq=", "replay_mode="] {
        assert!(stats.contains(key), "stats line missing {key}: {stats}");
    }
    assert!(stats.contains("replay_mode=engine"), "default replay mode on the wire: {stats}");

    let seq = client.compact().expect("io").expect("compact acks with a sequence");
    assert!(seq > 0, "the snapshot must cover the committed transactions");
    assert_eq!(client.stats_field("snapshot_seq").unwrap(), Some(seq));
    assert_eq!(client.stats_field("wal_txns").unwrap(), Some(0), "compaction empties the WAL");
    assert_eq!(client.stats_field("snapshot_chain_len").unwrap(), Some(0));
    // Idempotent: nothing new to cover, the sequence stands still.
    assert_eq!(client.compact().expect("io").expect("recompact"), seq);

    let text = client.metrics().expect("io").expect("metrics ok");
    for gauge in ["strata_recovery_ms", "strata_snapshot_chain_len", "strata_replay_bulk"] {
        assert!(
            metric_value(&text, gauge).is_some(),
            "{gauge} missing from the exposition:\n{text}"
        );
    }
    let compactions = metric_value(&text, "strata_store_compactions_total").unwrap_or(0);
    assert!(compactions >= 2, "both compacts must count: {compactions}");

    handle.stop();
    drop(client);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);

    // The in-memory counterpart refuses the verb with a reason.
    let service = Arc::new(mem_service());
    let handle = net::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let err = client.compact().expect("io").expect_err("mem engine cannot compact");
    assert!(err.contains("in-memory"), "{err}");
    handle.stop();
    drop(client);
}

#[test]
fn every_ack_maps_to_exactly_one_monotonic_span() {
    let dir = scratch("spans");
    let service = Arc::new(durable_service(&dir, None));
    let worker = service.worker_ordinal();
    let handle = net::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let acks = saturate(&handle.addr().to_string(), 3, 30);

    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let spans = client.trace(1024).expect("io").expect("trace ok");
    handle.stop();

    // Our service's sealed fact-group spans, keyed by group ordinal.
    let mut by_group: HashMap<u64, HashMap<String, String>> = HashMap::new();
    for line in &spans {
        let f = span_fields(line);
        if f["worker"] == worker.to_string() && f["kind"] == "facts" {
            assert_eq!(f["committed"], "true", "no faults injected: {line}");
            let prev = by_group.insert(field_u64(&f, "group"), f);
            assert!(prev.is_none(), "two spans for one group: {line}");
        }
    }

    // Every acked group ordinal has exactly one span (enforced above),
    // and the span sizes sum to the number of accepted submits.
    let mut acked_groups: Vec<u64> = acks.clone();
    acked_groups.sort_unstable();
    acked_groups.dedup();
    for g in &acked_groups {
        assert!(by_group.contains_key(g), "acked group {g} has no span");
    }
    let total: u64 = by_group.values().map(|f| field_u64(f, "size")).sum();
    assert_eq!(total as usize, acks.len(), "span sizes must sum to accepted submits");

    // Distinct trace ids across all spans, each in exactly one span.
    let mut seen = std::collections::HashSet::new();
    for f in by_group.values() {
        let traces = &f["traces"];
        for id in traces.split(',') {
            let id: u64 = id.parse().expect("numeric trace id");
            assert!(seen.insert(id), "trace id {id} appears in two spans");
        }
    }
    assert_eq!(seen.len(), acks.len(), "one trace id per accepted submit");

    // Per-stage monotonicity through the whole pipeline.
    for f in by_group.values() {
        let stamps = [
            field_u64(f, "enqueue_us"),
            field_u64(f, "cut_us"),
            field_u64(f, "coalesce_us"),
            field_u64(f, "apply_us"),
            field_u64(f, "fsync_us"),
            field_u64(f, "publish_us"),
        ];
        assert!(
            stamps.windows(2).all(|w| w[0] <= w[1]),
            "stages must be monotonic (enqueue ≤ cut ≤ coalesce ≤ apply ≤ fsync ≤ publish): {f:?}"
        );
        assert_eq!(
            field_u64(f, "commit_us"),
            field_u64(f, "publish_us") - field_u64(f, "cut_us"),
            "commit_us is cut→publish: {f:?}"
        );
    }

    drop(client);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervisor_heal_leaves_typed_events_and_metrics() {
    let dir = scratch("heal");
    // Third group panics before apply; the supervisor must heal from WAL.
    let plan: FaultPlan = "panic-pre-apply@3".parse().unwrap();
    let service = durable_service(&dir, Some(&plan));
    let mut rejected = 0;
    for j in 0..20 {
        let update = Update::InsertFact(Fact::parse(&format!("submitted(9, {j})")).unwrap());
        match service.apply(update) {
            o if o.is_accepted() => {}
            _ => rejected += 1,
        }
        // One group per request, so the one-shot fault fires early on.
        service.flush();
    }
    assert!(rejected >= 1, "the injected panic must reject its group");
    let stats = service.stats();
    assert_eq!(stats.worker_restarts, 1, "one heal after the one-shot panic");

    // The event ring carries the typed supervisor story…
    let events = obs::trace::recent_events(256);
    for kind in [EventKind::PanicCaught, EventKind::HealAttempt, EventKind::Healed] {
        assert!(events.iter().any(|e| e.kind == kind), "missing {kind:?} event in {events:?}");
    }
    let panic_at = events.iter().position(|e| e.kind == EventKind::PanicCaught).unwrap();
    let healed_at = events.iter().rposition(|e| e.kind == EventKind::Healed).unwrap();
    assert!(panic_at < healed_at, "healed must follow the caught panic");

    // …and the registry counts it (events counter + supervisor metrics).
    let text = obs::render();
    let caught = metric_value(&text, "strata_events_total{kind=\"panic_caught\"}").unwrap();
    assert!(caught >= 1, "panic_caught counter:\n{text}");
    let restarts = metric_value(&text, "strata_supervisor_restarts_total").unwrap();
    assert!(restarts >= 1, "restart counter:\n{text}");
    let attempts = metric_value(&text, "strata_supervisor_heal_attempts_total").unwrap();
    assert!(attempts >= restarts, "attempts cover restarts:\n{text}");

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mem_engine_spans_backfill_the_fsync_stage() {
    let service = mem_service();
    let worker = service.worker_ordinal();
    assert!(service
        .apply(Update::InsertFact(Fact::parse("accepted(1, 1)").unwrap()))
        .is_accepted());
    let spans = obs::trace::recent_spans(1024);
    let span = spans.iter().find(|s| s.worker == worker).expect("mem service sealed a span");
    // No WAL: the fsync stamp is backfilled to the apply stamp.
    assert_eq!(span.apply_us, span.fsync_us, "{span:?}");
    assert!(span.committed && span.size == 1, "{span:?}");
    service.shutdown();
}
