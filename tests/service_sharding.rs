//! The sharded serving layer must be observationally identical to a
//! single-worker oracle: same accept/reject decisions, same model, same
//! support dump — for every registered strategy, live and after killing
//! and reopening every per-shard WAL. Sharding is a *router*, never a
//! participant in maintenance semantics.

use std::path::PathBuf;
use std::sync::Arc;

use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{StorageSpec, Update};
use stratamaint::datalog::{Fact, Program, Rule};
use stratamaint::service::{DbOptions, Outcome, ShardedDb};
use stratamaint::workload::script::{random_fact_script, ScriptConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_shard_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three disjoint stratum components, so a shard target of 3 actually
/// spreads the database across three independent workers.
fn three_components() -> Program {
    Program::parse(
        "submitted(1). submitted(2). accepted(2).
         rejected(X) :- submitted(X), !accepted(X).
         emp(1). emp(2). mgr(2).
         worker(X) :- emp(X), !mgr(X).
         item(1). item(2). sold(1).
         stock(X) :- item(X), !sold(X).",
    )
    .unwrap()
}

/// A fact script with engine-rejected deletes spliced in, so the
/// differential covers the error path across shards too.
fn script_with_rejections(program: &Program, seed: u64, len: usize) -> Vec<Update> {
    let mut script = random_fact_script(program, &ScriptConfig { len, insert_prob: 0.5 }, seed);
    let ghost = Update::DeleteFact(Fact::parse("absolutely_not_asserted(999)").unwrap());
    let step = (script.len() / 3).max(1);
    let mut at = step;
    while at <= script.len() {
        script.insert(at, ghost.clone());
        at += step + 1;
    }
    script
}

/// Applies one update to both sides and checks the decisions agree.
fn lockstep(
    db: &ShardedDb,
    oracle: &mut dyn stratamaint::core::MaintenanceEngine,
    u: &Update,
    ctx: &str,
) {
    let outcome = db.submit(u.clone()).wait();
    let expected = oracle.apply(u);
    match (&outcome, &expected) {
        (Outcome::Accepted { .. }, Ok(_)) => {}
        (Outcome::Rejected(e), Err(oe)) => {
            assert_eq!(e.to_string(), oe.to_string(), "{ctx}: errors must match");
        }
        _ => panic!("{ctx}: decisions diverged ({outcome:?} vs {expected:?})"),
    }
}

/// Model + support-dump parity after a barrier flush.
fn assert_state_parity(
    db: &ShardedDb,
    oracle: &dyn stratamaint::core::MaintenanceEngine,
    ctx: &str,
) {
    db.flush();
    assert_eq!(
        db.snapshot().sorted_facts(),
        oracle.model().sorted_facts(),
        "{ctx}: union of shard models must equal the oracle model"
    );
    assert_eq!(db.support_dump(), oracle.support_dump(), "{ctx}: support dumps must match");
}

/// The core differential: every strategy, serial lockstep script, then a
/// hard kill (drop, no shutdown) and reopen of every per-shard WAL.
#[test]
fn sharded_matches_oracle_live_and_after_kill_for_every_strategy() {
    let registry = EngineRegistry::standard();
    let program = three_components();
    let script = script_with_rejections(&program, 7, 30);
    for name in registry.names() {
        let dir = scratch(&format!("diff_{name}"));
        let storage = StorageSpec::wal(dir.clone());
        let mut oracle = registry.build(name, program.clone()).unwrap();
        let mut opts = DbOptions::new(name);
        opts.shards = 3;
        let db = ShardedDb::open(program.clone(), &storage, &opts).unwrap();
        assert_eq!(db.shards(), 3, "[{name}] three components spread over three shards");
        for (i, u) in script.iter().enumerate() {
            lockstep(&db, oracle.as_mut(), u, &format!("[{name}] step {i}"));
        }
        assert_state_parity(&db, oracle.as_ref(), &format!("[{name}] live"));
        // Hard kill: drop without shutdown. Every shard recovers from its
        // own WAL segment on reopen.
        drop(db);
        let reopened = ShardedDb::open(Program::new(), &storage, &opts).unwrap();
        assert_eq!(reopened.shards(), 3, "[{name}] manifest pins the shard count");
        assert_state_parity(&reopened, oracle.as_ref(), &format!("[{name}] kill-and-reopen"));
        // The reopened database keeps deciding like the oracle.
        let follow_on =
            random_fact_script(&program, &ScriptConfig { len: 8, insert_prob: 0.5 }, 11);
        for (i, u) in follow_on.iter().enumerate() {
            lockstep(&reopened, oracle.as_mut(), u, &format!("[{name}] post-reopen step {i}"));
        }
        assert_state_parity(&reopened, oracle.as_ref(), &format!("[{name}] post-reopen"));
        drop(reopened.shutdown());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A rule touching two components is a global barrier: the database
/// re-partitions (epoch bump), stays oracle-identical, and the new plan
/// survives a kill-and-reopen via the durable manifest.
#[test]
fn rule_barrier_reshards_durably_for_every_strategy() {
    let registry = EngineRegistry::standard();
    let program = Program::parse(
        "emp(1). emp(2). mgr(2).
         worker(X) :- emp(X), !mgr(X).
         item(1). sold(1).
         stock(X) :- item(X), !sold(X).",
    )
    .unwrap();
    for name in registry.names() {
        let dir = scratch(&format!("barrier_{name}"));
        let storage = StorageSpec::wal(dir.clone());
        let mut oracle = registry.build(name, program.clone()).unwrap();
        let mut opts = DbOptions::new(name);
        opts.shards = 2;
        let db = ShardedDb::open(program.clone(), &storage, &opts).unwrap();
        assert_eq!(db.shards(), 2, "[{name}] two components, two shards");
        let epoch_before = db.epoch();
        // The joining rule reads both components: barrier + re-partition.
        let joining = Update::InsertRule(Rule::parse("audit(X) :- worker(X), stock(X).").unwrap());
        lockstep(&db, oracle.as_mut(), &joining, &format!("[{name}] joining rule"));
        assert!(db.epoch() > epoch_before, "[{name}] a cross-shard rule must bump the epoch");
        assert_state_parity(&db, oracle.as_ref(), &format!("[{name}] after barrier"));
        // An unstratifiable rule is rejected identically (scratch decides,
        // nothing is torn down).
        let bad = Update::InsertRule(Rule::parse("worker(X) :- emp(X), !worker(X).").unwrap());
        lockstep(&db, oracle.as_mut(), &bad, &format!("[{name}] unstratifiable rule"));
        // Keep writing through the re-partitioned epoch.
        for (i, u) in random_fact_script(&program, &ScriptConfig { len: 12, insert_prob: 0.6 }, 13)
            .iter()
            .enumerate()
        {
            lockstep(&db, oracle.as_mut(), u, &format!("[{name}] post-barrier step {i}"));
        }
        assert_state_parity(&db, oracle.as_ref(), &format!("[{name}] post-barrier"));
        let epoch = db.epoch();
        drop(db);
        let reopened = ShardedDb::open(Program::new(), &storage, &opts).unwrap();
        assert_eq!(reopened.epoch(), epoch, "[{name}] the manifest pins the epoch");
        assert_state_parity(&reopened, oracle.as_ref(), &format!("[{name}] reopened epoch"));
        drop(reopened.shutdown());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A flat single-worker store (the legacy layout) migrates in place to a
/// sharded layout on reopen with a higher shard target, byte-identical in
/// its observable state.
#[test]
fn flat_store_migrates_to_sharded_layout() {
    let registry = EngineRegistry::standard();
    let program = three_components();
    for name in ["cascade", "fact-level"] {
        let dir = scratch(&format!("migrate_{name}"));
        let storage = StorageSpec::wal(dir.clone());
        let mut oracle = registry.build(name, program.clone()).unwrap();
        // Phase 1: flat layout, exactly a plain service.
        let flat = ShardedDb::open(program.clone(), &storage, &DbOptions::new(name)).unwrap();
        assert_eq!(flat.shards(), 1);
        for u in random_fact_script(&program, &ScriptConfig { len: 10, insert_prob: 0.6 }, 17) {
            lockstep(&flat, oracle.as_mut(), &u, &format!("[{name}] flat phase"));
        }
        assert_state_parity(&flat, oracle.as_ref(), &format!("[{name}] flat"));
        drop(flat.shutdown());
        // Phase 2: reopen the same directory sharded.
        let mut opts = DbOptions::new(name);
        opts.shards = 3;
        let sharded = ShardedDb::open(Program::new(), &storage, &opts).unwrap();
        assert_eq!(sharded.shards(), 3, "[{name}] migration re-partitions");
        assert_state_parity(&sharded, oracle.as_ref(), &format!("[{name}] migrated"));
        for u in random_fact_script(&program, &ScriptConfig { len: 10, insert_prob: 0.5 }, 19) {
            lockstep(&sharded, oracle.as_mut(), &u, &format!("[{name}] sharded phase"));
        }
        assert_state_parity(&sharded, oracle.as_ref(), &format!("[{name}] sharded"));
        drop(sharded.shutdown());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Concurrent cross-shard insert batches: inserts of distinct facts
/// commute, so however the shard workers interleave, the final model must
/// equal the oracle applying the union.
#[test]
fn concurrent_cross_shard_batches_converge_to_the_oracle_model() {
    let program = three_components();
    let mut opts = DbOptions::new("cascade");
    opts.shards = 3;
    let db = Arc::new(ShardedDb::open(program.clone(), &StorageSpec::Mem, &opts).unwrap());
    let mut oracle = EngineRegistry::standard().build("cascade", program).unwrap();
    const PER_THREAD: u64 = 40;
    let rels = ["submitted", "emp", "item"];
    let workers: Vec<_> = rels
        .iter()
        .map(|rel| {
            let db = Arc::clone(&db);
            let rel = rel.to_string();
            std::thread::spawn(move || {
                let handles: Vec<_> = (100..100 + PER_THREAD)
                    .map(|i| {
                        db.submit(Update::InsertFact(Fact::parse(&format!("{rel}({i})")).unwrap()))
                    })
                    .collect();
                for h in handles {
                    assert!(
                        matches!(h.wait(), Outcome::Accepted { .. }),
                        "concurrent inserts of fresh facts must commit"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    for rel in rels {
        for i in 100..100 + PER_THREAD {
            oracle
                .apply(&Update::InsertFact(Fact::parse(&format!("{rel}({i})")).unwrap()))
                .unwrap();
        }
    }
    db.flush();
    assert_eq!(db.snapshot().sorted_facts(), oracle.model().sorted_facts());
    assert_eq!(db.support_dump(), oracle.support_dump());
    let stats = db.stats();
    assert_eq!(stats.accepted, 3 * PER_THREAD, "{stats:?}");
    assert_eq!(stats.rejected, 0, "{stats:?}");
}
