//! Chaos suite: random workloads driven through the supervised service
//! while deterministic faults fire in the WAL, the snapshot writer, and
//! the worker itself, over a seed × fault-point matrix.
//!
//! Invariants checked on every run:
//!
//! * **Acked implies durable and oracle-equivalent.** Every update the
//!   service acknowledged survives a kill-and-reopen, and the final state
//!   equals the no-fault oracle's.
//! * **No unacked update is observable** for faults that strike *before*
//!   commit: a group the WAL refused (or the worker dropped pre-apply) is
//!   rolled back whole — a retryably-rejected fresh insert must not be
//!   visible in any published snapshot.
//! * **Post-commit faults are exactly-once under retry.** A fault between
//!   commit and acknowledgment leaves an ambiguous window; retrying the
//!   same `(client, seq)` through the dedup path converges to the oracle
//!   state without double-applying anything.
//! * **Read-only degradation never blocks snapshot reads.**

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{
    EngineBox, FaultInjector, FaultPlan, FaultPoint, MaintenanceEngine, MaintenanceError,
    StorageSpec, Update,
};
use stratamaint::datalog::{Fact, Program};
use stratamaint::service::{EngineRebuild, IngestConfig, Outcome, Service, SupervisorConfig};
use stratamaint::workload::script::{random_fact_script, ScriptConfig};

fn program() -> Program {
    Program::parse(
        "submitted(1). submitted(2). submitted(3). accepted(2). reviewed(3).
         rejected(X) :- submitted(X), !accepted(X).
         notified(X) :- rejected(X), reviewed(X).",
    )
    .unwrap()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strata_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tight_cfg() -> IngestConfig {
    IngestConfig {
        max_group: 4,
        max_delay: Duration::from_millis(1),
        max_pending: 256,
        ..IngestConfig::default()
    }
}

/// A supervised durable service over `dir`, sharing `faults` between the
/// store's I/O and the worker's panic points, healing by rebuilding from
/// the WAL through the same injector.
fn supervised(dir: &Path, faults: &Arc<FaultInjector>, rebuild: bool) -> Service {
    let storage = StorageSpec::wal(dir.to_path_buf());
    let engine = EngineRegistry::standard()
        .build_with_storage_faults("cascade", program(), &storage, Some(Arc::clone(faults)))
        .expect("open store");
    let rebuild: Option<EngineRebuild> = rebuild.then(|| {
        let faults = Arc::clone(faults);
        let closure: EngineRebuild = Arc::new(move || {
            EngineRegistry::standard()
                .build_with_storage_faults(
                    "cascade",
                    Program::new(),
                    &storage,
                    Some(Arc::clone(&faults)),
                )
                .map_err(|e| MaintenanceError::Storage(format!("rebuild failed: {e}")))
        });
        closure
    });
    let supervisor = SupervisorConfig {
        max_restarts: 3,
        backoff: Duration::from_millis(1),
        probe_interval: Duration::from_millis(5),
    };
    Service::start_supervised(engine, tight_cfg(), supervisor, rebuild, Some(Arc::clone(faults)))
}

/// Submits one sequenced update and retries retryable rejections until a
/// deterministic decision lands. For pre-commit faults, also asserts the
/// rolled-back update never becomes observable between retries.
fn submit_until_decided(
    service: &Service,
    seq: u64,
    update: &Update,
    check_unobservable: bool,
) -> Outcome {
    let fresh_insert = match update {
        Update::InsertFact(f) if !service.snapshot().model.contains(f) => Some(f.clone()),
        _ => None,
    };
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let outcome = service.submit_dedup("chaos", seq, update.clone()).wait();
        match &outcome {
            Outcome::Rejected(e) if e.is_retryable() => {
                if check_unobservable {
                    if let Some(f) = &fresh_insert {
                        assert!(
                            !service.snapshot().model.contains(f),
                            "rolled-back insert `{f}` observable in a published snapshot"
                        );
                    }
                }
                assert!(Instant::now() < deadline, "retry loop wedged on {update:?}");
                std::thread::sleep(Duration::from_millis(2));
            }
            _ => return outcome,
        }
    }
}

fn final_state(e: &dyn MaintenanceEngine) -> Vec<Fact> {
    e.model().sorted_facts()
}

/// One matrix cell: run a random script through a faulted supervised
/// service, then check oracle equivalence live and across a reopen.
///
/// The injector's hit counters are global (by design: "the 3rd fsync
/// overall" stays deterministic across re-arms), so the one-shot fault is
/// aimed two hits past wherever the counter stands at arm time.
fn chaos_run(name: &str, seed: u64, point: FaultPoint, arg: Option<u64>, pre_commit: bool) {
    let dir = scratch(name);
    let faults = Arc::new(FaultPlan::none().arm());
    let service = supervised(&dir, &faults, true);
    let script = random_fact_script(&program(), &ScriptConfig { len: 60, insert_prob: 0.6 }, seed);

    // First third runs clean, then the fault arms mid-flight.
    let armed_at = script.len() / 3;
    let mut decisions = Vec::with_capacity(script.len());
    for (i, update) in script.iter().enumerate() {
        if i == armed_at {
            let mut plan = FaultPlan::once(point, faults.hits(point) + 2);
            if let Some(a) = arg {
                plan = plan.arg(a);
            }
            faults.rearm(&plan);
        }
        decisions.push(submit_until_decided(&service, i as u64, update, pre_commit).is_accepted());
    }
    service.flush();

    let stats = service.stats();
    assert!(stats.worker_restarts >= 1, "{name}: the fault must actually strike and heal");
    assert!(!stats.read_only, "{name}: healed service must be writable");

    // The no-fault oracle: same script, one update per transaction,
    // rejections leaving the engine unchanged.
    let mut oracle = EngineRegistry::standard().build("cascade", program()).unwrap();
    let oracle_decisions: Vec<bool> = script.iter().map(|u| oracle.apply(u).is_ok()).collect();
    if pre_commit {
        // Nothing committed behind the fault, so even the per-request
        // decisions replay exactly.
        assert_eq!(decisions, oracle_decisions, "{name}: decisions vs oracle");
    }
    let live = service.with_engine(final_state);
    assert_eq!(live, final_state(oracle.as_ref()), "{name}: final model vs oracle");

    // Acked implies durable: a clean reopen reproduces the live state.
    let engine: EngineBox = service.shutdown();
    let live_dump = engine.support_dump();
    drop(engine);
    let reopened = EngineRegistry::standard()
        .build_with_storage("cascade", Program::new(), &StorageSpec::wal(dir.clone()))
        .expect("clean reopen");
    assert_eq!(final_state(reopened.as_ref()), live, "{name}: reopen reproduces the model");
    assert_eq!(reopened.support_dump(), live_dump, "{name}: reopen reproduces the support dump");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_fsync_fault_matrix() {
    for seed in [11, 42] {
        chaos_run("fsync", seed, FaultPoint::WalFsync, None, true);
    }
}

#[test]
fn wal_short_write_fault_matrix() {
    for seed in [7, 23] {
        chaos_run("shortwrite", seed, FaultPoint::WalWrite, Some(8), true);
    }
}

#[test]
fn worker_pre_apply_panic_matrix() {
    for seed in [3, 19] {
        chaos_run("preapply", seed, FaultPoint::WorkerPreApply, None, true);
    }
}

#[test]
fn worker_post_apply_panic_matrix() {
    // Post-commit: the ack window is ambiguous, so only state equivalence
    // (exactly-once under retry) is asserted, not decision equality.
    for seed in [5, 31] {
        chaos_run("postapply", seed, FaultPoint::WorkerPostApply, None, false);
    }
}

#[test]
fn worker_mid_group_panic_matrix() {
    for seed in [13, 47] {
        chaos_run("midgroup", seed, FaultPoint::WorkerMidGroup, None, false);
    }
}

/// A fault striking inside the **delta-snapshot crash window** (after the
/// chain link renames in, before the WAL truncates) while the service
/// auto-compacts mid-traffic. A failed checkpoint is non-fatal by design —
/// writes keep flowing, later checkpoints succeed — and the chain it left
/// behind (renamed link beside a stale WAL) must recover to the oracle
/// state with canonical supports.
#[test]
fn delta_snapshot_fault_mid_auto_compaction_is_non_fatal_and_recoverable() {
    use stratamaint::core::durable::SnapshotMode;
    use stratamaint::store::CompactionPolicy;

    let dir = scratch("snapdelta");
    let faults = Arc::new(FaultPlan::none().arm());
    // Checkpoint after virtually every committed group, delta-chained.
    let storage = StorageSpec::wal(dir.clone())
        .snapshot_mode(SnapshotMode::Incremental { max_chain: 4 })
        .compaction(CompactionPolicy {
            max_wal_bytes: Some(1),
            max_recovery_ms: None,
            min_wal_txns: 1,
        });
    let engine = EngineRegistry::standard()
        .build_with_storage_faults("cascade", program(), &storage, Some(Arc::clone(&faults)))
        .expect("open store");
    let supervisor = SupervisorConfig {
        max_restarts: 3,
        backoff: Duration::from_millis(1),
        probe_interval: Duration::from_millis(5),
    };
    let service =
        Service::start_supervised(engine, tight_cfg(), supervisor, None, Some(Arc::clone(&faults)));

    let script = random_fact_script(&program(), &ScriptConfig { len: 48, insert_prob: 0.6 }, 29);
    let armed_at = script.len() / 3;
    for (i, update) in script.iter().enumerate() {
        if i == armed_at {
            let hits = faults.hits(FaultPoint::SnapshotDelta);
            faults.rearm(&FaultPlan::once(FaultPoint::SnapshotDelta, hits + 1));
        }
        submit_until_decided(&service, i as u64, update, false);
    }
    service.flush();

    assert!(faults.hits(FaultPoint::SnapshotDelta) >= 1, "the delta fault must strike");
    let stats = service.stats();
    assert!(!stats.read_only, "a failed delta checkpoint must not degrade the service");
    let durability = stats.durability.expect("storage-backed service reports durability");
    assert!(
        durability.snapshot_seq > 0,
        "auto-compaction must keep checkpointing after the fault: {durability:?}"
    );

    let mut oracle = EngineRegistry::standard().build("cascade", program()).unwrap();
    for u in &script {
        let _ = oracle.apply(u);
    }
    let live = service.with_engine(final_state);
    assert_eq!(live, final_state(oracle.as_ref()), "final model vs oracle");

    // Kill and reopen through the chain: exact model, canonical supports.
    drop(service.shutdown());
    let reopened = EngineRegistry::standard()
        .build_with_storage("cascade", Program::new(), &storage)
        .expect("reopen through the chain");
    assert_eq!(final_state(reopened.as_ref()), live, "reopen reproduces the model");
    let canonical = EngineRegistry::standard()
        .build("cascade", reopened.program().clone())
        .unwrap()
        .support_dump();
    assert_eq!(reopened.support_dump(), canonical, "chain recovery lands canonical supports");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sticky_outage_degrades_to_read_only_then_heals_when_cleared() {
    let dir = scratch("outage");
    let faults = Arc::new(FaultPlan::none().arm());
    let service = supervised(&dir, &faults, true);

    assert!(service
        .submit_dedup("chaos", 0, Update::InsertFact(Fact::parse("submitted(9)").unwrap()))
        .wait()
        .is_accepted());

    // A sticky fsync outage: every commit and every heal probe fails, so
    // bounded restarts exhaust and the service degrades to read-only.
    faults.rearm(&FaultPlan::sticky(FaultPoint::WalFsync, 1));
    let out =
        service.submit_dedup("chaos", 1, Update::InsertFact(Fact::parse("accepted(9)").unwrap()));
    let Outcome::Rejected(e) = out.wait() else { panic!("outage commit must reject") };
    assert!(e.is_retryable(), "outage rejections are retryable: {e}");

    // Wait for the degraded state, then prove reads never block on it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !service.stats().read_only {
        assert!(Instant::now() < deadline, "service must degrade to read-only");
        std::thread::sleep(Duration::from_millis(2));
    }
    for _ in 0..50 {
        let t0 = Instant::now();
        let snap = service.snapshot();
        assert!(snap.model.contains_parsed("rejected(9)"), "reads serve the committed state");
        assert!(!snap.model.contains_parsed("accepted(9)"), "unacked write must stay invisible");
        assert!(t0.elapsed() < Duration::from_millis(100), "read-only reads must not block");
    }
    let Outcome::Rejected(e) = service
        .submit_dedup("chaos", 2, Update::InsertFact(Fact::parse("reviewed(9)").unwrap()))
        .wait()
    else {
        panic!("read-only submit must reject")
    };
    assert_eq!(e.code(), "read-only");

    // The outage ends; the periodic probe re-arms writes on its own.
    faults.clear();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let outcome = submit_until_decided(
            &service,
            3,
            &Update::InsertFact(Fact::parse("accepted(9)").unwrap()),
            false,
        );
        if outcome.is_accepted() {
            break;
        }
        assert!(Instant::now() < deadline, "probe must re-arm writes after the outage clears");
    }
    assert!(!service.stats().read_only);
    service.flush();
    let live = service.with_engine(final_state);
    drop(service.shutdown());
    let reopened = EngineRegistry::standard()
        .build_with_storage("cascade", Program::new(), &StorageSpec::wal(dir.clone()))
        .expect("clean reopen");
    assert_eq!(final_state(reopened.as_ref()), live, "post-outage state is durable");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_with_faults_converge_exactly_once() {
    const CLIENTS: usize = 3;
    const M: usize = 40;
    let dir = scratch("concurrent");
    let faults = Arc::new(FaultPlan::none().arm());
    let service = Arc::new(supervised(&dir, &faults, true));

    // Disjoint per-client universes keep the oracle well-defined under any
    // interleaving: each client's stream applied in its own order.
    let stream = |c: usize| -> Vec<Update> {
        let mut out = Vec::new();
        for j in 0..M {
            let f = Fact::parse(&format!("submitted({c}, {j})")).unwrap();
            match j % 4 {
                0 | 1 => out.push(Update::InsertFact(f)),
                2 => {
                    out.push(Update::InsertFact(f.clone()));
                    out.push(Update::DeleteFact(f));
                }
                _ => out.push(Update::DeleteFact(f)), // unasserted: reject
            }
        }
        out
    };

    faults.rearm(&"panic-mid-group@2,wal-fsync@9".parse::<FaultPlan>().unwrap());
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let client = format!("c{c}");
                let deadline = Instant::now() + Duration::from_secs(30);
                for (seq, update) in stream(c).iter().enumerate() {
                    loop {
                        let out = service.submit_dedup(&client, seq as u64, update.clone()).wait();
                        match out {
                            Outcome::Rejected(e) if e.is_retryable() => {
                                assert!(Instant::now() < deadline, "client {c} wedged");
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            _ => break,
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    service.flush();
    assert!(service.stats().worker_restarts >= 1, "faults must strike");

    // Exactly-once: the converged state equals each client's stream
    // applied once, in client order, rejections ignored.
    let mut oracle = EngineRegistry::standard().build("cascade", program()).unwrap();
    for c in 0..CLIENTS {
        for update in stream(c) {
            let _ = oracle.apply(&update);
        }
    }
    let live = service.with_engine(final_state);
    assert_eq!(live, final_state(oracle.as_ref()), "converged model vs exactly-once oracle");
    let service = Arc::try_unwrap(service).ok().expect("workers joined");
    drop(service.shutdown());
    let reopened = EngineRegistry::standard()
        .build_with_storage("cascade", Program::new(), &StorageSpec::wal(dir.clone()))
        .expect("clean reopen");
    assert_eq!(final_state(reopened.as_ref()), live, "acked state survives reopen");
    let _ = std::fs::remove_dir_all(&dir);
}
