//! All engines must agree with the recomputed ground truth after arbitrary
//! valid update scripts — the reproduction's central correctness property
//! (paper §2 Theorem + §4/§5 lemmas rolled together).

use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::strategy::{CascadeConfig, CascadeEngine, FactLevelEngine};
use stratamaint::core::verify::check_against_ground_truth;
use stratamaint::core::{EngineBox, MaintenanceEngine};
use stratamaint::workload::paper;
use stratamaint::workload::script::{random_fact_script, ScriptConfig};
use stratamaint::workload::synth::{self, RandomConfig};

/// The six standard strategies plus two configured variants, all built
/// through the registry (the variants exercise its extension seam).
fn engines(program: &stratamaint::datalog::Program) -> Vec<EngineBox> {
    let mut registry = EngineRegistry::standard();
    registry.register(
        "cascade-literal",
        "§5.1 cascade without stratum skipping or pre-saturation",
        true,
        |p| {
            Ok(Box::new(CascadeEngine::with_config(
                p,
                CascadeConfig {
                    skip_unaffected: false,
                    presaturate: false,
                    ..CascadeConfig::default()
                },
            )?))
        },
    );
    registry.register(
        "fact-level-cap2",
        "§5.2 fact-level supports with the per-fact entry cap at 2",
        true,
        |p| Ok(Box::new(FactLevelEngine::with_cap(p, 2)?)),
    );
    registry.build_all(program)
}

fn replay_and_check(program: &stratamaint::datalog::Program, seed: u64, len: usize) {
    let script = random_fact_script(program, &ScriptConfig { len, insert_prob: 0.5 }, seed);
    for mut e in engines(program) {
        for (i, u) in script.iter().enumerate() {
            e.apply(u).unwrap_or_else(|err| panic!("[{}] step {i} {u}: {err}", e.name()));
            if let Err(msg) = check_against_ground_truth(e.as_ref()) {
                panic!("[{}] diverged at step {i} ({u}), seed {seed}:\n{msg}", e.name());
            }
        }
    }
}

#[test]
fn random_scripts_on_paper_workloads() {
    replay_and_check(&paper::pods(3, 8), 1, 40);
    replay_and_check(&paper::conf(5), 2, 40);
    replay_and_check(&paper::congress(5), 3, 40);
    replay_and_check(&paper::meet(4, 2), 4, 40);
}

#[test]
fn random_scripts_on_conference_pipeline() {
    let program = synth::conference(15, 4, 7);
    replay_and_check(&program, 5, 30);
}

#[test]
fn random_scripts_on_tc_complement() {
    let program = synth::tc_complement(6, 9, 11);
    replay_and_check(&program, 6, 25);
}

#[test]
fn random_scripts_on_bom() {
    let program = synth::bom(2, 2, 13);
    replay_and_check(&program, 7, 25);
}

#[test]
fn random_scripts_on_random_programs() {
    // Several random stratified programs, several seeds each.
    for pseed in 0..4 {
        let cfg = RandomConfig {
            edb_rels: 3,
            idb_rels: 5,
            rules_per_rel: 2,
            facts_per_rel: 8,
            domain: 6,
            neg_prob: 0.4,
        };
        let program = synth::random_stratified(&cfg, pseed);
        replay_and_check(&program, 100 + pseed, 30);
    }
}

#[test]
fn deep_negation_chain_scripts() {
    // chain(6) has no EDB facts initially; drive p0 in and out repeatedly.
    let program = paper::chain(6);
    for mut e in engines(&program) {
        for round in 0..3 {
            e.insert_fact(stratamaint::datalog::Fact::parse("p0").unwrap()).unwrap();
            check_against_ground_truth(e.as_ref())
                .unwrap_or_else(|m| panic!("[{}] round {round} insert: {m}", e.name()));
            e.delete_fact(stratamaint::datalog::Fact::parse("p0").unwrap()).unwrap();
            check_against_ground_truth(e.as_ref())
                .unwrap_or_else(|m| panic!("[{}] round {round} delete: {m}", e.name()));
        }
    }
}
