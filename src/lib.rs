//! # stratamaint
//!
//! Incremental maintenance of stratified deductive databases viewed as a
//! belief revision system — a Rust reproduction of Apt & Pugin (PODS 1987).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`datalog`] — the Datalog¬ substrate: language, stratification, storage,
//!   bottom-up (naive, delta-driven, incremental) and top-down (backchaining)
//!   evaluation, grounding.
//! * [`core`] — the paper's contribution: the maintenance engines
//!   (static §4.1, dynamic single §4.2, dynamic multi §4.3, cascade §5.1,
//!   fact-level §5.2, and the recompute baseline), supports, statistics,
//!   why-provenance.
//! * [`store`] — the durability substrate: checksummed record frames, the
//!   append-only write-ahead log, atomic snapshots, and the recovering
//!   [`store::Store`] that `core`'s `DurableEngine` builds on.
//! * [`service`] — the concurrent ingest layer: the coalescing update
//!   queue, the group-commit worker around any registry-built engine, and
//!   the TCP front-end (`strata-serve`) with its blocking client.
//! * [`obs`] — the zero-dependency observability substrate: the global
//!   metrics registry (counters, gauges, log-linear latency histograms),
//!   the pipeline trace ring, and the Prometheus text renderer behind the
//!   `metrics` / `trace` wire verbs.
//! * [`tms`] — the belief revision substrate: Doyle's JTMS, de Kleer's ATMS,
//!   and their bridges to stratified databases.
//! * [`workload`] — the paper's worked examples and scalable synthetic
//!   workloads plus update-script generators.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
pub use strata_core as core;
pub use strata_datalog as datalog;
pub use strata_obs as obs;
pub use strata_service as service;
pub use strata_store as store;
pub use strata_tms as tms;
pub use strata_workload as workload;
