//! `strata` — an interactive shell for maintained stratified databases.
//!
//! ```text
//! cargo run --bin strata                 # empty database
//! cargo run --bin strata -- db.strata    # load a program file
//! ```
//!
//! Commands:
//!
//! ```text
//! + <fact|rule>       insert (e.g. `+ accepted(4)` or `+ p(X) :- q(X).`)
//! - <fact|rule>       delete
//! ? <query>           query the model (`? rejected(X), !late(X)`)
//! :why <fact>         why-provenance (proof tree)
//! :constrain <body>   add a denial constraint (`:constrain a(X), b(X)`)
//! :constraints        list constraints
//! :model              print the maintained model
//! :program            print the current program
//! :stats              statistics of the last update
//! :strategy <name>    switch engine (recompute | static | dynamic-single |
//!                     dynamic-multi | cascade | fact-level |
//!                     cascade-parallel | recompute-parallel)
//! :strategies         list the registered engines (from the EngineRegistry)
//! :threads <n>        worker threads for parallel saturation (the engine
//!                     must support it — see cascade-parallel)
//! :open <path>        make the session durable: WAL + snapshots at <path>
//!                     (recovers the stored state if the path already holds one)
//! :save <path>        export the current program as text
//! :compact            snapshot the durable store and empty its WAL
//! :serve <addr>       start a TCP ingest server over the current program
//! :connect <addr> [--timeout-ms <n>]
//!                     turn the shell into a client of a running server
//!                     (with an optional connect/read timeout)
//! :disconnect         leave remote mode
//! :flush              wait until everything submitted so far is decided
//! :metrics            metrics registry (Prometheus text exposition);
//!                     remote mode asks the server
//! :trace [n]          last n sealed group spans (default 16), per-stage
//! :help               this text
//! :quit               exit
//! ```

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use stratamaint::core::constraints::{Constraint, GuardedEngine};
use stratamaint::core::explain::Explainer;
use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{
    EngineBox, MaintenanceEngine, Parallelism, StorageSpec, Update, UpdateStats,
};
use stratamaint::datalog::{Fact, Program, Query, Rule};
use stratamaint::service::net::{Client, QueryReply, ServerHandle};
use stratamaint::service::{net, IngestConfig, Service};

/// A parsed REPL command.
#[derive(Clone, Debug)]
enum Command {
    Insert(Update),
    Delete(Update),
    Query(Query),
    Why(Fact),
    Constrain(Constraint),
    Constraints,
    Strategies,
    Model,
    ProgramText,
    Stats,
    Strategy(String),
    Threads(usize),
    Open(String),
    Save(String),
    Compact,
    Serve(String),
    Connect { addr: String, timeout_ms: Option<u64> },
    Disconnect,
    UseDb(String),
    Dbs,
    Flush,
    Metrics,
    Trace(usize),
    Help,
    Quit,
    Nothing,
}

/// Parses one input line. Pure, so it is unit-testable.
fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('%') {
        return Ok(Command::Nothing);
    }
    if let Some(rest) = line.strip_prefix('+') {
        return parse_update(rest.trim(), true).map(Command::Insert);
    }
    if let Some(rest) = line.strip_prefix('-') {
        return parse_update(rest.trim(), false).map(Command::Delete);
    }
    if let Some(rest) = line.strip_prefix('?') {
        return Query::parse(rest.trim().trim_end_matches('.'))
            .map(Command::Query)
            .map_err(|e| format!("cannot parse query: {e}"));
    }
    match line.split_whitespace().next().unwrap_or("") {
        ":why" => parse_fact(line[4..].trim()).map(Command::Why),
        ":constrain" => Constraint::parse(line[10..].trim())
            .map(Command::Constrain)
            .map_err(|e| format!("cannot parse constraint: {e}")),
        ":constraints" => Ok(Command::Constraints),
        ":strategies" => Ok(Command::Strategies),
        ":model" => Ok(Command::Model),
        ":program" => Ok(Command::ProgramText),
        ":stats" => Ok(Command::Stats),
        ":strategy" => {
            let name = line[9..].trim();
            if name.is_empty() {
                Err("usage: :strategy <name>".into())
            } else {
                Ok(Command::Strategy(name.to_string()))
            }
        }
        ":threads" => match line[8..].trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Command::Threads(n)),
            _ => Err("usage: :threads <n>  (n >= 1)".into()),
        },
        ":open" => {
            let path = line[5..].trim();
            if path.is_empty() {
                Err("usage: :open <path>".into())
            } else {
                Ok(Command::Open(path.to_string()))
            }
        }
        ":save" => {
            let path = line[5..].trim();
            if path.is_empty() {
                Err("usage: :save <path>".into())
            } else {
                Ok(Command::Save(path.to_string()))
            }
        }
        ":compact" => Ok(Command::Compact),
        ":serve" => {
            let addr = line[6..].trim();
            if addr.is_empty() {
                Err("usage: :serve <addr>  (e.g. :serve 127.0.0.1:7171)".into())
            } else {
                Ok(Command::Serve(addr.to_string()))
            }
        }
        ":connect" => {
            let mut addr = None;
            let mut timeout_ms = None;
            let mut words = line[8..].split_whitespace();
            while let Some(word) = words.next() {
                if word == "--timeout-ms" {
                    timeout_ms = match words.next().map(str::parse) {
                        Some(Ok(ms)) => Some(ms),
                        _ => return Err("usage: :connect <addr> [--timeout-ms <n>]".into()),
                    };
                } else if addr.is_none() {
                    addr = Some(word.to_string());
                } else {
                    return Err("usage: :connect <addr> [--timeout-ms <n>]".into());
                }
            }
            match addr {
                Some(addr) => Ok(Command::Connect { addr, timeout_ms }),
                None => Err("usage: :connect <addr> [--timeout-ms <n>]".into()),
            }
        }
        ":disconnect" => Ok(Command::Disconnect),
        ":use" => {
            let name = line[4..].trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                Err("usage: :use <db>".into())
            } else {
                Ok(Command::UseDb(name.to_string()))
            }
        }
        ":dbs" => Ok(Command::Dbs),
        ":flush" => Ok(Command::Flush),
        ":metrics" => Ok(Command::Metrics),
        ":trace" => {
            let rest = line[6..].trim();
            if rest.is_empty() {
                Ok(Command::Trace(16))
            } else {
                rest.parse().map(Command::Trace).map_err(|_| "usage: :trace [n]".to_string())
            }
        }
        ":help" => Ok(Command::Help),
        ":quit" | ":q" | ":exit" => Ok(Command::Quit),
        other if other.starts_with(':') => Err(format!("unknown command `{other}` (try :help)")),
        _ => Err("updates start with + or -, queries with ? (try :help)".into()),
    }
}

fn parse_update(src: &str, insert: bool) -> Result<Update, String> {
    let src = src.trim_end_matches('.');
    // A bare fact first; otherwise a rule.
    if let Ok(f) = Fact::parse(src) {
        return Ok(if insert { Update::InsertFact(f) } else { Update::DeleteFact(f) });
    }
    match Rule::parse(&format!("{src}.")) {
        Ok(r) => Ok(if insert { Update::InsertRule(r) } else { Update::DeleteRule(r) }),
        Err(e) => Err(format!("cannot parse `{src}` as fact or rule: {e}")),
    }
}

fn parse_fact(src: &str) -> Result<Fact, String> {
    Fact::parse(src.trim_end_matches('.')).map_err(|e| format!("cannot parse fact: {e}"))
}

struct Repl {
    /// The one name → constructor mapping; `:strategy` and `:open` go
    /// through here.
    registry: EngineRegistry,
    engine: GuardedEngine<EngineBox>,
    /// Directory of the durable store, once `:open` has been issued.
    /// `:strategy` reopens the store under the new engine when set.
    durable_path: Option<String>,
    /// Worker count requested with `:threads`, re-applied after every
    /// engine switch so the session setting is sticky.
    threads: Option<Parallelism>,
    last_stats: Option<UpdateStats>,
    /// Ingest servers started with `:serve`, kept alive for the session.
    servers: Vec<(Arc<Service>, ServerHandle)>,
    /// When `Some`, the shell is a client of a remote server: updates,
    /// queries, `:stats`, and `:flush` travel over the wire.
    remote: Option<Client>,
}

impl Repl {
    fn new(program: Program) -> Result<Repl, String> {
        let registry = EngineRegistry::standard();
        let engine = registry.build("cascade", program).map_err(|e| e.to_string())?;
        Ok(Repl {
            registry,
            engine: GuardedEngine::unconstrained(engine),
            durable_path: None,
            threads: None,
            last_stats: None,
            servers: Vec::new(),
            remote: None,
        })
    }

    /// Builds the current (or a new) strategy over `program` under the
    /// session's storage spec: durable when a store is open.
    fn build_engine(&self, name: &str, program: Program) -> Result<EngineBox, String> {
        let storage = match &self.durable_path {
            Some(path) => StorageSpec::wal(path),
            None => StorageSpec::Mem,
        };
        self.registry.build_with_storage(name, program, &storage).map_err(|e| e.to_string())
    }

    /// Executes one command, writing human-readable output. Returns `false`
    /// when the session should end.
    fn execute(&mut self, cmd: Command, out: &mut impl Write) -> io::Result<bool> {
        if self.remote.is_some() {
            return self.execute_remote(cmd, out);
        }
        match cmd {
            Command::Nothing => {}
            Command::Quit => return Ok(false),
            Command::Help => writeln!(out, "{HELP}")?,
            Command::Model => {
                for f in self.engine.model().sorted_facts() {
                    writeln!(out, "  {f}")?;
                }
                writeln!(out, "  ({} facts)", self.engine.model().len())?;
            }
            Command::ProgramText => writeln!(out, "{}", self.engine.program())?,
            Command::Stats => {
                match &self.last_stats {
                    Some(s) => {
                        writeln!(
                    out,
                    "  removed {} (migrated {}), net +{} -{}, {} derivations, {} support bytes",
                    s.removed, s.migrated, s.net_added, s.net_removed, s.derivations,
                    s.support_bytes
                )?
                    }
                    None => writeln!(out, "  no update applied yet")?,
                }
                // A durable session's history does not start at :open —
                // surface what recovery replayed so restart metrics are
                // honest.
                if let Some(d) = self.engine.inner().durability() {
                    writeln!(
                        out,
                        "  durable: recovered {} txns ({} updates{}) at open, \
                         wal now {} txns / {} bytes",
                        d.recovered_txns,
                        d.recovered_updates,
                        if d.recovered_torn_tail { ", torn tail truncated" } else { "" },
                        d.wal_txns,
                        d.wal_bytes
                    )?;
                }
            }
            Command::Query(q) => {
                if q.is_boolean() {
                    writeln!(out, "  {}", q.holds(self.engine.model()))?;
                } else {
                    let rows = q.eval(self.engine.model());
                    for row in &rows {
                        writeln!(out, "  {}", stratamaint::datalog::query::render_row(&q, row))?;
                    }
                    writeln!(out, "  ({} answers)", rows.len())?;
                }
            }
            Command::Why(f) => match Explainer::new(self.engine.program()) {
                Ok(ex) => match ex.explain(&f) {
                    Some(proof) => writeln!(out, "{proof}")?,
                    None => writeln!(out, "  {f} is not in the model")?,
                },
                Err(e) => writeln!(out, "  error: {e}")?,
            },
            Command::Constrain(c) => match self.engine.add_constraint(c) {
                Ok(()) => writeln!(out, "  constraint installed")?,
                Err(e) => writeln!(out, "  rejected: {e}")?,
            },
            Command::Constraints => {
                for c in self.engine.constraints().iter() {
                    writeln!(out, "  {c}")?;
                }
                writeln!(out, "  ({} constraints)", self.engine.constraints().len())?;
            }
            Command::Strategies => {
                for entry in self.registry.entries() {
                    let marker = if entry.name == self.engine.inner().name() { "*" } else { " " };
                    writeln!(out, "  {marker} {:<18} {}", entry.name, entry.summary)?;
                }
            }
            Command::Strategy(name) => {
                // When a durable store is open, the switch reopens it: the
                // recovered program is replayed under the new strategy (all
                // strategies agree on the model, so this is sound).
                match self.build_engine(&name, self.engine.program().clone()) {
                    Ok(mut engine) => {
                        if let Some(par) = self.threads {
                            engine.set_parallelism(par);
                        }
                        self.engine.replace_inner(engine);
                        writeln!(out, "  strategy: {}", self.engine.inner().name())?;
                    }
                    Err(e) => writeln!(out, "  error: {e}")?,
                }
            }
            Command::Threads(n) => {
                let par = Parallelism::new(n);
                self.threads = Some(par);
                if self.engine.inner_mut().set_parallelism(par) {
                    writeln!(out, "  threads: {n}")?;
                } else {
                    writeln!(
                        out,
                        "  threads: {n} (noted; strategy `{}` saturates sequentially — try \
                         :strategy cascade-parallel)",
                        self.engine.inner().name()
                    )?;
                }
            }
            Command::Open(path) => {
                let name = self.engine.inner().name().to_string();
                let program = self.engine.program().clone();
                let storage = StorageSpec::wal(&path);
                match self.registry.build_with_storage(&name, program, &storage) {
                    Ok(mut engine) => {
                        if let Some(par) = self.threads {
                            engine.set_parallelism(par);
                        }
                        self.engine.replace_inner(engine);
                        self.durable_path = Some(path.clone());
                        let recovered = self
                            .engine
                            .inner()
                            .durability()
                            .map(|d| (d.recovered_txns, d.recovered_updates))
                            .unwrap_or_default();
                        writeln!(
                            out,
                            "  durable at {path} ({} facts in model, recovered {} txns / {} \
                             updates from the WAL)",
                            self.engine.model().len(),
                            recovered.0,
                            recovered.1
                        )?;
                    }
                    Err(e) => writeln!(out, "  error: {e}")?,
                }
            }
            Command::Save(path) => match std::fs::write(&path, self.engine.program().to_string()) {
                Ok(()) => writeln!(
                    out,
                    "  saved {} facts, {} rules to {path}",
                    self.engine.program().num_facts(),
                    self.engine.program().num_rules()
                )?,
                Err(e) => writeln!(out, "  error: cannot write {path}: {e}")?,
            },
            Command::Compact => match self.engine.inner_mut().checkpoint() {
                Ok(true) => writeln!(out, "  compacted (snapshot written, WAL emptied)")?,
                Ok(false) => writeln!(out, "  not a durable session (use :open <path> first)")?,
                Err(e) => writeln!(out, "  error: {e}")?,
            },
            Command::Serve(addr) => {
                // An independent in-memory copy of the current program
                // under the current strategy: the server owns its engine
                // (drive it with :connect or the strata-serve client).
                let name = self.engine.inner().name();
                match self.registry.build(name, self.engine.program().clone()) {
                    Ok(mut engine) => {
                        if let Some(par) = self.threads {
                            engine.set_parallelism(par);
                        }
                        let service = Arc::new(Service::start(engine, IngestConfig::default()));
                        match net::serve(Arc::clone(&service), &addr) {
                            Ok(handle) => {
                                writeln!(
                                    out,
                                    "  serving {name} on {} (a detached in-memory copy of the \
                                     current program; :connect {0} to drive it)",
                                    handle.addr()
                                )?;
                                self.servers.push((service, handle));
                            }
                            Err(e) => writeln!(out, "  error: cannot bind {addr}: {e}")?,
                        }
                    }
                    Err(e) => writeln!(out, "  error: {e}")?,
                }
            }
            Command::Connect { addr, timeout_ms } => match connect(&addr, timeout_ms) {
                Ok(client) => {
                    self.remote = Some(client);
                    writeln!(
                        out,
                        "  connected to {addr} — updates, queries, :stats and :flush now go \
                         to the server (:disconnect to return to the local engine)"
                    )?;
                }
                Err(e) => writeln!(out, "  error: cannot connect to {addr}: {e}")?,
            },
            Command::Disconnect => writeln!(out, "  not connected")?,
            Command::UseDb(_) | Command::Dbs => {
                writeln!(out, "  databases live on a server (:connect first)")?
            }
            Command::Flush => {
                writeln!(out, "  local updates apply synchronously (use :flush after :connect)")?
            }
            Command::Metrics => {
                // Sync each local server's service gauges first, so the
                // exposition agrees with what their `stats` verbs report.
                for (service, _) in &self.servers {
                    service.fill_registry();
                }
                let text = stratamaint::obs::render();
                if text.is_empty() {
                    writeln!(out, "  (no metrics recorded yet)")?;
                }
                for line in text.lines() {
                    writeln!(out, "  {line}")?;
                }
            }
            Command::Trace(n) => {
                let spans = stratamaint::obs::trace::recent_spans(n);
                for span in &spans {
                    writeln!(out, "  {}", span.render())?;
                }
                writeln!(out, "  ({} spans)", spans.len())?;
            }
            Command::Insert(u) | Command::Delete(u) => match self.engine.apply(&u) {
                Ok(stats) => {
                    writeln!(
                        out,
                        "  ok: removed {} (migrated {}), net +{} -{}",
                        stats.removed, stats.migrated, stats.net_added, stats.net_removed
                    )?;
                    self.last_stats = Some(stats);
                }
                Err(e) => writeln!(out, "  rejected: {e}")?,
            },
        }
        Ok(true)
    }

    /// Remote mode: the shell is a protocol client. Updates, queries,
    /// `:stats`, and `:flush` travel over the wire; engine-local commands
    /// ask for `:disconnect` first. A transport error drops back to local
    /// mode.
    fn execute_remote(&mut self, cmd: Command, out: &mut impl Write) -> io::Result<bool> {
        let client = self.remote.as_mut().expect("remote mode");
        match cmd {
            Command::Nothing => {}
            Command::Quit => return Ok(false),
            Command::Help => writeln!(out, "{HELP}")?,
            Command::Disconnect => {
                self.remote = None;
                writeln!(out, "  disconnected (back to the local engine)")?;
            }
            Command::Insert(u) | Command::Delete(u) => match client.submit(&u) {
                Ok(Ok(ack)) => writeln!(
                    out,
                    "  ok: committed with group {} at version {}",
                    ack.group, ack.version
                )?,
                Ok(Err(reason)) => writeln!(out, "  rejected: {reason}")?,
                Err(e) => self.drop_connection(e, out)?,
            },
            Command::Query(q) => match client.query(&q.to_string()) {
                Ok(Ok(QueryReply::Boolean(b))) => writeln!(out, "  {b}")?,
                Ok(Ok(QueryReply::Rows(rows))) => {
                    for row in &rows {
                        writeln!(out, "  {row}")?;
                    }
                    writeln!(out, "  ({} answers)", rows.len())?;
                }
                Ok(Err(reason)) => writeln!(out, "  error: {reason}")?,
                Err(e) => self.drop_connection(e, out)?,
            },
            Command::Stats => match client.stats() {
                Ok(Ok(line)) => {
                    writeln!(out, "  {line}")?;
                    // The legacy stats line and the metrics registry carry
                    // the same service-level values; surface any drift.
                    if let Ok(Ok(metrics)) = client.metrics() {
                        for drift in stats_registry_divergence(&line, &metrics) {
                            writeln!(out, "  warning: stats/registry divergence: {drift}")?;
                        }
                    }
                }
                Ok(Err(reason)) => writeln!(out, "  error: {reason}")?,
                Err(e) => self.drop_connection(e, out)?,
            },
            Command::Metrics => match client.metrics() {
                Ok(Ok(text)) => {
                    for line in text.lines() {
                        writeln!(out, "  {line}")?;
                    }
                }
                Ok(Err(reason)) => writeln!(out, "  error: {reason}")?,
                Err(e) => self.drop_connection(e, out)?,
            },
            Command::Trace(n) => match client.trace(n) {
                Ok(Ok(spans)) => {
                    for span in &spans {
                        writeln!(out, "  {span}")?;
                    }
                    writeln!(out, "  ({} spans)", spans.len())?;
                }
                Ok(Err(reason)) => writeln!(out, "  error: {reason}")?,
                Err(e) => self.drop_connection(e, out)?,
            },
            Command::Flush => match client.flush() {
                Ok(Ok(version)) => writeln!(out, "  flushed at version {version}")?,
                Ok(Err(reason)) => writeln!(out, "  error: {reason}")?,
                Err(e) => self.drop_connection(e, out)?,
            },
            Command::UseDb(name) => match client.use_db(&name) {
                Ok(Ok(())) => writeln!(out, "  using {name}")?,
                Ok(Err(reason)) => writeln!(out, "  error: {reason}")?,
                Err(e) => self.drop_connection(e, out)?,
            },
            Command::Dbs => match client.db_list() {
                Ok(Ok(dbs)) => {
                    for db in &dbs {
                        writeln!(out, "  {db}")?;
                    }
                    writeln!(out, "  ({} databases)", dbs.len())?;
                }
                Ok(Err(reason)) => writeln!(out, "  error: {reason}")?,
                Err(e) => self.drop_connection(e, out)?,
            },
            Command::Compact => match client.compact() {
                Ok(Ok(seq)) => {
                    writeln!(out, "  compacted (server snapshot chain covers seq {seq})")?
                }
                Ok(Err(reason)) => writeln!(out, "  error: {reason}")?,
                Err(e) => self.drop_connection(e, out)?,
            },
            Command::Connect { addr, timeout_ms } => match connect(&addr, timeout_ms) {
                Ok(client) => {
                    self.remote = Some(client);
                    writeln!(out, "  reconnected to {addr}")?;
                }
                Err(e) => writeln!(out, "  error: cannot connect to {addr}: {e}")?,
            },
            _ => writeln!(out, "  not available while connected (:disconnect first)")?,
        }
        Ok(true)
    }

    fn drop_connection(&mut self, e: io::Error, out: &mut impl Write) -> io::Result<()> {
        self.remote = None;
        writeln!(out, "  connection lost: {e} (back to the local engine)")
    }
}

/// Compares the service-level fields of a `stats` line against the same
/// values in a metrics exposition (the `strata_service_*` gauges the
/// server syncs via `Service::fill_registry` before rendering). Returns
/// one description per disagreement — empty means the legacy line and the
/// registry agree.
fn stats_registry_divergence(stats_line: &str, metrics_text: &str) -> Vec<String> {
    const PAIRS: [(&str, &str); 4] = [
        ("worker_restarts", "strata_service_worker_restarts"),
        ("read_only", "strata_service_read_only"),
        ("blocked", "strata_service_blocked"),
        ("snapshot_reads", "strata_service_snapshot_reads"),
    ];
    let stat = |key: &str| -> Option<u64> {
        stats_line
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
    };
    let metric = |name: &str| -> Option<u64> {
        metrics_text
            .lines()
            .find_map(|l| l.strip_prefix(name)?.strip_prefix(' ')?.trim().parse().ok())
    };
    let mut drift = Vec::new();
    for (skey, mname) in PAIRS {
        if let (Some(s), Some(m)) = (stat(skey), metric(mname)) {
            if s != m {
                drift.push(format!("{skey}={s} but {mname}={m}"));
            }
        }
    }
    drift
}

/// Opens a protocol client, bounded when `--timeout-ms` was given — the
/// bound covers the connection attempt and every later read, so a hung
/// server cannot wedge the shell.
fn connect(addr: &str, timeout_ms: Option<u64>) -> io::Result<Client> {
    match timeout_ms {
        Some(ms) => Client::connect_timeout(addr, std::time::Duration::from_millis(ms)),
        None => Client::connect(addr),
    }
}

const HELP: &str = "  + <fact|rule>     insert        - <fact|rule>   delete
  ? <query>         query         :why <fact>     proof tree
  :constrain <body> add denial    :constraints    list denials
  :model  :program  :stats        :strategy <name>
  :strategies       list engines  :threads <n>    parallel saturation workers
  :open <path>      durable (WAL) :save <path>    text export
  :compact          snapshot + empty WAL
  :serve <addr>     TCP ingest server over the current program
  :connect <addr> [--timeout-ms <n>]   become a client of a server
  :disconnect       leave remote mode
  :use <db>         bind to a database on a multi-tenant server (remote mode)
  :dbs              list the server's databases (remote mode)
  :flush            wait for all submitted updates (remote mode)
  :metrics          metrics registry (Prometheus text; remote asks the server)
  :trace [n]        last n sealed group spans (default 16)
  :help  :quit";

fn main() -> io::Result<()> {
    let mut program = Program::new();
    if let Some(path) = std::env::args().nth(1) {
        let src =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        program = Program::parse(&src).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        eprintln!("loaded {path}");
    }
    let mut repl = Repl::new(program).expect("initial engine");
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    eprintln!("strata — stratified database shell (:help for commands)");
    loop {
        eprint!("strata> ");
        io::stderr().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        match parse_command(&line) {
            Ok(cmd) => {
                if !repl.execute(cmd, &mut stdout)? {
                    break;
                }
            }
            Err(e) => eprintln!("  error: {e}"),
        }
        stdout.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(repl: &mut Repl, line: &str) -> String {
        let mut out = Vec::new();
        let cmd = parse_command(line).expect("parses");
        repl.execute(cmd, &mut out).expect("io");
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn parses_fact_updates() {
        let Command::Insert(Update::InsertFact(f)) = parse_command("+ accepted(1)").unwrap() else {
            panic!("expected fact insert")
        };
        assert_eq!(f, Fact::parse("accepted(1)").unwrap());
        let Command::Delete(Update::DeleteFact(f)) = parse_command("- accepted(1).").unwrap()
        else {
            panic!("expected fact delete")
        };
        assert_eq!(f, Fact::parse("accepted(1)").unwrap());
    }

    #[test]
    fn parses_rule_updates() {
        let cmd = parse_command("+ p(X) :- q(X), !r(X).").unwrap();
        let Command::Insert(Update::InsertRule(rule)) = cmd else {
            panic!("expected rule insert, got {cmd:?}")
        };
        assert_eq!(rule.to_string(), "p(X) :- q(X), !r(X).");
    }

    #[test]
    fn parses_queries_and_meta() {
        assert!(matches!(parse_command("? rejected(2)").unwrap(), Command::Query(_)));
        assert!(matches!(parse_command("? rejected(X), !late(X)").unwrap(), Command::Query(_)));
        assert!(matches!(parse_command(":model").unwrap(), Command::Model));
        assert!(matches!(parse_command(":strategy static").unwrap(), Command::Strategy(_)));
        assert!(matches!(parse_command(":q").unwrap(), Command::Quit));
        assert!(matches!(parse_command("").unwrap(), Command::Nothing));
        assert!(matches!(parse_command("% comment").unwrap(), Command::Nothing));
        assert!(matches!(parse_command(":constrain a(X), b(X)").unwrap(), Command::Constrain(_)));
        assert!(parse_command(":frobnicate").is_err());
        assert!(parse_command("bare words").is_err());
        assert!(parse_command("+ 123 456").is_err());
        assert!(parse_command("? !unsafe(X)").is_err());
    }

    fn pods_repl() -> Repl {
        let program = Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap();
        Repl::new(program).unwrap()
    }

    #[test]
    fn session_updates_and_queries() {
        let mut repl = pods_repl();
        assert!(run(&mut repl, "? rejected(1)").contains("true"));
        let out = run(&mut repl, "+ accepted(1)");
        assert!(out.contains("ok:"), "{out}");
        assert!(run(&mut repl, "? rejected(1)").contains("false"));
        assert!(run(&mut repl, ":stats").contains("removed"));
        let out = run(&mut repl, ":model");
        assert!(out.contains("accepted(1)") && out.contains("facts)"));
    }

    #[test]
    fn session_binding_queries() {
        let mut repl = pods_repl();
        let out = run(&mut repl, "? rejected(X)");
        assert!(out.contains("X = 1"), "{out}");
        assert!(out.contains("(1 answers)"), "{out}");
        let out = run(&mut repl, "? submitted(X), !rejected(X)");
        assert!(out.contains("X = 2"), "{out}");
    }

    #[test]
    fn session_constraints_guard_updates() {
        let mut repl = pods_repl();
        let out = run(&mut repl, ":constrain accepted(X), rejected(X)");
        assert!(out.contains("installed"), "{out}");
        let out = run(&mut repl, ":constraints");
        assert!(out.contains(":- accepted(X), rejected(X)."), "{out}");
        // Asserting rejected(2) would make paper 2 both accepted and
        // rejected: rejected and rolled back.
        let out = run(&mut repl, "+ rejected(2)");
        assert!(out.contains("rejected: update violates"), "{out}");
        assert!(run(&mut repl, "? rejected(2)").contains("false"));
    }

    #[test]
    fn parses_strategy_for_every_registered_name() {
        for name in EngineRegistry::standard().names() {
            let cmd = parse_command(&format!(":strategy {name}")).unwrap();
            let Command::Strategy(parsed) = cmd else {
                panic!(":strategy {name} must parse as a strategy switch")
            };
            assert_eq!(parsed, name);
        }
        assert!(parse_command(":strategy").is_err(), "missing name is an error");
        assert!(matches!(parse_command(":strategies").unwrap(), Command::Strategies));
    }

    #[test]
    fn session_switches_through_every_strategy() {
        let mut repl = pods_repl();
        for name in EngineRegistry::standard().names() {
            let out = run(&mut repl, &format!(":strategy {name}"));
            assert!(out.contains(name), "switch to {name}: {out}");
            // The model is preserved across the switch.
            assert!(run(&mut repl, "? rejected(1)").contains("true"), "[{name}]");
        }
    }

    #[test]
    fn session_lists_strategies_with_current_marked() {
        let mut repl = pods_repl();
        let out = run(&mut repl, ":strategies");
        for name in EngineRegistry::standard().names() {
            assert!(out.contains(name), "{out}");
        }
        assert!(out.contains("* cascade"), "current strategy marked: {out}");
    }

    #[test]
    fn session_strategy_switch_preserves_program_and_constraints() {
        let mut repl = pods_repl();
        run(&mut repl, ":constrain accepted(X), rejected(X)");
        let out = run(&mut repl, ":strategy static");
        assert!(out.contains("static"), "{out}");
        let out = run(&mut repl, "+ rejected(2)");
        assert!(out.contains("violates"), "constraints survive the switch: {out}");
        let out = run(&mut repl, ":strategy nonsense");
        assert!(out.contains("unknown strategy"));
    }

    #[test]
    fn parses_threads_command() {
        assert!(matches!(parse_command(":threads 4").unwrap(), Command::Threads(4)));
        assert!(matches!(parse_command(":threads 1").unwrap(), Command::Threads(1)));
        assert!(parse_command(":threads").is_err());
        assert!(parse_command(":threads 0").is_err());
        assert!(parse_command(":threads lots").is_err());
    }

    #[test]
    fn session_threads_follow_the_engine() {
        let mut repl = pods_repl();
        // The cascade engine honors the knob directly.
        let out = run(&mut repl, ":threads 4");
        assert!(out.contains("threads: 4") && !out.contains("sequentially"), "{out}");
        // Strategies without a parallel saturation path note it instead.
        run(&mut repl, ":strategy static");
        let out = run(&mut repl, ":threads 4");
        assert!(out.contains("sequentially"), "{out}");
        // Switching to the parallel strategy re-applies the sticky setting,
        // and the engine keeps answering correctly.
        let out = run(&mut repl, ":strategy cascade-parallel");
        assert!(out.contains("cascade-parallel"), "{out}");
        assert!(run(&mut repl, "? rejected(1)").contains("true"));
        let out = run(&mut repl, ":threads 2");
        assert!(out.contains("threads: 2") && !out.contains("sequentially"), "{out}");
        run(&mut repl, "+ accepted(1)");
        assert!(run(&mut repl, "? rejected(1)").contains("false"));
    }

    #[test]
    fn session_rejects_bad_updates() {
        let program = Program::parse("e(1). p(X) :- e(X), !q(X).").unwrap();
        let mut repl = Repl::new(program).unwrap();
        let out = run(&mut repl, "- p(1)");
        assert!(out.contains("rejected"), "{out}");
        let out = run(&mut repl, "+ q(X) :- e(X), !p(X).");
        assert!(out.contains("rejected"), "{out}");
    }

    #[test]
    fn session_why_prints_proof() {
        let program = Program::parse("e(1). p(X) :- e(X).").unwrap();
        let mut repl = Repl::new(program).unwrap();
        let out = run(&mut repl, ":why p(1)");
        assert!(out.contains("[by p(X) :- e(X).]"), "{out}");
        let out = run(&mut repl, ":why p(9)");
        assert!(out.contains("not in the model"));
    }

    #[test]
    fn parses_persistence_commands() {
        assert!(
            matches!(parse_command(":open /tmp/db").unwrap(), Command::Open(p) if p == "/tmp/db")
        );
        assert!(
            matches!(parse_command(":save out.strata").unwrap(), Command::Save(p) if p == "out.strata")
        );
        assert!(matches!(parse_command(":compact").unwrap(), Command::Compact));
        assert!(parse_command(":open").is_err());
        assert!(parse_command(":save").is_err());
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("strata_repl_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn session_durable_open_survives_restart() {
        let dir = scratch("open");
        let store = dir.join("db");
        {
            let mut repl = pods_repl();
            let out = run(&mut repl, &format!(":open {}", store.display()));
            assert!(out.contains("durable at"), "{out}");
            run(&mut repl, "+ accepted(1)");
            let out = run(&mut repl, ":compact");
            assert!(out.contains("compacted"), "{out}");
            run(&mut repl, "+ submitted(9)");
        } // simulated exit
        let mut repl = Repl::new(Program::new()).unwrap();
        run(&mut repl, &format!(":open {}", store.display()));
        assert!(run(&mut repl, "? accepted(1)").contains("true"));
        assert!(run(&mut repl, "? submitted(9)").contains("true"));
        assert!(run(&mut repl, "? rejected(1)").contains("false"));
        // Strategy switches stay durable: the reopened engine still
        // checkpoints.
        let out = run(&mut repl, ":strategy dynamic-multi");
        assert!(out.contains("dynamic-multi"), "{out}");
        assert!(run(&mut repl, ":compact").contains("compacted"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_compact_without_open_reports() {
        let mut repl = pods_repl();
        let out = run(&mut repl, ":compact");
        assert!(out.contains("not a durable session"), "{out}");
    }

    #[test]
    fn session_save_exports_reparseable_text() {
        let dir = scratch("save");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("export.strata");
        let mut repl = pods_repl();
        // A symbol that breaks naive text export without quote-on-write.
        run(&mut repl, "+ submitted(\"tricky. name\")");
        let out = run(&mut repl, &format!(":save {}", file.display()));
        assert!(out.contains("saved"), "{out}");
        let text = std::fs::read_to_string(&file).unwrap();
        let reloaded = Program::parse(&text).unwrap();
        assert_eq!(reloaded.num_facts(), repl.engine.program().num_facts());
        assert_eq!(reloaded.num_rules(), repl.engine.program().num_rules());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_service_commands() {
        assert!(
            matches!(parse_command(":serve 127.0.0.1:0").unwrap(), Command::Serve(a) if a == "127.0.0.1:0")
        );
        assert!(matches!(
            parse_command(":connect 127.0.0.1:7171").unwrap(),
            Command::Connect { addr, timeout_ms: None } if addr == "127.0.0.1:7171"
        ));
        assert!(matches!(
            parse_command(":connect 127.0.0.1:7171 --timeout-ms 250").unwrap(),
            Command::Connect { addr, timeout_ms: Some(250) } if addr == "127.0.0.1:7171"
        ));
        assert!(matches!(parse_command(":disconnect").unwrap(), Command::Disconnect));
        assert!(matches!(parse_command(":flush").unwrap(), Command::Flush));
        assert!(
            matches!(parse_command(":use tenant1").unwrap(), Command::UseDb(n) if n == "tenant1")
        );
        assert!(matches!(parse_command(":dbs").unwrap(), Command::Dbs));
        assert!(parse_command(":use").is_err());
        assert!(parse_command(":use two words").is_err());
        assert!(parse_command(":serve").is_err());
        assert!(parse_command(":connect").is_err());
        assert!(parse_command(":connect 127.0.0.1:1 --timeout-ms").is_err());
        assert!(parse_command(":connect 127.0.0.1:1 --timeout-ms x").is_err());
        assert!(parse_command(":connect a b").is_err());
    }

    #[test]
    fn session_serve_connect_roundtrip() {
        let mut repl = pods_repl();
        let out = run(&mut repl, ":serve 127.0.0.1:0");
        assert!(out.contains("serving cascade on"), "{out}");
        let addr = repl.servers[0].1.addr().to_string();
        let out = run(&mut repl, &format!(":connect {addr}"));
        assert!(out.contains("connected"), "{out}");
        // Remote updates and queries hit the server's copy.
        assert!(run(&mut repl, "? rejected(1)").contains("true"));
        let out = run(&mut repl, "+ accepted(1)");
        assert!(out.contains("ok: committed with group"), "{out}");
        assert!(run(&mut repl, "? rejected(1)").contains("false"));
        let out = run(&mut repl, "- ghost(1)");
        assert!(out.contains("rejected:"), "{out}");
        assert!(run(&mut repl, ":flush").contains("flushed"));
        let out = run(&mut repl, ":stats");
        assert!(out.contains("accepted=1") && out.contains("rejected=1"), "{out}");
        // Engine-local commands are guarded while connected.
        assert!(run(&mut repl, ":model").contains(":disconnect"));
        let out = run(&mut repl, ":disconnect");
        assert!(out.contains("disconnected"), "{out}");
        // The local engine never saw the remote update.
        assert!(run(&mut repl, "? rejected(1)").contains("true"));
    }

    #[test]
    fn session_multi_tenant_roundtrip() {
        use stratamaint::service::{net, Cluster, DbOptions};
        let program = Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap();
        let cluster = Cluster::new(
            program,
            stratamaint::core::StorageSpec::Mem,
            None,
            DbOptions::new("cascade"),
        )
        .unwrap();
        cluster.create("tenant1").unwrap();
        let handle = net::serve_cluster(std::sync::Arc::clone(&cluster), "127.0.0.1:0").unwrap();
        let mut repl = pods_repl();
        // :use and :dbs are remote-mode commands.
        assert!(run(&mut repl, ":dbs").contains(":connect"));
        run(&mut repl, &format!(":connect {}", handle.addr()));
        let out = run(&mut repl, ":dbs");
        assert!(out.contains("default ") && out.contains("tenant1 "), "{out}");
        assert!(out.contains("(2 databases)"), "{out}");
        let out = run(&mut repl, ":use tenant1");
        assert!(out.contains("using tenant1"), "{out}");
        assert!(run(&mut repl, "? rejected(1)").contains("false"), "tenant1 is empty");
        let out = run(&mut repl, ":use ghost");
        assert!(out.contains("error: no database named ghost"), "{out}");
        let out = run(&mut repl, ":stats");
        assert!(out.contains("db=tenant1"), "{out}");
        run(&mut repl, ":disconnect");
        handle.stop();
    }

    #[test]
    fn parses_observability_commands() {
        assert!(matches!(parse_command(":metrics").unwrap(), Command::Metrics));
        assert!(matches!(parse_command(":trace").unwrap(), Command::Trace(16)));
        assert!(matches!(parse_command(":trace 5").unwrap(), Command::Trace(5)));
        assert!(parse_command(":trace lots").is_err());
    }

    #[test]
    fn stats_registry_divergence_flags_disagreements() {
        let stats = "submitted=9 blocked=2 snapshot_reads=5 worker_restarts=1 read_only=0";
        let metrics = "strata_service_blocked 2\nstrata_service_read_only 0\n\
                       strata_service_snapshot_reads 5\nstrata_service_worker_restarts 1\n";
        assert!(stats_registry_divergence(stats, metrics).is_empty());
        let skewed = metrics.replace("strata_service_blocked 2", "strata_service_blocked 7");
        let drift = stats_registry_divergence(stats, &skewed);
        assert_eq!(drift, ["blocked=2 but strata_service_blocked=7"]);
        // A metric missing from the exposition is not a divergence (the
        // server may predate the registry).
        assert!(stats_registry_divergence(stats, "").is_empty());
    }

    #[test]
    fn session_observability_roundtrip() {
        let mut repl = pods_repl();
        run(&mut repl, ":serve 127.0.0.1:0");
        let addr = repl.servers[0].1.addr().to_string();
        run(&mut repl, &format!(":connect {addr}"));
        let out = run(&mut repl, "+ accepted(1)");
        assert!(out.contains("ok: committed"), "{out}");
        // The legacy stats line and the registry agree — no drift warning.
        let out = run(&mut repl, ":stats");
        assert!(out.contains("accepted=1"), "{out}");
        assert!(!out.contains("divergence"), "{out}");
        // The exposition carries the group pipeline histograms and the
        // service gauges.
        let out = run(&mut repl, ":metrics");
        assert!(out.contains("# TYPE strata_group_commit_us histogram"), "{out}");
        assert!(out.contains("strata_service_worker_restarts 0"), "{out}");
        // The trace ring holds the committed group's span.
        let out = run(&mut repl, ":trace 8");
        assert!(out.contains("kind=facts committed=true"), "{out}");
        run(&mut repl, ":disconnect");
        // Local mode renders the same registry without a server.
        let out = run(&mut repl, ":metrics");
        assert!(out.contains("strata_group_commit_us_count"), "{out}");
        let out = run(&mut repl, ":trace 1");
        assert!(out.contains("(1 spans)"), "{out}");
    }

    #[test]
    fn session_stats_surfaces_recovered_wal_txns() {
        let dir = scratch("stats_recovered");
        let store = dir.join("db");
        {
            let mut repl = pods_repl();
            run(&mut repl, &format!(":open {}", store.display()));
            run(&mut repl, "+ accepted(1)");
            run(&mut repl, "+ submitted(9)");
        } // simulated exit: two committed txns in the WAL
        let mut repl = Repl::new(Program::new()).unwrap();
        let out = run(&mut repl, &format!(":open {}", store.display()));
        assert!(out.contains("recovered 2 txns / 2 updates"), "{out}");
        let out = run(&mut repl, ":stats");
        assert!(out.contains("no update applied yet"), "{out}");
        assert!(out.contains("recovered 2 txns (2 updates)"), "restart metrics: {out}");
        run(&mut repl, "+ submitted(11)");
        let out = run(&mut repl, ":stats");
        assert!(out.contains("recovered 2 txns") && out.contains("wal now 3 txns"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quit_ends_session() {
        let program = Program::new();
        let mut repl = Repl::new(program).unwrap();
        let mut out = Vec::new();
        assert!(!repl.execute(Command::Quit, &mut out).unwrap());
        assert!(repl.execute(Command::Help, &mut out).unwrap());
    }
}
