//! `strata-serve` — the standalone ingest server.
//!
//! Binds a TCP listener and serves the line protocol of
//! `strata_service::protocol` (submit / query / flush / stats / quit)
//! against one maintained stratified database. Many clients share one
//! coalescing queue, so concurrent submissions group-commit: one engine
//! transaction — and, with `--store`, one WAL fsync — per group.
//!
//! ```text
//! strata-serve 127.0.0.1:7171 --strategy cascade --store ./db \
//!              --program seed.strata --group 64 --delay-ms 2 --threads 4
//! ```
//!
//! * `--strategy <name>`   any registered strategy (default `cascade`)
//! * `--store <dir>`       durable WAL + snapshots (default in-memory)
//! * `--program <file>`    seed program for a fresh database (an existing
//!   store's recovered state wins, as with `:open`)
//! * `--group <n>`         group-size watermark (default 64)
//! * `--delay-ms <n>`      latency watermark in milliseconds (default 2)
//! * `--max-pending <n>`   backpressure bound (default 8192)
//! * `--threads <n>`       worker threads for parallel saturation

use std::sync::Arc;
use std::time::Duration;

use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{MaintenanceEngine, Parallelism, StorageConfig};
use stratamaint::datalog::Program;
use stratamaint::service::{net, IngestConfig, Service};

struct Args {
    addr: String,
    strategy: String,
    store: Option<String>,
    program: Option<String>,
    cfg: IngestConfig,
    threads: Option<usize>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        addr: String::new(),
        strategy: "cascade".into(),
        store: None,
        program: None,
        cfg: IngestConfig::default(),
        threads: None,
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--strategy" => out.strategy = value("--strategy")?,
            "--store" => out.store = Some(value("--store")?),
            "--program" => out.program = Some(value("--program")?),
            "--group" => {
                out.cfg.max_group =
                    value("--group")?.parse().map_err(|e| format!("--group: {e}"))?;
            }
            "--delay-ms" => {
                let ms: u64 =
                    value("--delay-ms")?.parse().map_err(|e| format!("--delay-ms: {e}"))?;
                out.cfg.max_delay = Duration::from_millis(ms);
            }
            "--max-pending" => {
                out.cfg.max_pending =
                    value("--max-pending")?.parse().map_err(|e| format!("--max-pending: {e}"))?;
            }
            "--threads" => {
                out.threads =
                    Some(value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    match positional.as_slice() {
        [addr] => out.addr = addr.clone(),
        _ => {
            return Err("usage: strata-serve <addr> [--strategy NAME] [--store DIR] \
                        [--program FILE] [--group N] [--delay-ms N] [--max-pending N] \
                        [--threads N]"
                .into())
        }
    }
    if out.cfg.max_group == 0 || out.cfg.max_pending < out.cfg.max_group {
        return Err("--group must be >= 1 and --max-pending >= --group".into());
    }
    Ok(out)
}

fn run(args: Args) -> Result<(), String> {
    let program = match &args.program {
        Some(path) => {
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Program::parse(&src).map_err(|e| format!("cannot parse {path}: {e}"))?
        }
        None => Program::new(),
    };
    let storage = match &args.store {
        Some(dir) => StorageConfig::Wal(dir.into()),
        None => StorageConfig::Mem,
    };
    let registry = EngineRegistry::standard();
    let mut engine = registry
        .build_with_storage(&args.strategy, program, &storage)
        .map_err(|e| e.to_string())?;
    if let Some(n) = args.threads {
        engine.set_parallelism(Parallelism::new(n));
    }
    if let Some(d) = engine.durability() {
        eprintln!(
            "recovered {} transactions ({} updates) from {}",
            d.recovered_txns,
            d.recovered_updates,
            args.store.as_deref().unwrap_or("?"),
        );
    }
    eprintln!(
        "serving {} ({} facts) — group <= {}, delay {:?}, storage {}",
        args.strategy,
        engine.model().len(),
        args.cfg.max_group,
        args.cfg.max_delay,
        args.store.as_deref().unwrap_or("mem"),
    );
    let service = Arc::new(Service::start(engine, args.cfg));
    let handle = net::serve(Arc::clone(&service), &args.addr).map_err(|e| e.to_string())?;
    eprintln!("listening on {} (submit | query | flush | stats | quit)", handle.addr());
    // Serve until killed: the acceptor owns the listener, connections own
    // their threads, and the park below never returns in normal operation.
    loop {
        std::thread::park();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(args) => {
            if let Err(e) = run(args) {
                eprintln!("strata-serve: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("strata-serve: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Args, String> {
        parse_args(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_the_full_flag_set() {
        let a = args(&[
            "127.0.0.1:7171",
            "--strategy",
            "cascade-parallel",
            "--store",
            "/tmp/db",
            "--group",
            "128",
            "--delay-ms",
            "5",
            "--max-pending",
            "256",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(a.addr, "127.0.0.1:7171");
        assert_eq!(a.strategy, "cascade-parallel");
        assert_eq!(a.store.as_deref(), Some("/tmp/db"));
        assert_eq!(a.cfg.max_group, 128);
        assert_eq!(a.cfg.max_delay, Duration::from_millis(5));
        assert_eq!(a.cfg.max_pending, 256);
        assert_eq!(a.threads, Some(4));
    }

    #[test]
    fn defaults_and_errors() {
        let a = args(&["0.0.0.0:0"]).unwrap();
        assert_eq!(a.strategy, "cascade");
        assert!(a.store.is_none() && a.program.is_none() && a.threads.is_none());
        assert!(args(&[]).is_err(), "address is required");
        assert!(args(&["a", "b"]).is_err(), "one address only");
        assert!(args(&["x", "--group"]).is_err(), "flag needs a value");
        assert!(args(&["x", "--frob"]).is_err(), "unknown flag");
        assert!(args(&["x", "--group", "0"]).is_err(), "zero group");
        assert!(args(&["x", "--group", "10", "--max-pending", "5"]).is_err());
    }
}
