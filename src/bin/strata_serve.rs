//! `strata-serve` — the standalone ingest server.
//!
//! Binds a TCP listener and serves the line protocol of
//! `strata_service::protocol` (submit / query / flush / stats / quit)
//! against one maintained stratified database. Many clients share one
//! coalescing queue, so concurrent submissions group-commit: one engine
//! transaction — and, with `--store`, one WAL fsync — per group.
//!
//! ```text
//! strata-serve 127.0.0.1:7171 --strategy cascade --store ./db \
//!              --program seed.strata --group 64 --delay-ms 2 --threads 4
//! ```
//!
//! * `--strategy <name>`   any registered strategy (default `cascade`)
//! * `--store <dir>`       durable WAL + snapshot chain (default in-memory).
//!   A durable server gets the production storage profile unless
//!   overridden: auto-compaction (`compact=auto`), incremental
//!   checkpoints (`snapshot=delta:8`), and bulk replay (`replay=bulk`)
//! * `--compact <policy>`  auto-compaction policy: `off`, `auto`, or
//!   `[wal=<bytes>][,ms=<n>][,txns=<n>]` (see
//!   `strata_store::CompactionPolicy`)
//! * `--snapshot <mode>`   checkpoint mode: `full` or `delta[:<max>]`
//! * `--replay <mode>`     recovery replay: `bulk` (fast, canonical
//!   supports) or `engine` (exact per-transaction replay)
//! * `--program <file>`    seed program for a fresh database (an existing
//!   store's recovered state wins, as with `:open`)
//! * `--group <n>`         group-size watermark (default 64)
//! * `--delay-ms <n>`      latency watermark in milliseconds (default 2)
//! * `--max-pending <n>`   backpressure bound (default 8192)
//! * `--threads <n>`       worker threads for parallel saturation
//! * `--slow-group-ms <n>` log any group whose cut-to-publish time exceeds
//!   `n` milliseconds to stderr, with its full per-stage span breakdown
//! * `--fault-plan <spec>` deterministic fault injection for chaos drills
//!   (e.g. `wal-fsync@3`, `panic-pre-apply@1+`; see
//!   `strata_store::faults`)
//!
//! ## Multi-tenancy and sharding
//!
//! Any of the following flags switch the front-end to a cluster serving
//! named databases (`use <db>`, `db create|list|drop` on the wire). The
//! default database keeps the legacy layout — a `--store` directory from
//! a single-database server opens unchanged:
//!
//! * `--data-root <dir>`   durable home for named databases
//!   (`<dir>/<name>`); without `--store`, the default database lives at
//!   `<dir>/default`
//! * `--db <name>[,<name>…]` precreate (or reopen) named databases at
//!   startup; repeatable
//! * `--shards <n>`        partition every database into up to `n` shard
//!   workers along its stratum dependency components (rule updates are
//!   global barriers that re-partition)
//! * `--worker-budget <n>` bound how many shard workers across all
//!   databases commit concurrently (threads stay idle without a permit)
//!
//! ## Supervision and shutdown
//!
//! With `--store`, the worker runs supervised: a panic or storage fault
//! fails only the in-flight group (typed, retryable errors on the wire),
//! then the supervisor rebuilds the engine from the WAL and re-publishes
//! a fresh snapshot. If restarts are exhausted the service degrades to
//! read-only — queries and stats keep serving — and periodically probes
//! the store to re-arm writes. In-memory engines get no rebuild (a replay
//! source is required to reconstruct state), so persistent failure goes
//! straight to read-only.
//!
//! Ctrl-C (SIGINT/SIGTERM) or the wire's `shutdown` verb triggers a
//! graceful exit: stop accepting, drain and decide every queued request,
//! checkpoint a durable store, then exit 0.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use stratamaint::core::durable::DEFAULT_MAX_CHAIN;
use stratamaint::core::registry::EngineRegistry;
use stratamaint::core::{
    FaultPlan, MaintenanceEngine, MaintenanceError, Parallelism, ReplayMode, SnapshotMode,
    StorageSpec, WalSpec,
};
use stratamaint::datalog::Program;
use stratamaint::service::{
    net, Cluster, DbOptions, EngineRebuild, IngestConfig, Service, SupervisorConfig, WorkerBudget,
};
use stratamaint::store::CompactionPolicy;

struct Args {
    addr: String,
    strategy: String,
    store: Option<String>,
    compact: Option<CompactionPolicy>,
    snapshot: Option<SnapshotMode>,
    replay: Option<ReplayMode>,
    program: Option<String>,
    cfg: IngestConfig,
    threads: Option<usize>,
    slow_group_ms: Option<u64>,
    fault_plan: Option<FaultPlan>,
    data_root: Option<String>,
    dbs: Vec<String>,
    shards: u32,
    worker_budget: Option<usize>,
}

impl Args {
    /// The production-profile WAL spec for `dir` (auto-compaction,
    /// incremental checkpoints, bulk replay), each knob individually
    /// overridable.
    fn wal_profile(&self, dir: &str) -> WalSpec {
        let mut spec = WalSpec::new(dir);
        spec.compaction = self.compact.unwrap_or_else(CompactionPolicy::default_auto);
        spec.snapshot =
            self.snapshot.unwrap_or(SnapshotMode::Incremental { max_chain: DEFAULT_MAX_CHAIN });
        spec.replay = self.replay.unwrap_or(ReplayMode::Bulk);
        spec
    }

    /// The resolved storage spec for the (default) database: in-memory
    /// without `--store`/`--data-root`; `--store` keeps the legacy flat
    /// layout byte-compatible, `--data-root` alone puts the default
    /// database under `<root>/default` like any other tenant.
    fn storage(&self) -> StorageSpec {
        match (&self.store, &self.data_root) {
            (Some(dir), _) => StorageSpec::Wal(self.wal_profile(dir)),
            (None, Some(root)) => {
                let dir = std::path::Path::new(root).join("default");
                StorageSpec::Wal(self.wal_profile(&dir.to_string_lossy()))
            }
            (None, None) => StorageSpec::Mem,
        }
    }

    /// Whether any multi-tenant/sharding flag was given: those are served
    /// by a [`Cluster`] front-end; without them the classic single-service
    /// path runs unchanged.
    fn cluster_mode(&self) -> bool {
        self.data_root.is_some()
            || !self.dbs.is_empty()
            || self.shards > 1
            || self.worker_budget.is_some()
    }
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        addr: String::new(),
        strategy: "cascade".into(),
        store: None,
        compact: None,
        snapshot: None,
        replay: None,
        program: None,
        cfg: IngestConfig::default(),
        threads: None,
        slow_group_ms: None,
        fault_plan: None,
        data_root: None,
        dbs: Vec::new(),
        shards: 1,
        worker_budget: None,
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--strategy" => out.strategy = value("--strategy")?,
            "--store" => out.store = Some(value("--store")?),
            "--compact" => {
                out.compact = Some(value("--compact")?.parse().map_err(
                    |e: stratamaint::store::PolicyParseError| format!("--compact: {e}"),
                )?);
            }
            "--snapshot" => {
                out.snapshot =
                    Some(value("--snapshot")?.parse().map_err(|e| format!("--snapshot: {e}"))?);
            }
            "--replay" => {
                out.replay =
                    Some(value("--replay")?.parse().map_err(|e| format!("--replay: {e}"))?);
            }
            "--program" => out.program = Some(value("--program")?),
            "--group" => {
                out.cfg.max_group =
                    value("--group")?.parse().map_err(|e| format!("--group: {e}"))?;
            }
            "--delay-ms" => {
                let ms: u64 =
                    value("--delay-ms")?.parse().map_err(|e| format!("--delay-ms: {e}"))?;
                out.cfg.max_delay = Duration::from_millis(ms);
            }
            "--max-pending" => {
                out.cfg.max_pending =
                    value("--max-pending")?.parse().map_err(|e| format!("--max-pending: {e}"))?;
            }
            "--threads" => {
                out.threads =
                    Some(value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?);
            }
            "--slow-group-ms" => {
                out.slow_group_ms = Some(
                    value("--slow-group-ms")?
                        .parse()
                        .map_err(|e| format!("--slow-group-ms: {e}"))?,
                );
            }
            "--fault-plan" => {
                out.fault_plan =
                    Some(value("--fault-plan")?.parse().map_err(|e| format!("--fault-plan: {e}"))?);
            }
            "--data-root" => out.data_root = Some(value("--data-root")?),
            "--db" => {
                for name in value("--db")?.split(',').filter(|n| !n.is_empty()) {
                    out.dbs.push(name.to_string());
                }
            }
            "--shards" => {
                out.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            "--worker-budget" => {
                out.worker_budget = Some(
                    value("--worker-budget")?
                        .parse()
                        .map_err(|e| format!("--worker-budget: {e}"))?,
                );
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    match positional.as_slice() {
        [addr] => out.addr = addr.clone(),
        _ => {
            return Err("usage: strata-serve <addr> [--strategy NAME] [--store DIR] \
                        [--compact POLICY] [--snapshot MODE] [--replay MODE] \
                        [--program FILE] [--group N] [--delay-ms N] [--max-pending N] \
                        [--threads N] [--slow-group-ms N] [--fault-plan SPEC] \
                        [--data-root DIR] [--db NAME[,NAME...]] [--shards N] \
                        [--worker-budget N]"
                .into())
        }
    }
    if out.cfg.max_group == 0 || out.cfg.max_pending < out.cfg.max_group {
        return Err("--group must be >= 1 and --max-pending >= --group".into());
    }
    if out.store.is_none()
        && out.data_root.is_none()
        && (out.compact.is_some() || out.snapshot.is_some() || out.replay.is_some())
    {
        return Err("--compact/--snapshot/--replay require --store or --data-root".into());
    }
    if out.shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    if out.worker_budget == Some(0) {
        return Err("--worker-budget must be >= 1".into());
    }
    if !out.dbs.is_empty() && out.data_root.is_none() {
        eprintln!("note: --db without --data-root keeps the named databases in memory");
    }
    if out.threads.is_some() && out.cluster_mode() {
        return Err("--threads applies to the single-database server; \
                    use --shards/--worker-budget for cluster parallelism"
            .into());
    }
    Ok(out)
}

/// The SIGINT/SIGTERM latch. A signal handler may only do async-signal-safe
/// work, so it sets this flag; the main loop polls it between bounded waits
/// on the wire-initiated [`net::ShutdownFlag`].
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        // libc's classic `signal(2)`: always linked with std on unix, so no
        // extra dependency is needed for a store-a-flag handler.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn run(args: Args) -> Result<(), String> {
    let program = match &args.program {
        Some(path) => {
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Program::parse(&src).map_err(|e| format!("cannot parse {path}: {e}"))?
        }
        None => Program::new(),
    };
    let storage = args.storage();
    if let Some(ms) = args.slow_group_ms {
        // 0 in the registry means "disabled"; clamp to 1us so passing the
        // flag always arms logging (`--slow-group-ms 0` = log every group).
        stratamaint::obs::trace::set_slow_group_us(ms.saturating_mul(1000).max(1));
        eprintln!("slow-group logging armed: >= {ms} ms cut-to-publish");
    }
    let faults =
        args.fault_plan.as_ref().filter(|plan| !plan.is_empty()).map(|plan| Arc::new(plan.arm()));
    if let Some(plan) = args.fault_plan.as_ref().filter(|plan| !plan.is_empty()) {
        eprintln!("fault injection armed: {plan}");
    }
    if args.cluster_mode() {
        return run_cluster(&args, program, faults);
    }
    let registry = EngineRegistry::standard();
    let mut engine = registry
        .build_with_storage_faults(&args.strategy, program.clone(), &storage, faults.clone())
        .map_err(|e| e.to_string())?;
    if let Some(n) = args.threads {
        engine.set_parallelism(Parallelism::new(n));
    }
    if let Some(d) = engine.durability() {
        eprintln!(
            "recovered {} transactions ({} updates) in {} ms ({} replay, chain {}) from {}",
            d.recovered_txns,
            d.recovered_updates,
            d.recovery_ms,
            d.replay_mode,
            d.snapshot_chain_len,
            args.store.as_deref().unwrap_or("?"),
        );
    }
    eprintln!(
        "serving {} ({} facts) — group <= {}, delay {:?}, storage {}",
        args.strategy,
        engine.model().len(),
        args.cfg.max_group,
        args.cfg.max_delay,
        storage,
    );
    // A durable store is its own replay source: the supervisor can heal a
    // crashed worker by rebuilding from the WAL. In-memory engines have
    // nothing to rebuild from — a fresh build would silently drop every
    // committed update — so they get no rebuild and degrade to read-only
    // on persistent failure instead.
    let rebuild: Option<EngineRebuild> = match &storage {
        StorageSpec::Mem => None,
        StorageSpec::Wal(_) => {
            let strategy = args.strategy.clone();
            let program = program.clone();
            let storage = storage.clone();
            let faults = faults.clone();
            let threads = args.threads;
            Some(Arc::new(move || {
                let mut engine = EngineRegistry::standard()
                    .build_with_storage_faults(&strategy, program.clone(), &storage, faults.clone())
                    .map_err(|e| MaintenanceError::Storage(format!("rebuild failed: {e}")))?;
                if let Some(n) = threads {
                    engine.set_parallelism(Parallelism::new(n));
                }
                Ok(engine)
            }))
        }
    };
    let service = Arc::new(Service::start_supervised(
        engine,
        args.cfg,
        SupervisorConfig::default(),
        rebuild,
        faults,
    ));
    let handle = net::serve(Arc::clone(&service), &args.addr).map_err(|e| e.to_string())?;
    eprintln!(
        "listening on {} (client | submit | query | flush | compact | stats | metrics | trace | \
         shutdown | quit)",
        handle.addr()
    );
    install_signal_handlers();
    // Serve until asked to stop: either a connection's `shutdown` verb
    // raises the server flag, or SIGINT/SIGTERM sets the latch. The
    // bounded wait interleaves the two — a signal handler cannot safely
    // notify a condvar, so it must be polled.
    let requests = handle.shutdown_requests();
    loop {
        if requests.wait_timeout(Duration::from_millis(200)) {
            eprintln!("shutdown requested over the wire");
            break;
        }
        if SIGNALLED.load(Ordering::SeqCst) {
            eprintln!("signal received");
            break;
        }
    }
    // Graceful teardown: stop accepting, decide everything already queued
    // (every ack implies durability for a WAL store), checkpoint, exit.
    // Connections still open die with the process — their clients have
    // their acks.
    handle.stop();
    service.flush();
    match service.with_engine_mut(|e| e.checkpoint()) {
        Ok(true) => eprintln!("checkpointed store; bye"),
        Ok(false) => eprintln!("bye"),
        Err(e) => eprintln!("checkpoint failed (WAL remains authoritative): {e}"),
    }
    Ok(())
}

/// The multi-tenant/sharded server path: a [`Cluster`] front-end whose
/// default database keeps the legacy storage layout, with named tenants
/// precreated from `--db` under `--data-root`, each database sharded to
/// `--shards` and every shard worker drawing from one `--worker-budget`.
fn run_cluster(
    args: &Args,
    program: Program,
    faults: Option<Arc<stratamaint::core::FaultInjector>>,
) -> Result<(), String> {
    let storage = args.storage();
    let mut opts = DbOptions::new(&args.strategy);
    opts.shards = args.shards;
    opts.cfg = args.cfg;
    opts.sup = SupervisorConfig::default();
    opts.faults = faults;
    opts.budget = args.worker_budget.map(WorkerBudget::new);
    let data_root = args.data_root.as_ref().map(std::path::PathBuf::from);
    let cluster = Cluster::new(program, storage.clone(), data_root, opts)
        .map_err(|e| format!("cannot open the default database: {e}"))?;
    for name in &args.dbs {
        cluster.create(name).map_err(|e| format!("--db {name}: {e}"))?;
    }
    eprintln!(
        "serving {} ({} databases, {} shards each) — group <= {}, delay {:?}, storage {}",
        args.strategy,
        cluster.list().len(),
        args.shards,
        args.cfg.max_group,
        args.cfg.max_delay,
        storage,
    );
    if let Some(budget) = args.worker_budget {
        eprintln!("worker budget: {budget} concurrently active shard workers");
    }
    let handle = net::serve_cluster(Arc::clone(&cluster), &args.addr).map_err(|e| e.to_string())?;
    eprintln!(
        "listening on {} (client | submit | query | use | db | flush | compact | stats | \
         metrics | trace | shutdown | quit)",
        handle.addr()
    );
    install_signal_handlers();
    let requests = handle.shutdown_requests();
    loop {
        if requests.wait_timeout(Duration::from_millis(200)) {
            eprintln!("shutdown requested over the wire");
            break;
        }
        if SIGNALLED.load(Ordering::SeqCst) {
            eprintln!("signal received");
            break;
        }
    }
    // Graceful teardown mirrors the single-database path, tenant by
    // tenant: decide everything queued, then checkpoint each durable
    // store so the next open recovers from snapshots instead of the WAL.
    handle.stop();
    for info in cluster.list() {
        let Some(db) = cluster.get(&info.name) else { continue };
        db.flush();
        match db.compact() {
            Ok(Some(seq)) => eprintln!("checkpointed {} through seq {seq}", info.name),
            Ok(None) => {}
            Err(e) => {
                eprintln!("checkpoint of {} failed (WAL remains authoritative): {e}", info.name)
            }
        }
    }
    eprintln!("bye");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(args) => {
            if let Err(e) = run(args) {
                eprintln!("strata-serve: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("strata-serve: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Args, String> {
        parse_args(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_the_full_flag_set() {
        let a = args(&[
            "127.0.0.1:7171",
            "--strategy",
            "cascade-parallel",
            "--store",
            "/tmp/db",
            "--group",
            "128",
            "--delay-ms",
            "5",
            "--max-pending",
            "256",
            "--threads",
            "4",
            "--slow-group-ms",
            "25",
        ])
        .unwrap();
        assert_eq!(a.addr, "127.0.0.1:7171");
        assert_eq!(a.strategy, "cascade-parallel");
        assert_eq!(a.store.as_deref(), Some("/tmp/db"));
        assert_eq!(a.cfg.max_group, 128);
        assert_eq!(a.cfg.max_delay, Duration::from_millis(5));
        assert_eq!(a.cfg.max_pending, 256);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.slow_group_ms, Some(25));
    }

    #[test]
    fn parses_fault_plans() {
        let a = args(&["127.0.0.1:0", "--fault-plan", "wal-fsync@2,panic-pre-apply@1+"]).unwrap();
        let plan = a.fault_plan.expect("plan parsed");
        assert_eq!(plan.specs().len(), 2);
        assert!(args(&["127.0.0.1:0", "--fault-plan", "not-a-point@1"]).is_err());
        assert!(args(&["127.0.0.1:0", "--fault-plan"]).is_err(), "flag needs a value");
    }

    #[test]
    fn storage_flags_resolve_the_production_profile() {
        // Without --store: in-memory, and the storage knobs are refused.
        assert_eq!(args(&["x:0"]).unwrap().storage(), StorageSpec::Mem);
        for flag in [
            ["x:0", "--compact", "auto"],
            ["x:0", "--snapshot", "full"],
            ["x:0", "--replay", "bulk"],
        ] {
            let Err(err) = args(&flag) else { panic!("{flag:?} must require --store") };
            assert!(err.contains("require --store"), "{err}");
        }

        // With --store alone: the production profile.
        let StorageSpec::Wal(spec) = args(&["x:0", "--store", "/tmp/db"]).unwrap().storage() else {
            panic!("--store must resolve durable")
        };
        assert_eq!(spec.compaction, CompactionPolicy::default_auto());
        assert_eq!(spec.snapshot, SnapshotMode::Incremental { max_chain: DEFAULT_MAX_CHAIN });
        assert_eq!(spec.replay, ReplayMode::Bulk);

        // Each knob is individually overridable, typed at parse time.
        let a = args(&[
            "x:0",
            "--store",
            "/tmp/db",
            "--compact",
            "wal=4k,txns=16",
            "--snapshot",
            "delta:3",
            "--replay",
            "engine",
        ])
        .unwrap();
        let StorageSpec::Wal(spec) = a.storage() else { panic!("durable") };
        assert_eq!(spec.compaction, "wal=4k,txns=16".parse().unwrap());
        assert_eq!(spec.snapshot, SnapshotMode::Incremental { max_chain: 3 });
        assert_eq!(spec.replay, ReplayMode::Engine);
        let a =
            args(&["x:0", "--store", "/tmp/db", "--compact", "off", "--snapshot", "full"]).unwrap();
        let StorageSpec::Wal(spec) = a.storage() else { panic!("durable") };
        assert_eq!(spec.compaction, CompactionPolicy::disabled());
        assert_eq!(spec.snapshot, SnapshotMode::Full);

        // Bad values are parse errors that name the flag.
        for (flag, v) in [("--compact", "wal="), ("--snapshot", "delta:0"), ("--replay", "psychic")]
        {
            let Err(err) = args(&["x:0", "--store", "/tmp/db", flag, v]) else {
                panic!("{flag} {v} must be rejected")
            };
            assert!(err.contains(flag), "{err}");
        }
    }

    #[test]
    fn parses_cluster_flags() {
        let a = args(&[
            "127.0.0.1:0",
            "--data-root",
            "/tmp/cluster",
            "--db",
            "alpha,beta",
            "--db",
            "gamma",
            "--shards",
            "4",
            "--worker-budget",
            "2",
        ])
        .unwrap();
        assert!(a.cluster_mode());
        assert_eq!(a.data_root.as_deref(), Some("/tmp/cluster"));
        assert_eq!(a.dbs, ["alpha", "beta", "gamma"]);
        assert_eq!(a.shards, 4);
        assert_eq!(a.worker_budget, Some(2));
        // Without --store the default database lives under the data root.
        let StorageSpec::Wal(spec) = a.storage() else { panic!("data root is durable") };
        assert_eq!(spec.dir, std::path::Path::new("/tmp/cluster/default"));
        assert_eq!(spec.replay, ReplayMode::Bulk, "production profile applies");
        // --store wins for the default database (legacy flat layout).
        let a = args(&["x:0", "--store", "/tmp/db", "--data-root", "/tmp/cluster"]).unwrap();
        let StorageSpec::Wal(spec) = a.storage() else { panic!("durable") };
        assert_eq!(spec.dir, std::path::Path::new("/tmp/db"));
        // The storage knobs work with --data-root alone.
        let a = args(&["x:0", "--data-root", "/tmp/c", "--replay", "engine"]).unwrap();
        let StorageSpec::Wal(spec) = a.storage() else { panic!("durable") };
        assert_eq!(spec.replay, ReplayMode::Engine);
        // Validation.
        assert!(!args(&["x:0"]).unwrap().cluster_mode());
        assert!(args(&["x:0", "--shards", "0"]).is_err());
        assert!(args(&["x:0", "--worker-budget", "0"]).is_err());
        assert!(args(&["x:0", "--shards", "2", "--threads", "4"]).is_err());
    }

    #[test]
    fn defaults_and_errors() {
        let a = args(&["0.0.0.0:0"]).unwrap();
        assert_eq!(a.strategy, "cascade");
        assert!(a.store.is_none() && a.program.is_none() && a.threads.is_none());
        assert!(a.slow_group_ms.is_none());
        assert!(args(&[]).is_err(), "address is required");
        assert!(args(&["a", "b"]).is_err(), "one address only");
        assert!(args(&["x", "--group"]).is_err(), "flag needs a value");
        assert!(args(&["x", "--frob"]).is_err(), "unknown flag");
        assert!(args(&["x", "--group", "0"]).is_err(), "zero group");
        assert!(args(&["x", "--group", "10", "--max-pending", "5"]).is_err());
        assert!(args(&["x", "--slow-group-ms", "soon"]).is_err(), "numeric only");
    }
}
