//! The uniform maintenance interface shared by all strategies.

use std::fmt;

use strata_datalog::error::{DatalogError, StratificationError};
use strata_datalog::{Database, Fact, Program, Rule};

use crate::stats::UpdateStats;

/// An update to a stratified database (paper §3: "given P' obtained by a
/// fact or rule insertion or deletion, compute its intended meaning M(P')
/// making use of the already existing model M(P)").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Update {
    /// Assert a ground fact (a unit clause).
    InsertFact(Fact),
    /// Retract an asserted fact. Only asserted facts may be deleted — the
    /// paper allows "deletions only for the relations defined in the
    /// extensional part".
    DeleteFact(Fact),
    /// Add a rule. The result must remain stratified.
    InsertRule(Rule),
    /// Remove a (structurally equal) rule.
    DeleteRule(Rule),
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::InsertFact(fact) => write!(f, "INSERT({fact})"),
            Update::DeleteFact(fact) => write!(f, "DELETE({fact})"),
            Update::InsertRule(rule) => write!(f, "INSERT({rule})"),
            Update::DeleteRule(rule) => write!(f, "DELETE({rule})"),
        }
    }
}

/// Why an update was rejected. Rejected updates leave the engine unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaintenanceError {
    /// Deleting a fact that is not asserted (it may be *derived*, but the
    /// paper's update language cannot delete derived facts).
    NotAsserted(Fact),
    /// Deleting a rule the program does not contain.
    UnknownRule(Rule),
    /// Inserting a rule would create recursion through negation. "We require
    /// that, in the case of a rule insertion, the resulting program remains
    /// stratified" (§4).
    WouldUnstratify(StratificationError),
    /// A language-level error (arity mismatch, unsafe rule, …).
    Datalog(DatalogError),
    /// The durable backing store failed (I/O error, corrupt file). Only
    /// raised by storage-backed engines ([`crate::durable::DurableEngine`]).
    Storage(String),
    /// The service worker applying this update panicked; the update's
    /// outcome is unknown (it may or may not have committed) and the
    /// request is safe to retry idempotently.
    Panicked(String),
    /// The service has degraded to read-only mode after persistent storage
    /// failures: snapshot reads and stats keep serving, updates are
    /// rejected until a write probe succeeds. Retryable.
    ReadOnly,
    /// The service was shut down before deciding this request.
    Shutdown,
}

impl fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintenanceError::NotAsserted(fact) => {
                write!(f, "cannot delete `{fact}`: not an asserted fact")
            }
            MaintenanceError::UnknownRule(rule) => {
                write!(f, "cannot delete `{rule}`: no such rule")
            }
            MaintenanceError::WouldUnstratify(e) => {
                write!(f, "rule insertion rejected: {e}")
            }
            MaintenanceError::Datalog(e) => write!(f, "{e}"),
            MaintenanceError::Storage(msg) => write!(f, "storage error: {msg}"),
            MaintenanceError::Panicked(msg) => {
                write!(f, "worker panicked while applying this request: {msg}")
            }
            MaintenanceError::ReadOnly => {
                write!(f, "service is in read-only mode (storage is failing); retry later")
            }
            MaintenanceError::Shutdown => {
                write!(f, "service shut down before deciding this request")
            }
        }
    }
}

impl MaintenanceError {
    /// A short, stable, machine-readable code for each failure class — the
    /// wire currency (`err code=<code> …`) clients branch on.
    pub fn code(&self) -> &'static str {
        match self {
            MaintenanceError::NotAsserted(_) => "not-asserted",
            MaintenanceError::UnknownRule(_) => "unknown-rule",
            MaintenanceError::WouldUnstratify(_) => "unstratified",
            MaintenanceError::Datalog(_) => "datalog",
            MaintenanceError::Storage(_) => "storage",
            MaintenanceError::Panicked(_) => "panicked",
            MaintenanceError::ReadOnly => "read-only",
            MaintenanceError::Shutdown => "shutdown",
        }
    }

    /// Whether a client may retry the identical request and hope for a
    /// different outcome. Semantic rejections (the paper's update-language
    /// errors) are deterministic — retrying them is pointless — while
    /// infrastructure failures are transient by design: the service heals
    /// workers, re-probes read-only mode, and another process may replace a
    /// shut-down one. Paired with the dedup window (`client`/`seq`), a
    /// retry of an *ambiguous* failure is also safe: an already-committed
    /// first attempt is replayed, never re-applied.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            MaintenanceError::Storage(_)
                | MaintenanceError::Panicked(_)
                | MaintenanceError::ReadOnly
                | MaintenanceError::Shutdown
        )
    }
}

impl std::error::Error for MaintenanceError {}

impl From<DatalogError> for MaintenanceError {
    fn from(e: DatalogError) -> Self {
        MaintenanceError::Datalog(e)
    }
}

/// The workspace's boxed-engine currency: every registry-built engine is
/// `Send`, so it can be handed to a service worker thread (the concurrent
/// ingest layer) or parked behind a shared `Mutex` for readers.
pub type EngineBox = Box<dyn MaintenanceEngine + Send>;

/// Durability counters reported by storage-backed engines
/// ([`crate::durable::DurableEngine`]); `None` for in-memory engines.
///
/// `recovered_*` describe what `open` replayed — they make restart metrics
/// honest: a session that recovered 10k transactions from the WAL did real
/// work before its first update, and `:stats`/service dashboards should say
/// so instead of starting from zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Committed WAL transactions replayed at open (after the snapshot).
    pub recovered_txns: u64,
    /// Individual updates carried by those replayed transactions.
    pub recovered_updates: u64,
    /// Whether open found (and truncated) a torn WAL tail — crash evidence.
    pub recovered_torn_tail: bool,
    /// Terminated transactions currently in the WAL. Under group commit
    /// this grows by one per *group*, not per update.
    pub wal_txns: u64,
    /// Bytes of terminated transactions currently in the WAL.
    pub wal_bytes: u64,
    /// Whether open found mid-file WAL corruption (damage *before* the
    /// committed suffix — not a torn tail) and quarantined the damaged
    /// image as `wal.corrupt-<seq>` beside the log. Committed transactions
    /// after the damage were lost; the quarantine file preserves them for
    /// manual recovery.
    pub recovered_quarantined: bool,
    /// Wall-clock milliseconds the last open spent recovering (snapshot
    /// chain rebuild + WAL replay + integrity checks).
    pub recovery_ms: u64,
    /// Incremental snapshots currently chained on the base snapshot; 0
    /// right after a full checkpoint or under full-snapshot mode.
    pub snapshot_chain_len: u64,
    /// Transaction sequence the snapshot chain covers through.
    pub snapshot_seq: u64,
    /// How the last open consumed the WAL suffix (engine-exact or bulk).
    pub replay_mode: crate::durable::ReplayMode,
}

/// A maintenance strategy: an explicit representation of `M(P)` kept
/// up to date under updates.
pub trait MaintenanceEngine {
    /// A short stable name for reports ("static", "cascade", …).
    fn name(&self) -> &'static str;

    /// The current program `P`.
    fn program(&self) -> &Program;

    /// The current model `M(P)`.
    fn model(&self) -> &Database;

    /// Approximate bytes of per-fact bookkeeping currently held.
    fn support_bytes(&self) -> usize;

    /// A symbolic dump of the per-fact support state, in canonical order.
    ///
    /// The default (engines with no per-fact bookkeeping: `recompute`,
    /// `static`) is empty. Dumps are the comparison currency of the
    /// persistence layer: a recovered engine must reproduce its
    /// predecessor's dump exactly, and snapshots embed the dump for audit.
    fn support_dump(&self) -> crate::support::SupportDump {
        crate::support::SupportDump::default()
    }

    /// Durability hook: if this engine is backed by a durable store,
    /// snapshot the current state and compact the log, returning
    /// `Ok(true)`. The default — a purely in-memory engine — does nothing
    /// and returns `Ok(false)`.
    fn checkpoint(&mut self) -> Result<bool, MaintenanceError> {
        Ok(false)
    }

    /// Policy-gated durability hook: checkpoint only if the engine's
    /// auto-compaction policy says one is due (WAL size, transaction
    /// count, or estimated recovery time over threshold), returning
    /// whether a checkpoint ran. The default — in-memory engines and
    /// durable engines with compaction off — does nothing and returns
    /// `Ok(false)`. The ingest service calls this after every
    /// successfully processed group.
    fn auto_checkpoint(&mut self) -> Result<bool, MaintenanceError> {
        Ok(false)
    }

    /// Durability counters: what recovery replayed at open and what the WAL
    /// holds now. `None` (the default) for purely in-memory engines.
    fn durability(&self) -> Option<DurabilityStats> {
        None
    }

    /// Parallelism hook: set the worker count the engine's saturation may
    /// use, returning `true` if the engine honors the knob. Results never
    /// depend on it — parallel saturation is bit-identical to sequential —
    /// so it is safe to change at any point in an engine's life. The
    /// default (engines with purely sequential evaluation) ignores it.
    fn set_parallelism(&mut self, parallelism: strata_datalog::Parallelism) -> bool {
        let _ = parallelism;
        false
    }

    /// Applies one update, returning what it did.
    fn apply(&mut self, update: &Update) -> Result<UpdateStats, MaintenanceError>;

    /// The batch-update transaction entry point: applies `updates` as one
    /// atomic group, returning aggregate statistics. On the first rejected
    /// update the already-applied prefix is rolled back (by inverse
    /// updates) and the error returned — a rejected batch leaves the
    /// engine exactly as it was.
    ///
    /// The default implementation is sequential; engines may override it
    /// with a single removal/saturation pass (see `CascadeEngine`, which
    /// walks the strata once for the whole batch).
    fn apply_all(&mut self, updates: &[Update]) -> Result<UpdateStats, MaintenanceError> {
        apply_all_sequential(self, updates)
    }

    /// Convenience: [`Update::InsertFact`].
    fn insert_fact(&mut self, fact: Fact) -> Result<UpdateStats, MaintenanceError> {
        self.apply(&Update::InsertFact(fact))
    }

    /// Convenience: [`Update::DeleteFact`].
    fn delete_fact(&mut self, fact: Fact) -> Result<UpdateStats, MaintenanceError> {
        self.apply(&Update::DeleteFact(fact))
    }

    /// Convenience: [`Update::InsertRule`].
    fn insert_rule(&mut self, rule: Rule) -> Result<UpdateStats, MaintenanceError> {
        self.apply(&Update::InsertRule(rule))
    }

    /// Convenience: [`Update::DeleteRule`].
    fn delete_rule(&mut self, rule: Rule) -> Result<UpdateStats, MaintenanceError> {
        self.apply(&Update::DeleteRule(rule))
    }
}

/// The sequential batch transaction: apply one by one, accumulating, and
/// roll back the applied prefix on the first rejection. This is the
/// [`MaintenanceEngine::apply_all`] default, shared as a free function so
/// overrides (e.g. the cascade's mixed-batch fallback) reuse it instead of
/// duplicating the rollback-trail logic.
pub(crate) fn apply_all_sequential<E: MaintenanceEngine + ?Sized>(
    engine: &mut E,
    updates: &[Update],
) -> Result<UpdateStats, MaintenanceError> {
    let mut total = UpdateStats::default();
    let mut applied: Vec<Update> = Vec::new();
    for u in updates {
        // Inserting an already-asserted fact is a no-op whose inverse
        // would wrongly retract a pre-existing fact: exclude from the
        // rollback trail.
        let noop = matches!(
            &normalize(u), Update::InsertFact(f) if engine.program().is_asserted(f)
        );
        match engine.apply(u) {
            Ok(stats) => {
                total.accumulate(&stats);
                if !noop {
                    applied.push(u.clone());
                }
            }
            Err(e) => {
                for done in applied.iter().rev() {
                    engine.apply(&invert(done)).expect("inverse of applied update");
                }
                return Err(e);
            }
        }
    }
    Ok(total)
}

impl fmt::Debug for dyn MaintenanceEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaintenanceEngine")
            .field("name", &self.name())
            .field("model_facts", &self.model().len())
            .finish_non_exhaustive()
    }
}

impl fmt::Debug for dyn MaintenanceEngine + Send {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaintenanceEngine")
            .field("name", &self.name())
            .field("model_facts", &self.model().len())
            .finish_non_exhaustive()
    }
}

/// The inverse of an update (prefix rollback for [`MaintenanceEngine::apply_all`]).
pub(crate) fn invert(update: &Update) -> Update {
    match update {
        Update::InsertFact(f) => Update::DeleteFact(f.clone()),
        Update::DeleteFact(f) => Update::InsertFact(f.clone()),
        Update::InsertRule(r) => Update::DeleteRule(r.clone()),
        Update::DeleteRule(r) => Update::InsertRule(r.clone()),
    }
}

// One generic impl covers `Box<dyn MaintenanceEngine>`, [`EngineBox`], and
// boxed concrete engines alike.
impl<E: MaintenanceEngine + ?Sized> MaintenanceEngine for Box<E> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn program(&self) -> &Program {
        self.as_ref().program()
    }

    fn model(&self) -> &Database {
        self.as_ref().model()
    }

    fn support_bytes(&self) -> usize {
        self.as_ref().support_bytes()
    }

    // Forwarded so a boxed engine reports its concrete dump / durability
    // behavior instead of the trait defaults.
    fn support_dump(&self) -> crate::support::SupportDump {
        self.as_ref().support_dump()
    }

    fn checkpoint(&mut self) -> Result<bool, MaintenanceError> {
        self.as_mut().checkpoint()
    }

    fn auto_checkpoint(&mut self) -> Result<bool, MaintenanceError> {
        self.as_mut().auto_checkpoint()
    }

    fn durability(&self) -> Option<DurabilityStats> {
        self.as_ref().durability()
    }

    fn set_parallelism(&mut self, parallelism: strata_datalog::Parallelism) -> bool {
        self.as_mut().set_parallelism(parallelism)
    }

    fn apply(&mut self, update: &Update) -> Result<UpdateStats, MaintenanceError> {
        self.as_mut().apply(update)
    }

    // Forwarded explicitly so a boxed engine keeps its concrete batch
    // override (e.g. the cascade's single stratum walk) instead of the
    // sequential default.
    fn apply_all(&mut self, updates: &[Update]) -> Result<UpdateStats, MaintenanceError> {
        self.as_mut().apply_all(updates)
    }
}

/// Rewrites rule updates whose rule is a ground unit clause into the
/// corresponding fact updates, so every engine treats `p(a).` uniformly.
/// Public because ingest front-ends (the `strata-service` coalescing queue)
/// must classify updates exactly the way the engines will.
pub fn normalize(update: &Update) -> Update {
    match update {
        Update::InsertRule(r) if r.is_fact_clause() => {
            Update::InsertFact(r.head.to_fact().expect("ground head"))
        }
        Update::DeleteRule(r) if r.is_fact_clause() => {
            Update::DeleteFact(r.head.to_fact().expect("ground head"))
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_updates() {
        let u = Update::InsertFact(Fact::parse("p(1)").unwrap());
        assert_eq!(u.to_string(), "INSERT(p(1))");
        let u = Update::DeleteRule(Rule::parse("p(X) :- q(X).").unwrap());
        assert_eq!(u.to_string(), "DELETE(p(X) :- q(X).)");
    }

    #[test]
    fn normalize_rewrites_fact_clauses() {
        let u = normalize(&Update::InsertRule(Rule::parse("p(1).").unwrap()));
        assert_eq!(u, Update::InsertFact(Fact::parse("p(1)").unwrap()));
        let u = normalize(&Update::DeleteRule(Rule::parse("p(1).").unwrap()));
        assert_eq!(u, Update::DeleteFact(Fact::parse("p(1)").unwrap()));
        let real_rule = Update::InsertRule(Rule::parse("p(X) :- q(X).").unwrap());
        assert_eq!(normalize(&real_rule), real_rule);
    }

    #[test]
    fn error_display() {
        let e = MaintenanceError::NotAsserted(Fact::parse("p(1)").unwrap());
        assert!(e.to_string().contains("not an asserted fact"));
        let e = MaintenanceError::UnknownRule(Rule::parse("p(X) :- q(X).").unwrap());
        assert!(e.to_string().contains("no such rule"));
    }
}
