//! Ground-truth verification: every engine's model must equal the standard
//! model recomputed from scratch.

use strata_datalog::model::StandardModel;
use strata_datalog::{Database, Program};

use crate::engine::MaintenanceEngine;

/// Recomputes `M(P)` from scratch.
///
/// # Panics
/// If the program is not stratified (engines keep it stratified).
pub fn ground_truth(program: &Program) -> Database {
    StandardModel::compute(program).expect("engine program must be stratified").into_db()
}

/// Checks an engine's maintained model against the recomputed ground truth,
/// returning a readable diff on mismatch.
pub fn check_against_ground_truth(engine: &dyn MaintenanceEngine) -> Result<(), String> {
    let truth = ground_truth(engine.program());
    let model = engine.model();
    if model == &truth {
        return Ok(());
    }
    let missing = truth.difference(model);
    let spurious = model.difference(&truth);
    Err(format!(
        "engine `{}` diverged from ground truth:\n  missing from model: {:?}\n  spurious in model: {:?}",
        engine.name(),
        missing,
        spurious
    ))
}

/// Panicking form of [`check_against_ground_truth`] for tests.
///
/// # Panics
/// If the engine's model differs from the recomputed standard model.
pub fn assert_matches_ground_truth(engine: &dyn MaintenanceEngine) {
    if let Err(msg) = check_against_ground_truth(engine) {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::RecomputeEngine;

    #[test]
    fn recompute_engine_trivially_matches() {
        let p = Program::parse("a(1). b(X) :- a(X).").unwrap();
        let e = RecomputeEngine::new(p).unwrap();
        assert!(check_against_ground_truth(&e).is_ok());
    }

    #[test]
    fn ground_truth_matches_standard_model() {
        let p = Program::parse("s(1). s(2). a(1). r(X) :- s(X), !a(X).").unwrap();
        let t = ground_truth(&p);
        assert!(t.contains_parsed("r(2)"));
        assert!(!t.contains_parsed("r(1)"));
    }
}
