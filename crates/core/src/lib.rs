//! # strata-core
//!
//! Incremental maintenance of stratified deductive databases, viewed as a
//! belief revision system — a full implementation of
//! *Apt & Pugin, PODS 1987*.
//!
//! A stratified database `P` has a standard model `M(P)`. Because rules may
//! contain negative hypotheses, maintenance is **non-monotonic**: inserting
//! a fact can force deletions from the model and vice versa. Every strategy
//! here keeps an *explicit representation* — the model, enriched with
//! per-fact bookkeeping (supports) — and updates it in place.
//!
//! ## The strategies
//!
//! | engine | name | paper § | support attached to each fact |
//! |--------|------|---------|-------------------------------|
//! | [`strategy::RecomputeEngine`] | `recompute` | baseline | none (recompute from scratch) |
//! | [`strategy::StaticEngine`] | `static` | 4.1 | none (uses static `Pos`/`Neg` relation sets) |
//! | [`strategy::DynamicSingleEngine`] | `dynamic-single` | 4.2 | one `Pos`/`Neg` pair with signed relations |
//! | [`strategy::DynamicMultiEngine`] | `dynamic-multi` | 4.3 | a set of support pairs, one per derivation |
//! | [`strategy::CascadeEngine`] | `cascade` | 5.1 | one-level rule pointers, strata cascaded |
//! | [`strategy::FactLevelEngine`] | `fact-level` | 5.2 | full fact-level supports (zero migration) |
//!
//! Two **parallel** variants ride on top: `cascade-parallel` and
//! `recompute-parallel` run the same engines with per-stratum saturation
//! sharded across a worker pool (`STRATA_THREADS`, see
//! [`strata_datalog::eval::par`]); their results are bit-identical to the
//! sequential strategies at any thread count.
//!
//! All of them implement [`engine::MaintenanceEngine`] and agree on the
//! resulting model (checked extensively by tests); they differ in how much
//! **migration** (erroneous removal followed by re-derivation) and
//! bookkeeping each update costs — the trade-off the paper studies.
//!
//! The **name** column is the key in [`registry::EngineRegistry`], the one
//! place strategy names map to constructors: runtime strategy selection
//! (the `strata` shell, the bench harness, the equivalence tests) builds
//! `Box<dyn MaintenanceEngine>` through the registry instead of matching on
//! names locally. Updates are applied one at a time with
//! [`engine::MaintenanceEngine::apply`] or as an atomic batch with
//! [`engine::MaintenanceEngine::apply_all`], whose rejection semantics
//! (reject leaves the engine unchanged) every engine shares.
//!
//! ## Quick example
//!
//! ```
//! use strata_core::engine::MaintenanceEngine;
//! use strata_core::strategy::CascadeEngine;
//! use strata_datalog::{Fact, Program};
//!
//! let program = Program::parse(
//!     "submitted(1). submitted(2). accepted(2).
//!      rejected(X) :- submitted(X), !accepted(X).",
//! ).unwrap();
//! let mut engine = CascadeEngine::new(program).unwrap();
//! assert!(engine.model().contains_parsed("rejected(1)"));
//!
//! // Inserting accepted(1) *deletes* rejected(1) from the model.
//! engine.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
//! assert!(!engine.model().contains_parsed("rejected(1)"));
//! ```

pub mod analysis;
pub mod constraints;
pub mod durable;
pub mod engine;
pub mod explain;
pub mod registry;
pub mod stats;
pub mod strategy;
pub mod support;
pub mod verify;

pub use durable::{DurableEngine, ReplayMode, SnapshotMode, StorageSpec, WalSpec};
pub use engine::{DurabilityStats, EngineBox, MaintenanceEngine, MaintenanceError, Update};
pub use registry::{EngineRegistry, RegistryError};
// Fault injection is defined next to the I/O it fails (`strata_store`);
// re-exported here so service-layer crates arm plans without a direct
// store dependency.
pub use stats::UpdateStats;
pub use strata_datalog::Parallelism;
pub use strata_store::{faults, FaultInjector, FaultPlan, FaultPoint, ShardManifest};
pub use support::SupportDump;
