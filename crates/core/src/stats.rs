//! Per-update statistics, centered on the paper's **migration** metric.
//!
//! "To compare solutions to the maintenance problem we concentrate on the
//! issue of a migration of facts — a phenomenon consisting of an erroneous
//! removal of a fact from the model. In such case, this fact has to be added
//! back to the model." (§3)

use rustc_hash::FxHashSet;
use strata_datalog::Fact;

/// What one update did to the model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Facts removed during the removal phase (including correct removals).
    pub removed: usize,
    /// Removed facts that re-entered the model — the paper's migration.
    pub migrated: usize,
    /// Facts in `M(P') \ M(P)` (net growth).
    pub net_added: usize,
    /// Facts in `M(P) \ M(P')` (net shrinkage).
    pub net_removed: usize,
    /// Rule instances enumerated / firings performed.
    pub derivations: u64,
    /// Approximate bytes of support bookkeeping after the update.
    pub support_bytes: usize,
}

impl UpdateStats {
    /// Folds another update's stats into an aggregate (support_bytes takes
    /// the last value since it is a level, not a flow).
    pub fn accumulate(&mut self, other: &UpdateStats) {
        self.removed += other.removed;
        self.migrated += other.migrated;
        self.net_added += other.net_added;
        self.net_removed += other.net_removed;
        self.derivations += other.derivations;
        self.support_bytes = other.support_bytes;
    }

    /// Builds stats from the removal and addition sets of an update.
    ///
    /// `removed` is the removal-phase output; `added` contains every fact
    /// inserted afterwards (re-derivations included). A fact in both sets
    /// migrated; a fact only in `removed` left the model for good; a fact
    /// only in `added` is new.
    pub fn from_sets(
        removed: &FxHashSet<Fact>,
        added: &FxHashSet<Fact>,
        derivations: u64,
        support_bytes: usize,
    ) -> UpdateStats {
        let migrated = removed.iter().filter(|f| added.contains(*f)).count();
        UpdateStats {
            removed: removed.len(),
            migrated,
            net_added: added.len() - migrated,
            net_removed: removed.len() - migrated,
            derivations,
            support_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(names: &[&str]) -> FxHashSet<Fact> {
        names.iter().map(|n| Fact::parse(n).unwrap()).collect()
    }

    #[test]
    fn from_sets_classifies_correctly() {
        let removed = facts(&["a(1)", "a(2)", "b(1)"]);
        let added = facts(&["a(1)", "c(9)"]);
        let s = UpdateStats::from_sets(&removed, &added, 10, 100);
        assert_eq!(s.removed, 3);
        assert_eq!(s.migrated, 1); // a(1) came back
        assert_eq!(s.net_removed, 2); // a(2), b(1) gone
        assert_eq!(s.net_added, 1); // c(9) new
        assert_eq!(s.derivations, 10);
        assert_eq!(s.support_bytes, 100);
    }

    #[test]
    fn empty_sets_give_zero_stats() {
        let s = UpdateStats::from_sets(&facts(&[]), &facts(&[]), 0, 0);
        assert_eq!(s, UpdateStats::default());
    }

    #[test]
    fn accumulate_sums_flows_and_keeps_last_level() {
        let mut total = UpdateStats::from_sets(&facts(&["a(1)"]), &facts(&[]), 5, 64);
        total.accumulate(&UpdateStats::from_sets(&facts(&[]), &facts(&["b(2)"]), 7, 32));
        assert_eq!(total.removed, 1);
        assert_eq!(total.net_added, 1);
        assert_eq!(total.derivations, 12);
        assert_eq!(total.support_bytes, 32);
    }
}
