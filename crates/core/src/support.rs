//! Support representations (the paper's §4–§5 bookkeeping).
//!
//! A *support* is the information attached to each fact of the model that
//! lets the removal phase of an update decide which facts might have lost
//! their derivations:
//!
//! * [`SupportPair`] — one `Pos`/`Neg` pair of relation sets with *signed*
//!   entries (§4.2). A signed entry `-r` in `Pos` (resp. `+r` in `Neg`)
//!   records a negative hypothesis `¬r` and is resolved against the static
//!   dependency sets at update time, which is what restores correctness
//!   after the paper's Example 2.
//! * [`MultiSupport`] — a set of support pairs, one per derivation (§4.3),
//!   analogous to an ATMS label. **Deviation from the paper:** the paper
//!   keeps the `Pos` and `Neg` sets of sets independently, but a failed
//!   derivation then leaves its *other-side* element behind, which can keep
//!   an underivable fact alive across a sequence of updates. We therefore
//!   pair each derivation's `Pos` and `Neg` parts, and a pair fails as a
//!   unit. For the single-relation updates the paper analyzes, the two
//!   formulations behave identically.
//! * [`RuleSupport`] — the "one level deep" form of §5.1: a set of pointers
//!   to the rules that ever fired the fact, plus an *asserted* flag for
//!   facts present as unit clauses.

use std::cmp::Ordering;

use strata_datalog::deps::StaticDeps;
use strata_datalog::graph::RelIndex;
use strata_datalog::{Fact, RelSet, RuleId};

use rustc_hash::FxHashSet;

/// A set of relations, some of which are *signed* (recorded under negation).
///
/// Which sign the `signed` part carries depends on the side it sits in: in a
/// `Pos` set the signed entries are `-r`, in a `Neg` set they are `+r`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SignedSet {
    /// Plain (unsigned) relation indices.
    pub plain: RelSet,
    /// Signed relation indices.
    pub signed: RelSet,
}

impl SignedSet {
    /// An empty set over a universe of `n` relations.
    pub fn empty(n: usize) -> SignedSet {
        SignedSet { plain: RelSet::empty(n), signed: RelSet::empty(n) }
    }

    /// Component-wise union.
    pub fn union_with(&mut self, other: &SignedSet) {
        self.plain.union_with(&other.plain);
        self.signed.union_with(&other.signed);
    }

    /// Component-wise subset test.
    pub fn is_subset(&self, other: &SignedSet) -> bool {
        self.plain.is_subset(&other.plain) && self.signed.is_subset(&other.signed)
    }

    /// Whether both components are empty.
    pub fn is_empty(&self) -> bool {
        self.plain.is_empty() && self.signed.is_empty()
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.plain.len() + self.signed.len()
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.plain.heap_bytes() + self.signed.heap_bytes()
    }

    fn canonical_cmp(&self, other: &SignedSet) -> Ordering {
        self.plain
            .canonical_cmp(&other.plain)
            .then_with(|| self.signed.canonical_cmp(&other.signed))
    }
}

/// One derivation's support: the `Pos` and `Neg` sets of §4.2/§4.3.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SupportPair {
    /// Relations this derivation depends on through an even number of
    /// negations (signed part: directly negated relations, recorded `-r`).
    pub pos: SignedSet,
    /// Relations through an odd number of negations (signed part: `+r`).
    pub neg: SignedSet,
}

impl SupportPair {
    /// The empty pair — the support of an *asserted* fact.
    pub fn empty(n: usize) -> SupportPair {
        SupportPair { pos: SignedSet::empty(n), neg: SignedSet::empty(n) }
    }

    /// Whether this is the assertion pair (both sides empty).
    pub fn is_assertion(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// Component-wise union (used when combining body-fact supports).
    pub fn union_with(&mut self, other: &SupportPair) {
        self.pos.union_with(&other.pos);
        self.neg.union_with(&other.neg);
    }

    /// The paper's "pairwise smaller": `self.pos ⊆ other.pos` and
    /// `self.neg ⊆ other.neg`.
    pub fn pairwise_subset(&self, other: &SupportPair) -> bool {
        self.pos.is_subset(&other.pos) && self.neg.is_subset(&other.neg)
    }

    /// Whether the resolved `Neg'` set contains relation `p`:
    /// `Neg' = {q ∈ Neg} ∪ ⋃_{+r ∈ Neg} (Pos(r) ∪ {r})` with `Pos(r)` the
    /// static dependency set. An *insertion* into `p` fails this derivation
    /// iff this holds (paper's Lemma 2 i).
    pub fn neg_resolved_contains(&self, p: u32, deps: &StaticDeps) -> bool {
        self.neg.plain.contains(p)
            || self.neg.signed.contains(p)
            || self.neg.signed.iter().any(|r| deps.pos(r).contains(p))
    }

    /// Whether the resolved `Pos'` set contains relation `p`:
    /// `Pos' = {q ∈ Pos} ∪ ⋃_{-r ∈ Pos} Neg(r)`. A *deletion* from `p`
    /// fails this derivation iff this holds (paper's Lemma 2 ii).
    pub fn pos_resolved_contains(&self, p: u32, deps: &StaticDeps) -> bool {
        self.pos.plain.contains(p) || self.pos.signed.iter().any(|r| deps.neg(r).contains(p))
    }

    /// Total entry count (used for smallest-first eviction).
    pub fn total_len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// A deterministic total order (size, then content).
    pub fn canonical_cmp(&self, other: &SupportPair) -> Ordering {
        self.total_len()
            .cmp(&other.total_len())
            .then_with(|| self.pos.canonical_cmp(&other.pos))
            .then_with(|| self.neg.canonical_cmp(&other.neg))
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.pos.heap_bytes() + self.neg.heap_bytes()
    }
}

/// Configuration for [`MultiSupport`] maintenance.
#[derive(Clone, Copy, Debug)]
pub struct MultiConfig {
    /// Drop pairs dominated (pairwise ⊇) by another pair. The paper: "we
    /// might remove an element A from Pos (or Neg) each time a proper subset
    /// of it has been added".
    pub minimize: bool,
    /// Hard cap on pairs per fact; the smallest (canonical order) survive.
    /// Exceeding derivations are forgotten, which can only cause extra
    /// migration, never an incorrect model.
    pub max_pairs: usize,
}

impl Default for MultiConfig {
    fn default() -> MultiConfig {
        MultiConfig { minimize: true, max_pairs: 64 }
    }
}

/// The §4.3 support: one pair per (remembered) derivation, plus an asserted
/// flag for the unit-clause "trivial derivation".
#[derive(Clone, Debug, Default)]
pub struct MultiSupport {
    /// Whether the fact is currently asserted as a unit clause.
    pub asserted: bool,
    pairs: Vec<SupportPair>,
}

impl MultiSupport {
    /// A support for a fact that is only asserted.
    pub fn asserted_only() -> MultiSupport {
        MultiSupport { asserted: true, pairs: Vec::new() }
    }

    /// A support with no information at all (dead unless pairs are added).
    pub fn new() -> MultiSupport {
        MultiSupport::default()
    }

    /// The remembered derivation pairs.
    pub fn pairs(&self) -> &[SupportPair] {
        &self.pairs
    }

    /// Whether the fact still has any grounds to stay in the model.
    pub fn is_alive(&self) -> bool {
        self.asserted || !self.pairs.is_empty()
    }

    /// Adds a derivation pair. Returns `true` iff the stored set actually
    /// changed — a pair that the cap would evict immediately is *rejected*
    /// up front, so repeated re-derivations of the same pairs converge
    /// (saturation loops until the sink reports no change).
    pub fn add_pair(&mut self, pair: SupportPair, cfg: &MultiConfig) -> bool {
        if cfg.minimize {
            if self.pairs.iter().any(|p| p.pairwise_subset(&pair)) {
                return false; // dominated (or equal): nothing new learned
            }
            let before = self.pairs.len();
            self.pairs.retain(|p| !pair.pairwise_subset(p));
            let removed_any = self.pairs.len() != before;
            if !removed_any
                && self.pairs.len() >= cfg.max_pairs
                && self.insertion_index(&pair) >= cfg.max_pairs
            {
                return false; // full, and the pair would sort past the cut
            }
            self.insert_sorted(pair);
            self.truncate(cfg.max_pairs);
            true
        } else {
            if self.pairs.contains(&pair) {
                return false;
            }
            if self.pairs.len() >= cfg.max_pairs && self.insertion_index(&pair) >= cfg.max_pairs {
                return false;
            }
            self.insert_sorted(pair);
            self.truncate(cfg.max_pairs);
            true
        }
    }

    fn insertion_index(&self, pair: &SupportPair) -> usize {
        self.pairs.binary_search_by(|p| p.canonical_cmp(pair)).unwrap_or_else(|i| i)
    }

    fn insert_sorted(&mut self, pair: SupportPair) {
        let idx = self.insertion_index(&pair);
        self.pairs.insert(idx, pair);
    }

    fn truncate(&mut self, cap: usize) {
        if self.pairs.len() > cap {
            self.pairs.truncate(cap);
        }
    }

    /// Removes every pair for which `fails` holds. Returns `true` if any
    /// pair was removed.
    pub fn remove_failed(&mut self, mut fails: impl FnMut(&SupportPair) -> bool) -> bool {
        let before = self.pairs.len();
        self.pairs.retain(|p| !fails(p));
        self.pairs.len() != before
    }

    /// Drops all derivation pairs (used on pessimistic rule deletion).
    pub fn clear_pairs(&mut self) {
        self.pairs.clear();
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.pairs.iter().map(SupportPair::heap_bytes).sum::<usize>()
            + self.pairs.capacity() * std::mem::size_of::<SupportPair>()
    }
}

/// The §5.1 support: rule pointers plus the asserted flag.
#[derive(Clone, Debug, Default)]
pub struct RuleSupport {
    /// Whether the fact is currently asserted as a unit clause.
    pub asserted: bool,
    /// Rules that fired this fact (and whose relevant relations have not
    /// changed since — failed pointers are removed eagerly).
    pub rules: FxHashSet<RuleId>,
}

impl RuleSupport {
    /// Support of an asserted fact.
    pub fn asserted_only() -> RuleSupport {
        RuleSupport { asserted: true, rules: FxHashSet::default() }
    }

    /// Support of a fact first derived by `rule`.
    pub fn from_rule(rule: RuleId) -> RuleSupport {
        let mut rules = FxHashSet::default();
        rules.insert(rule);
        RuleSupport { asserted: false, rules }
    }

    /// Whether the fact still has grounds to stay.
    pub fn is_alive(&self) -> bool {
        self.asserted || !self.rules.is_empty()
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.rules.capacity() * std::mem::size_of::<RuleId>() * 2
    }
}

/// A symbolic, engine-independent rendering of one [`SupportPair`]:
/// relation **names** instead of dense indices, sorted. Names survive
/// process restarts and index reassignment (interner ids and `RelIndex`
/// slots do not), so dumps are comparable across recovery boundaries.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct PairDump {
    /// Plain `Pos` relations.
    pub pos: Vec<String>,
    /// Signed (`-r`) `Pos` relations.
    pub pos_signed: Vec<String>,
    /// Plain `Neg` relations.
    pub neg: Vec<String>,
    /// Signed (`+r`) `Neg` relations.
    pub neg_signed: Vec<String>,
}

fn named(set: &RelSet, index: &RelIndex) -> Vec<String> {
    let mut v: Vec<String> = set.iter().map(|i| index.rel(i).as_str().to_string()).collect();
    v.sort();
    v
}

impl SupportPair {
    /// Renders the pair symbolically through the relation index.
    pub fn dump(&self, index: &RelIndex) -> PairDump {
        PairDump {
            pos: named(&self.pos.plain, index),
            pos_signed: named(&self.pos.signed, index),
            neg: named(&self.neg.plain, index),
            neg_signed: named(&self.neg.signed, index),
        }
    }
}

/// The symbolic support of one fact, across every representation the
/// engines use. Produced by [`crate::MaintenanceEngine::support_dump`];
/// serialized into snapshots and compared by the recovery tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FactSupport {
    /// §4.2: one signed support pair.
    Single(PairDump),
    /// §4.3: one pair per remembered derivation, plus the asserted flag.
    Multi {
        /// Whether the fact is asserted as a unit clause.
        asserted: bool,
        /// The derivation pairs, canonically sorted.
        pairs: Vec<PairDump>,
    },
    /// §5.1: rule-pointer supports, rendered as rule text.
    Rules {
        /// Whether the fact is asserted as a unit clause.
        asserted: bool,
        /// The supporting rules' display forms, sorted.
        rules: Vec<String>,
    },
    /// §5.2: fact-level witnesses (`pos` leaves / `neg` absences), rendered.
    Entries(Vec<WitnessDump>),
}

/// One rendered fact-level witness.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct WitnessDump {
    /// Display forms of the asserted leaves, sorted.
    pub pos: Vec<String>,
    /// Display forms of the required absences, sorted.
    pub neg: Vec<String>,
}

/// The full per-fact support state of an engine, in a canonical order.
///
/// Engines without per-fact bookkeeping (`recompute`, `static`) dump an
/// empty list — their belief state is fully determined by the program.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SupportDump {
    /// `(fact, support)` pairs, sorted by the process-independent fact
    /// order of [`strata_datalog::wire::fact_wire_cmp`].
    pub entries: Vec<(Fact, FactSupport)>,
}

impl SupportDump {
    /// Builds a dump from unsorted entries, establishing the canonical
    /// order.
    pub fn from_entries(mut entries: Vec<(Fact, FactSupport)>) -> SupportDump {
        entries.sort_by(|a, b| strata_datalog::wire::fact_wire_cmp(&a.0, &b.0));
        SupportDump { entries }
    }

    /// Number of facts carrying support information.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dump is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(n: usize, pos: &[u32], possig: &[u32], neg: &[u32], negsig: &[u32]) -> SupportPair {
        SupportPair {
            pos: SignedSet {
                plain: RelSet::from_indices(n, pos.iter().copied()),
                signed: RelSet::from_indices(n, possig.iter().copied()),
            },
            neg: SignedSet {
                plain: RelSet::from_indices(n, neg.iter().copied()),
                signed: RelSet::from_indices(n, negsig.iter().copied()),
            },
        }
    }

    #[test]
    fn assertion_pair_detection() {
        assert!(SupportPair::empty(8).is_assertion());
        assert!(!pair(8, &[1], &[], &[], &[]).is_assertion());
    }

    #[test]
    fn pairwise_subset_is_componentwise() {
        let small = pair(8, &[1], &[], &[2], &[]);
        let big = pair(8, &[1, 3], &[], &[2, 4], &[]);
        assert!(small.pairwise_subset(&big));
        assert!(!big.pairwise_subset(&small));
        // Smaller Pos but bigger Neg is NOT pairwise smaller.
        let mixed = pair(8, &[1], &[], &[2, 5], &[]);
        assert!(!mixed.pairwise_subset(&big));
        // Signed and plain entries are distinct elements.
        let signed = pair(8, &[], &[1], &[], &[]);
        let plain = pair(8, &[1], &[], &[], &[]);
        assert!(!signed.pairwise_subset(&plain));
    }

    #[test]
    fn union_accumulates_both_components() {
        let mut a = pair(8, &[1], &[2], &[3], &[4]);
        a.union_with(&pair(8, &[5], &[6], &[7], &[0]));
        assert_eq!(a, pair(8, &[1, 5], &[2, 6], &[3, 7], &[0, 4]));
    }

    #[test]
    fn multi_support_minimize_drops_dominated() {
        let cfg = MultiConfig::default();
        let mut m = MultiSupport::new();
        assert!(m.add_pair(pair(8, &[1, 2], &[], &[], &[]), &cfg));
        // A dominated (superset) pair is rejected.
        assert!(!m.add_pair(pair(8, &[1, 2, 3], &[], &[], &[]), &cfg));
        assert_eq!(m.pairs().len(), 1);
        // A dominating (subset) pair evicts the old one.
        assert!(m.add_pair(pair(8, &[1], &[], &[], &[]), &cfg));
        assert_eq!(m.pairs().len(), 1);
        assert_eq!(m.pairs()[0], pair(8, &[1], &[], &[], &[]));
        // An incomparable pair coexists.
        assert!(m.add_pair(pair(8, &[7], &[], &[], &[]), &cfg));
        assert_eq!(m.pairs().len(), 2);
    }

    #[test]
    fn multi_support_equal_pair_is_not_a_change() {
        let cfg = MultiConfig::default();
        let mut m = MultiSupport::new();
        let p = pair(8, &[1], &[], &[2], &[]);
        assert!(m.add_pair(p.clone(), &cfg));
        assert!(!m.add_pair(p, &cfg));
    }

    #[test]
    fn multi_support_cap_keeps_smallest_deterministically() {
        let cfg = MultiConfig { minimize: true, max_pairs: 2 };
        let mut m = MultiSupport::new();
        m.add_pair(pair(16, &[1, 2, 3], &[], &[], &[]), &cfg);
        m.add_pair(pair(16, &[4], &[], &[], &[]), &cfg);
        m.add_pair(pair(16, &[5, 6], &[], &[], &[]), &cfg);
        assert_eq!(m.pairs().len(), 2);
        // Smallest two survive: {4} and {5,6}.
        assert!(m.pairs().iter().any(|p| p.total_len() == 1));
        assert!(m.pairs().iter().all(|p| p.total_len() <= 2));
        // Re-offering the evicted pair converges (rejected as dominated or
        // re-evicted, but the stored set is unchanged either way).
        let before = m.pairs().to_vec();
        m.add_pair(pair(16, &[1, 2, 3], &[], &[], &[]), &cfg);
        assert_eq!(m.pairs(), &before[..]);
    }

    #[test]
    fn multi_support_liveness() {
        let mut m = MultiSupport::asserted_only();
        assert!(m.is_alive());
        m.asserted = false;
        assert!(!m.is_alive());
        m.add_pair(SupportPair::empty(4), &MultiConfig::default());
        assert!(m.is_alive());
        m.remove_failed(|_| true);
        assert!(!m.is_alive());
    }

    #[test]
    fn remove_failed_reports_change() {
        let cfg = MultiConfig::default();
        let mut m = MultiSupport::new();
        m.add_pair(pair(8, &[1], &[], &[], &[]), &cfg);
        m.add_pair(pair(8, &[2], &[], &[], &[]), &cfg);
        assert!(m.remove_failed(|p| p.pos.plain.contains(1)));
        assert_eq!(m.pairs().len(), 1);
        assert!(!m.remove_failed(|p| p.pos.plain.contains(1)));
    }

    #[test]
    fn rule_support_basics() {
        let mut s = RuleSupport::from_rule(fake_rule(3));
        assert!(s.is_alive());
        s.rules.clear();
        assert!(!s.is_alive());
        s.asserted = true;
        assert!(s.is_alive());
        let a = RuleSupport::asserted_only();
        assert!(a.is_alive() && a.rules.is_empty());
    }

    fn fake_rule(i: u32) -> RuleId {
        // RuleIds come from Programs; build one for testing.
        let mut p = strata_datalog::Program::new();
        for k in 0..=i {
            p.add_rule(strata_datalog::Rule::parse(&format!("r{k}(X) :- s{k}(X).")).unwrap())
                .unwrap();
        }
        p.rules().last().unwrap().0
    }

    #[test]
    fn pair_dump_is_symbolic_and_sorted() {
        use strata_datalog::{DepGraph, Program};
        let program = Program::parse("z(X) :- b(X), a(X), !c(X).").unwrap();
        let graph = DepGraph::build(&program);
        let ix = graph.rel_index();
        let n = graph.num_rels();
        let (a, b, c) = (ix.of("a".into()), ix.of("b".into()), ix.of("c".into()));
        let p = pair(n, &[b, a], &[], &[], &[c]);
        let d = p.dump(ix);
        assert_eq!(d.pos, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(d.neg_signed, vec!["c".to_string()]);
        assert!(d.pos_signed.is_empty() && d.neg.is_empty());
    }

    #[test]
    fn support_dump_canonical_order() {
        let d = SupportDump::from_entries(vec![
            (Fact::parse("zz(1)").unwrap(), FactSupport::Entries(vec![])),
            (Fact::parse("aa(2)").unwrap(), FactSupport::Entries(vec![])),
        ]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.entries[0].0, Fact::parse("aa(2)").unwrap());
    }

    /// Resolution against static dependencies: the paper's Example 2.
    #[test]
    fn signed_resolution_example2() {
        use strata_datalog::deps::StaticDeps;
        use strata_datalog::{DepGraph, Program};
        let program = Program::parse("p1 :- !p0. p2 :- !p1. p3 :- !p2.").unwrap();
        let graph = DepGraph::build(&program);
        let deps = StaticDeps::compute(&graph);
        let ix = graph.rel_index();
        let n = graph.num_rels();
        let (p0, p2) = (ix.of("p0".into()), ix.of("p2".into()));
        // Support of p3: Pos = {-p2}, Neg = {+p2}.
        let sup_p3 = pair(n, &[], &[p2], &[], &[p2]);
        // Insert p0: Neg' = Pos(p2) ∪ {p2} ∋ p0 (two negations below p2).
        assert!(sup_p3.neg_resolved_contains(p0, &deps));
        // Delete p0: Pos' = Neg(p2) = {p1}; p0 not in it.
        assert!(!sup_p3.pos_resolved_contains(p0, &deps));
        // Support of p2: Pos = {-p1}, Neg = {+p1}; delete p0 → Pos' = Neg(p1) ∋ p0.
        let p1 = ix.of("p1".into());
        let sup_p2 = pair(n, &[], &[p1], &[], &[p1]);
        assert!(sup_p2.pos_resolved_contains(p0, &deps));
        // The unsigned (naive) reading would miss both: plain sets are empty.
        assert!(!sup_p3.neg.plain.contains(p0));
        assert!(!sup_p2.pos.plain.contains(p0));
    }
}
