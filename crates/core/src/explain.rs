//! Why-provenance: explanations for facts of the model.
//!
//! A belief revision system should be able to answer *why* something is
//! believed. For a stratified database the answer is a well-founded proof:
//! `M(P)` is a **supported** model (paper §2, Theorem iii), so every fact is
//! asserted or the head of a rule instance whose body holds in the model —
//! and the instances can be chained without circularity.
//!
//! [`Explainer`] records, during a stratified naive saturation, the *first*
//! derivation found for every derived fact. Because a derivation is only
//! reported once its positive body facts are already present, the recorded
//! structure is acyclic and chaining it yields a finite proof tree.

use std::fmt;

use rustc_hash::FxHashMap;

use strata_datalog::eval::{Derivation, DerivationSink};
use strata_datalog::model::{construct_naive, StratKind, Strata};
use strata_datalog::{Database, DatalogError, Fact, Program, RuleId};

/// One recorded rule application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivationStep {
    /// The rule that fired.
    pub rule: RuleId,
    /// The rule, rendered.
    pub rule_text: String,
    /// The matched positive body facts.
    pub pos: Vec<Fact>,
    /// The ground negative body atoms (absent from the model).
    pub neg: Vec<Fact>,
}

/// A proof tree for a model fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Explanation {
    /// The fact is asserted in the program.
    Asserted(Fact),
    /// The fact is the head of a rule instance; premises are explained
    /// recursively, negative hypotheses are listed as absences.
    Derived {
        /// The explained fact.
        fact: Fact,
        /// The rule applied, rendered.
        rule_text: String,
        /// Explanations of the positive body facts.
        premises: Vec<Explanation>,
        /// Negative body atoms, true by their absence.
        absent: Vec<Fact>,
    },
}

impl Explanation {
    /// The explained fact.
    pub fn fact(&self) -> &Fact {
        match self {
            Explanation::Asserted(f) => f,
            Explanation::Derived { fact, .. } => fact,
        }
    }

    /// Depth of the proof tree (an asserted fact has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Explanation::Asserted(_) => 1,
            Explanation::Derived { premises, .. } => {
                1 + premises.iter().map(Explanation::depth).max().unwrap_or(0)
            }
        }
    }

    fn render(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            Explanation::Asserted(f) => {
                out.push_str(&format!("{pad}{f}  [asserted]\n"));
            }
            Explanation::Derived { fact, rule_text, premises, absent } => {
                out.push_str(&format!("{pad}{fact}  [by {rule_text}]\n"));
                for p in premises {
                    p.render(indent + 1, out);
                }
                for a in absent {
                    out.push_str(&format!("{}  not {a}  [absent]\n", "  ".repeat(indent + 1)));
                }
            }
        }
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(0, &mut s);
        f.write_str(s.trim_end())
    }
}

struct FirstDerivationSink<'a> {
    first: &'a mut FxHashMap<Fact, DerivationStep>,
    rule_texts: &'a FxHashMap<RuleId, String>,
}

impl DerivationSink for FirstDerivationSink<'_> {
    fn on_derivation(&mut self, d: &Derivation<'_>) -> bool {
        if !self.first.contains_key(d.head) {
            self.first.insert(
                d.head.clone(),
                DerivationStep {
                    rule: d.rule,
                    rule_text: self.rule_texts[&d.rule].clone(),
                    pos: d.pos_body.to_vec(),
                    neg: d.neg_body.to_vec(),
                },
            );
        }
        false
    }
}

/// Computes the model of a program while recording one well-founded
/// derivation per derived fact.
pub struct Explainer {
    model: Database,
    first: FxHashMap<Fact, DerivationStep>,
    asserted: Vec<Fact>,
}

impl Explainer {
    /// Saturates `program` and records first derivations.
    pub fn new(program: &Program) -> Result<Explainer, DatalogError> {
        let strata = Strata::build(program, StratKind::ByLevels)?;
        let rule_texts: FxHashMap<RuleId, String> =
            program.rules().map(|(id, r)| (id, r.to_string())).collect();
        let mut model = Database::new();
        let mut first = FxHashMap::default();
        let mut sink = FirstDerivationSink { first: &mut first, rule_texts: &rule_texts };
        construct_naive(&strata, &mut model, &mut sink);
        Ok(Explainer { model, first, asserted: program.facts().cloned().collect() })
    }

    /// The computed model.
    pub fn model(&self) -> &Database {
        &self.model
    }

    /// The recorded one-step reason for a derived fact, if any.
    pub fn why(&self, fact: &Fact) -> Option<&DerivationStep> {
        self.first.get(fact)
    }

    /// A full proof tree for a model fact; `None` if the fact is not in the
    /// model.
    pub fn explain(&self, fact: &Fact) -> Option<Explanation> {
        if !self.model.contains(fact) {
            return None;
        }
        Some(self.build(fact))
    }

    fn build(&self, fact: &Fact) -> Explanation {
        // Asserted facts take precedence: their "trivial derivation" is the
        // shortest proof (and the one the maintenance engines protect, cf.
        // Example 1's migrating asserted fact).
        if self.asserted.contains(fact) {
            return Explanation::Asserted(fact.clone());
        }
        let step =
            self.first.get(fact).expect("every non-asserted model fact has a recorded derivation");
        Explanation::Derived {
            fact: fact.clone(),
            rule_text: step.rule_text.clone(),
            premises: step.pos.iter().map(|p| self.build(p)).collect(),
            absent: step.neg.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explainer(src: &str) -> Explainer {
        Explainer::new(&Program::parse(src).unwrap()).unwrap()
    }

    fn fact(s: &str) -> Fact {
        Fact::parse(s).unwrap()
    }

    #[test]
    fn asserted_fact_is_its_own_explanation() {
        let e = explainer("a(1). p(X) :- a(X).");
        assert_eq!(e.explain(&fact("a(1)")), Some(Explanation::Asserted(fact("a(1)"))));
    }

    #[test]
    fn derived_fact_chains_to_assertions() {
        let e = explainer("a(1). p(X) :- a(X). q(X) :- p(X).");
        let ex = e.explain(&fact("q(1)")).unwrap();
        assert_eq!(ex.depth(), 3);
        let Explanation::Derived { premises, .. } = &ex else { panic!("derived") };
        assert_eq!(premises[0].fact(), &fact("p(1)"));
    }

    #[test]
    fn negative_hypotheses_listed_as_absent() {
        let e = explainer("s(1). rejected(X) :- s(X), !accepted(X).");
        let ex = e.explain(&fact("rejected(1)")).unwrap();
        let Explanation::Derived { absent, .. } = &ex else { panic!("derived") };
        assert_eq!(absent, &[fact("accepted(1)")]);
        let shown = ex.to_string();
        assert!(shown.contains("not accepted(1)"), "{shown}");
        assert!(shown.contains("[asserted]"), "{shown}");
    }

    #[test]
    fn non_model_fact_has_no_explanation() {
        let e = explainer("a(1). p(X) :- a(X).");
        assert_eq!(e.explain(&fact("p(2)")), None);
        assert!(e.why(&fact("p(2)")).is_none());
    }

    #[test]
    fn recursive_explanations_are_well_founded() {
        let e = explainer(
            "e(1, 2). e(2, 3). e(3, 4).
             p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).",
        );
        let ex = e.explain(&fact("p(1, 4)")).unwrap();
        // The proof must bottom out in edges: finite depth, at least 3 hops.
        assert!(ex.depth() >= 3 && ex.depth() <= 8, "depth {}", ex.depth());
    }

    #[test]
    fn cycle_with_external_seed_explains_through_seed() {
        // a and b are mutually derivable but grounded through c.
        let e = explainer("c(1). a(X) :- c(X). a(X) :- b(X). b(X) :- a(X).");
        let ex = e.explain(&fact("b(1)")).unwrap();
        let shown = ex.to_string();
        assert!(shown.contains("c(1)"), "proof must reach the seed: {shown}");
        assert!(ex.depth() <= 4);
    }

    #[test]
    fn why_reports_the_firing_rule() {
        let e = explainer("a(1). p(X) :- a(X).");
        let step = e.why(&fact("p(1)")).unwrap();
        assert_eq!(step.rule_text, "p(X) :- a(X).");
        assert_eq!(step.pos, vec![fact("a(1)")]);
        assert!(step.neg.is_empty());
    }

    #[test]
    fn model_accessor_exposes_saturation() {
        let e = explainer("a(1). p(X) :- a(X).");
        assert!(e.model().contains_parsed("p(1)"));
        assert_eq!(e.model().len(), 2);
    }

    #[test]
    fn asserted_idb_fact_preferred_over_derivation() {
        // accepted(2) is both asserted and derivable; the explanation is the
        // assertion (the trivial derivation).
        let e = explainer(
            "submitted(2). accepted(2).
             accepted(X) :- submitted(X), !rejected(X).",
        );
        assert_eq!(
            e.explain(&fact("accepted(2)")),
            Some(Explanation::Asserted(fact("accepted(2)")))
        );
    }
}
