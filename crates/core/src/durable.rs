//! Durable maintenance: [`DurableEngine`] makes any engine's belief state —
//! the model *and* the supports that justify it — survive restart.
//!
//! ## Write path
//!
//! Every [`MaintenanceEngine::apply_all`] batch becomes one WAL transaction,
//! logged **before** the in-memory engine sees it:
//!
//! ```text
//! BEGIN(seq)  DATA(update)*            buffered
//! … inner.apply_all(batch) …           in memory
//! COMMIT(seq) | ABORT(seq)             fsync — the batch's commit point
//! ```
//!
//! A batch the engine rejects writes `ABORT`, so the durable history
//! records the decision; a crash mid-batch leaves an unterminated
//! transaction that recovery discards — either way the store replays to the
//! exact pre-batch state, which is the `apply_all` contract ("reject leaves
//! the engine unchanged") extended to disk.
//!
//! ## Recovery
//!
//! `open` = reconstruct (program, model) from the snapshot **chain** — the
//! base snapshot plus any incremental delta patches (see
//! [`strata_store`]'s chain docs) — then consume the committed WAL suffix
//! per the configured [`ReplayMode`]:
//!
//! * [`ReplayMode::Engine`] (default): rebuild the engine from the chain's
//!   program, verify the rebuilt model against the chain's model, then
//!   replay each committed transaction through the engine's own decision
//!   path. Engines are deterministic functions of (program, update
//!   sequence), so replay reproduces the supports as well as the model.
//! * [`ReplayMode::Bulk`]: fold the suffix directly into the program and
//!   build the engine once — one saturation instead of per-transaction
//!   incremental maintenance; lands the canonical belief state.
//!
//! ## Checkpoints and compaction
//!
//! [`DurableEngine::compact`] writes a fresh full snapshot and empties the
//! WAL. It first **canonicalizes** the live engine — rebuilds it from its
//! current program — so that the live support state and the
//! recovered-from-snapshot support state are the same object by
//! construction. (Support sets are sound approximations either way; the
//! canonical form is what a fresh engine would believe, which is the
//! natural normal form for a belief state checkpoint.)
//!
//! Under [`SnapshotMode::Incremental`] a checkpoint instead appends a
//! *delta* — the relations that changed since the last checkpoint (stamp
//! diff on the model side, update-touched relations on the program side)
//! plus the full rule list — and falls back to a full snapshot once the
//! chain reaches its length bound. Delta checkpoints skip canonicalization
//! (the live engine is untouched); recovery still lands the canonical
//! state because it reconstructs the program and builds fresh.
//!
//! [`MaintenanceEngine::auto_checkpoint`] consults the configured
//! [`CompactionPolicy`] (WAL bytes / txn count / estimated replay time)
//! and checkpoints when a threshold is crossed — the service worker calls
//! it after every successfully processed group.

use std::fmt;
use std::path::{Path, PathBuf};

use rustc_hash::{FxHashMap, FxHashSet};
use strata_datalog::wire::{self, Reader, WireError};
use strata_datalog::{Database, Fact, Program, RelStamp, Rule, Symbol};
use strata_store::{CompactionPolicy, Durability, FaultInjector, Store};

use crate::engine::{DurabilityStats, EngineBox, MaintenanceEngine, MaintenanceError, Update};
use crate::stats::UpdateStats;
use crate::support::{FactSupport, PairDump, SupportDump, WitnessDump};

/// How recovery rebuilds the in-memory engine from the WAL suffix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplayMode {
    /// Replay every committed transaction through the engine's own
    /// decision path (`apply`/`apply_all`), exactly as it originally ran.
    /// Reproduces the live engine's support state byte for byte — the
    /// default, and the mode every exactness test pins.
    #[default]
    Engine,
    /// Fold the committed WAL suffix directly into the recovered
    /// *program* and build the engine once from the result. One
    /// saturation instead of per-transaction incremental maintenance —
    /// the production fast path (see `BENCH_recovery.json`). Lands the
    /// **canonical** belief state (what a fresh engine would believe):
    /// the model is always identical to engine replay; support sets are
    /// the canonical form, which for the cascade strategies can be a
    /// different (equally sound) approximation than the live engine's
    /// incremental one.
    Bulk,
}

impl ReplayMode {
    /// The name used in spec strings and on the stats wire line.
    pub fn name(self) -> &'static str {
        match self {
            ReplayMode::Engine => "engine",
            ReplayMode::Bulk => "bulk",
        }
    }
}

impl fmt::Display for ReplayMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ReplayMode {
    type Err = String;

    fn from_str(s: &str) -> Result<ReplayMode, String> {
        match s {
            "engine" => Ok(ReplayMode::Engine),
            "bulk" => Ok(ReplayMode::Bulk),
            other => Err(format!("invalid replay mode `{other}` (expected `engine` or `bulk`)")),
        }
    }
}

/// Default chain-length bound of [`SnapshotMode::Incremental`]: the
/// `delta` spelling without an explicit bound.
pub const DEFAULT_MAX_CHAIN: u32 = 8;

/// What a checkpoint writes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Every checkpoint writes a full snapshot (the default). The live
    /// engine is canonicalized first, so post-checkpoint live state is
    /// byte-identical to recovered state.
    #[default]
    Full,
    /// Checkpoints append a delta to the snapshot chain — only relations
    /// that changed since the previous link (per-relation [`RelStamp`]s
    /// plus the update-touched set) are carried. Once the chain reaches
    /// `max_chain` links, the next checkpoint falls back to a full
    /// snapshot and resets the chain. Incremental checkpoints do **not**
    /// canonicalize the live engine (a rebuild would invalidate every
    /// stamp baseline).
    Incremental {
        /// Chain links after which the next checkpoint goes full.
        max_chain: u32,
    },
}

/// The durable half of a [`StorageSpec`]: where the store lives and every
/// knob of its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalSpec {
    /// The store directory (WAL + snapshot chain).
    pub dir: PathBuf,
    /// Whether commits fsync ([`Durability::Fsync`], the default) or
    /// leave flushing to the OS.
    pub fsync: Durability,
    /// When to checkpoint automatically (disabled by default; evaluated
    /// via [`MaintenanceEngine::auto_checkpoint`]).
    pub compaction: CompactionPolicy,
    /// What a checkpoint writes (full snapshots by default).
    pub snapshot: SnapshotMode,
    /// How recovery replays the WAL suffix (engine-exact by default).
    pub replay: ReplayMode,
}

impl WalSpec {
    /// A durable spec at `dir` with every knob at its default.
    pub fn new(dir: impl Into<PathBuf>) -> WalSpec {
        WalSpec {
            dir: dir.into(),
            fsync: Durability::Fsync,
            compaction: CompactionPolicy::disabled(),
            snapshot: SnapshotMode::Full,
            replay: ReplayMode::Engine,
        }
    }
}

/// Where a registry-built engine keeps its state — the typed storage API.
///
/// Build with [`StorageSpec::mem`] or [`StorageSpec::wal`] plus the
/// builder knobs; parse CLI strings through `FromStr`:
///
/// ```
/// use strata_core::durable::{ReplayMode, SnapshotMode, StorageSpec};
/// use strata_store::CompactionPolicy;
///
/// let spec = StorageSpec::wal("/tmp/db")
///     .compaction(CompactionPolicy::default_auto())
///     .snapshot_mode(SnapshotMode::Incremental { max_chain: 8 })
///     .replay(ReplayMode::Bulk);
/// let parsed: StorageSpec =
///     "wal:/tmp/db;compact=auto;snapshot=delta:8;replay=bulk".parse().unwrap();
/// assert_eq!(parsed, spec);
/// ```
///
/// ## String form
///
/// ```text
/// spec   ::= "mem" | "wal:" dir (";" option)*
/// option ::= "fsync="    ("always" | "buffered")
///          | "compact="  policy            (see strata_store::CompactionPolicy)
///          | "snapshot=" ("full" | "delta" [":" max_chain])
///          | "replay="   ("engine" | "bulk")
/// ```
///
/// The bare legacy forms `mem` and `wal:<dir>` still parse (as
/// all-defaults specs); new code should build specs with the typed
/// constructors instead of strings.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum StorageSpec {
    /// Purely in-memory (the default): state dies with the process.
    #[default]
    Mem,
    /// Durable: WAL + snapshot chain per the spec.
    Wal(WalSpec),
}

impl StorageSpec {
    /// The in-memory spec.
    pub fn mem() -> StorageSpec {
        StorageSpec::Mem
    }

    /// A durable spec at `dir` with default knobs (fsync on commit, full
    /// snapshots, engine-exact replay, no auto-compaction).
    pub fn wal(dir: impl Into<PathBuf>) -> StorageSpec {
        StorageSpec::Wal(WalSpec::new(dir))
    }

    /// Sets the auto-compaction policy (no-op on `Mem`).
    pub fn compaction(self, policy: CompactionPolicy) -> StorageSpec {
        self.map_wal(|w| w.compaction = policy)
    }

    /// Sets the checkpoint mode (no-op on `Mem`).
    pub fn snapshot_mode(self, mode: SnapshotMode) -> StorageSpec {
        self.map_wal(|w| w.snapshot = mode)
    }

    /// Sets the commit durability (no-op on `Mem`).
    pub fn fsync(self, durability: Durability) -> StorageSpec {
        self.map_wal(|w| w.fsync = durability)
    }

    /// Sets the recovery replay mode (no-op on `Mem`).
    pub fn replay(self, mode: ReplayMode) -> StorageSpec {
        self.map_wal(|w| w.replay = mode)
    }

    fn map_wal(mut self, f: impl FnOnce(&mut WalSpec)) -> StorageSpec {
        if let StorageSpec::Wal(w) = &mut self {
            f(w);
        }
        self
    }

    /// Whether this spec persists anything.
    pub fn is_durable(&self) -> bool {
        matches!(self, StorageSpec::Wal(_))
    }

    /// The store directory, if durable.
    pub fn wal_dir(&self) -> Option<&Path> {
        match self {
            StorageSpec::Mem => None,
            StorageSpec::Wal(w) => Some(&w.dir),
        }
    }

    /// Parses the string form.
    #[deprecated(
        note = "build specs with StorageSpec::mem()/StorageSpec::wal(dir) and the builder \
                knobs; for CLI strings, use FromStr (`s.parse::<StorageSpec>()`)"
    )]
    pub fn parse(s: &str) -> Result<StorageSpec, String> {
        s.parse()
    }
}

impl std::str::FromStr for SnapshotMode {
    type Err = String;

    fn from_str(s: &str) -> Result<SnapshotMode, String> {
        parse_snapshot_mode(s)
    }
}

fn parse_snapshot_mode(s: &str) -> Result<SnapshotMode, String> {
    if s == "full" {
        return Ok(SnapshotMode::Full);
    }
    let Some(rest) = s.strip_prefix("delta") else {
        return Err(format!("invalid snapshot mode `{s}` (expected `full` or `delta[:<max>]`)"));
    };
    let max_chain = match rest.strip_prefix(':') {
        None if rest.is_empty() => DEFAULT_MAX_CHAIN,
        Some(n) => match n.parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => return Err(format!("invalid chain bound `{n}` (expected a positive integer)")),
        },
        _ => return Err(format!("invalid snapshot mode `{s}`")),
    };
    Ok(SnapshotMode::Incremental { max_chain })
}

impl std::str::FromStr for StorageSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<StorageSpec, String> {
        if s == "mem" {
            return Ok(StorageSpec::Mem);
        }
        let Some(rest) = s.strip_prefix("wal:") else {
            return Err(format!(
                "invalid storage spec `{s}` (expected `mem` or `wal:<dir>[;option]*`)"
            ));
        };
        let mut parts = rest.split(';');
        let dir = parts.next().unwrap_or_default();
        if dir.is_empty() {
            return Err(format!("invalid storage spec `{s}` (empty directory)"));
        }
        let mut wal = WalSpec::new(dir);
        for opt in parts {
            let (key, value) = opt
                .split_once('=')
                .ok_or_else(|| format!("invalid storage option `{opt}` (expected key=value)"))?;
            match key {
                "fsync" => {
                    wal.fsync = match value {
                        "always" => Durability::Fsync,
                        "buffered" => Durability::Buffered,
                        other => {
                            return Err(format!(
                                "invalid fsync policy `{other}` (expected `always` or `buffered`)"
                            ))
                        }
                    }
                }
                "compact" => {
                    wal.compaction = value.parse::<CompactionPolicy>().map_err(|e| e.to_string())?
                }
                "snapshot" => wal.snapshot = parse_snapshot_mode(value)?,
                "replay" => {
                    wal.replay = match value {
                        "engine" => ReplayMode::Engine,
                        "bulk" => ReplayMode::Bulk,
                        other => {
                            return Err(format!(
                                "invalid replay mode `{other}` (expected `engine` or `bulk`)"
                            ))
                        }
                    }
                }
                other => {
                    return Err(format!(
                        "unknown storage option `{other}` (fsync | compact | snapshot | replay)"
                    ))
                }
            }
        }
        Ok(StorageSpec::Wal(wal))
    }
}

impl fmt::Display for StorageSpec {
    /// The canonical string form: defaults are omitted, so the legacy
    /// spellings (`mem`, `wal:<dir>`) come back out for all-default
    /// specs, and `parse(display(x)) == x` always.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let StorageSpec::Wal(w) = self else {
            return f.write_str("mem");
        };
        write!(f, "wal:{}", w.dir.display())?;
        if w.fsync == Durability::Buffered {
            f.write_str(";fsync=buffered")?;
        }
        if w.compaction.is_enabled() {
            write!(f, ";compact={}", w.compaction)?;
        }
        if let SnapshotMode::Incremental { max_chain } = w.snapshot {
            write!(f, ";snapshot=delta:{max_chain}")?;
        }
        if w.replay == ReplayMode::Bulk {
            f.write_str(";replay=bulk")?;
        }
        Ok(())
    }
}

fn storage_err(e: impl fmt::Display) -> MaintenanceError {
    MaintenanceError::Storage(e.to_string())
}

// ---------------------------------------------------------------------------
// Update codec (WAL data records).
// ---------------------------------------------------------------------------

/// Transaction kind byte: logged by [`MaintenanceEngine::apply`].
const TXN_APPLY: u8 = 0;
/// Transaction kind byte: logged by [`MaintenanceEngine::apply_all`].
const TXN_APPLY_ALL: u8 = 1;

const UPD_INSERT_FACT: u8 = 0;
const UPD_DELETE_FACT: u8 = 1;
const UPD_INSERT_RULE: u8 = 2;
const UPD_DELETE_RULE: u8 = 3;

/// Encodes one update as a WAL data record. Facts are structural; rules go
/// through their display form, which round-trips by construction.
pub fn encode_update(u: &Update) -> Vec<u8> {
    let mut buf = Vec::new();
    match u {
        Update::InsertFact(f) => {
            buf.push(UPD_INSERT_FACT);
            wire::put_fact(&mut buf, f);
        }
        Update::DeleteFact(f) => {
            buf.push(UPD_DELETE_FACT);
            wire::put_fact(&mut buf, f);
        }
        Update::InsertRule(r) => {
            buf.push(UPD_INSERT_RULE);
            wire::put_str(&mut buf, &r.to_string());
        }
        Update::DeleteRule(r) => {
            buf.push(UPD_DELETE_RULE);
            wire::put_str(&mut buf, &r.to_string());
        }
    }
    buf
}

/// Decodes one WAL data record.
pub fn decode_update(bytes: &[u8]) -> Result<Update, MaintenanceError> {
    let mut r = Reader::new(bytes);
    let tag = r.get_u8().map_err(storage_err)?;
    let update = match tag {
        UPD_INSERT_FACT => Update::InsertFact(r.get_fact().map_err(storage_err)?),
        UPD_DELETE_FACT => Update::DeleteFact(r.get_fact().map_err(storage_err)?),
        UPD_INSERT_RULE | UPD_DELETE_RULE => {
            let text = r.get_str().map_err(storage_err)?;
            let rule = Rule::parse(&text)
                .map_err(|e| storage_err(format!("unparseable rule in WAL: {e}")))?;
            if tag == UPD_INSERT_RULE {
                Update::InsertRule(rule)
            } else {
                Update::DeleteRule(rule)
            }
        }
        other => return Err(storage_err(format!("unknown update tag {other}"))),
    };
    if !r.is_at_end() {
        return Err(storage_err("trailing bytes in update record"));
    }
    Ok(update)
}

// ---------------------------------------------------------------------------
// Snapshot payload codec: program + model + support dump.
// ---------------------------------------------------------------------------

fn put_program(buf: &mut Vec<u8>, program: &Program) {
    let mut facts: Vec<Fact> = program.facts().cloned().collect();
    facts.sort_by(wire::fact_wire_cmp);
    wire::put_u32(buf, facts.len() as u32);
    for f in &facts {
        wire::put_fact(buf, f);
    }
    // Rules in slot order: recovery re-adds them in sequence, so rule ids
    // come out dense and deterministic.
    let rules: Vec<String> = program.rules().map(|(_, r)| r.to_string()).collect();
    wire::put_u32(buf, rules.len() as u32);
    for r in &rules {
        wire::put_str(buf, r);
    }
}

fn get_program(r: &mut Reader<'_>) -> Result<Program, MaintenanceError> {
    let mut program = Program::new();
    let nfacts = r.get_u32().map_err(storage_err)?;
    for _ in 0..nfacts {
        let f = r.get_fact().map_err(storage_err)?;
        program.assert_fact(f).map_err(|e| storage_err(format!("snapshot fact: {e}")))?;
    }
    let nrules = r.get_u32().map_err(storage_err)?;
    for _ in 0..nrules {
        let text = r.get_str().map_err(storage_err)?;
        let rule = Rule::parse(&text)
            .map_err(|e| storage_err(format!("unparseable rule in snapshot: {e}")))?;
        program.add_rule(rule).map_err(|e| storage_err(format!("snapshot rule: {e}")))?;
    }
    Ok(program)
}

fn put_string_list(buf: &mut Vec<u8>, items: &[String]) {
    wire::put_u32(buf, items.len() as u32);
    for s in items {
        wire::put_str(buf, s);
    }
}

fn get_string_list(r: &mut Reader<'_>) -> Result<Vec<String>, WireError> {
    let n = r.get_u32()?;
    (0..n).map(|_| r.get_str()).collect()
}

fn put_pair_dump(buf: &mut Vec<u8>, p: &PairDump) {
    put_string_list(buf, &p.pos);
    put_string_list(buf, &p.pos_signed);
    put_string_list(buf, &p.neg);
    put_string_list(buf, &p.neg_signed);
}

fn get_pair_dump(r: &mut Reader<'_>) -> Result<PairDump, WireError> {
    Ok(PairDump {
        pos: get_string_list(r)?,
        pos_signed: get_string_list(r)?,
        neg: get_string_list(r)?,
        neg_signed: get_string_list(r)?,
    })
}

const SUP_SINGLE: u8 = 0;
const SUP_MULTI: u8 = 1;
const SUP_RULES: u8 = 2;
const SUP_ENTRIES: u8 = 3;

fn put_support_dump(buf: &mut Vec<u8>, dump: &SupportDump) {
    wire::put_u32(buf, dump.entries.len() as u32);
    for (fact, support) in &dump.entries {
        wire::put_fact(buf, fact);
        match support {
            FactSupport::Single(p) => {
                buf.push(SUP_SINGLE);
                put_pair_dump(buf, p);
            }
            FactSupport::Multi { asserted, pairs } => {
                buf.push(SUP_MULTI);
                buf.push(u8::from(*asserted));
                wire::put_u32(buf, pairs.len() as u32);
                for p in pairs {
                    put_pair_dump(buf, p);
                }
            }
            FactSupport::Rules { asserted, rules } => {
                buf.push(SUP_RULES);
                buf.push(u8::from(*asserted));
                put_string_list(buf, rules);
            }
            FactSupport::Entries(entries) => {
                buf.push(SUP_ENTRIES);
                wire::put_u32(buf, entries.len() as u32);
                for e in entries {
                    put_string_list(buf, &e.pos);
                    put_string_list(buf, &e.neg);
                }
            }
        }
    }
}

fn get_support_dump(r: &mut Reader<'_>) -> Result<SupportDump, WireError> {
    let n = r.get_u32()?;
    let mut entries = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let fact = r.get_fact()?;
        let support = match r.get_u8()? {
            SUP_SINGLE => FactSupport::Single(get_pair_dump(r)?),
            SUP_MULTI => {
                let asserted = r.get_u8()? != 0;
                let k = r.get_u32()?;
                let pairs = (0..k).map(|_| get_pair_dump(r)).collect::<Result<_, _>>()?;
                FactSupport::Multi { asserted, pairs }
            }
            SUP_RULES => {
                let asserted = r.get_u8()? != 0;
                FactSupport::Rules { asserted, rules: get_string_list(r)? }
            }
            SUP_ENTRIES => {
                let k = r.get_u32()?;
                let entries = (0..k)
                    .map(|_| Ok(WitnessDump { pos: get_string_list(r)?, neg: get_string_list(r)? }))
                    .collect::<Result<_, WireError>>()?;
                FactSupport::Entries(entries)
            }
            _ => {
                return Err(WireError { at: r.pos(), msg: "unknown support tag" });
            }
        };
        entries.push((fact, support));
    }
    Ok(SupportDump { entries })
}

/// The decoded contents of a snapshot payload.
pub struct SnapshotState {
    /// The program (asserted EDB + rules) — the authoritative recovery base.
    pub program: Program,
    /// The model at snapshot time, used as a recovery integrity check.
    pub model: Database,
    /// The per-fact support dump (audit; recovery rebuilds supports).
    pub supports: SupportDump,
}

/// Encodes the full belief state of `engine` into a snapshot payload.
pub fn encode_state(engine: &dyn MaintenanceEngine) -> Vec<u8> {
    let mut buf = Vec::new();
    put_program(&mut buf, engine.program());
    wire::put_store(&mut buf, engine.model());
    put_support_dump(&mut buf, &engine.support_dump());
    buf
}

/// Decodes a snapshot payload.
pub fn decode_state(bytes: &[u8]) -> Result<SnapshotState, MaintenanceError> {
    let mut r = Reader::new(bytes);
    let program = get_program(&mut r)?;
    let mut model = Database::new();
    r.get_store(&mut model).map_err(storage_err)?;
    let supports = get_support_dump(&mut r).map_err(storage_err)?;
    if !r.is_at_end() {
        return Err(storage_err("trailing bytes in snapshot payload"));
    }
    Ok(SnapshotState { program, model, supports })
}

// ---------------------------------------------------------------------------
// Delta snapshot payload codec: per-relation patches on the chain state.
// ---------------------------------------------------------------------------

/// The decoded contents of one delta-snapshot payload: a patch that
/// transforms the previous chain state into the next.
///
/// Each patch section carries **full replacements** for the relations that
/// changed since the previous link (an empty fact list removes the
/// relation's contents); unchanged relations are simply absent, which is
/// the whole saving. Rules are always carried in full — they are few, and
/// rule-set changes don't map onto per-relation stamps. Deltas carry **no
/// support section**: recovery rebuilds supports from the program (the
/// dump in full snapshots is an audit artifact, not a recovery input).
pub struct DeltaState {
    /// Per-relation replacement of the program's asserted facts.
    pub program_rels: Vec<(Symbol, Vec<Fact>)>,
    /// The complete rule list after this delta, in slot order.
    pub rules: Vec<String>,
    /// Per-relation replacement of the model's extension.
    pub model_rels: Vec<(Symbol, Vec<Fact>)>,
}

fn put_rel_sections(buf: &mut Vec<u8>, sections: &[(Symbol, Vec<Fact>)]) {
    wire::put_u32(buf, sections.len() as u32);
    for (rel, facts) in sections {
        wire::put_str(buf, rel.as_str());
        wire::put_u32(buf, facts.len() as u32);
        for f in facts {
            wire::put_fact(buf, f);
        }
    }
}

fn get_rel_sections(r: &mut Reader<'_>) -> Result<Vec<(Symbol, Vec<Fact>)>, MaintenanceError> {
    let n = r.get_u32().map_err(storage_err)?;
    let mut sections = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let rel = Symbol::new(&r.get_str().map_err(storage_err)?);
        let k = r.get_u32().map_err(storage_err)?;
        let facts =
            (0..k).map(|_| r.get_fact().map_err(storage_err)).collect::<Result<Vec<_>, _>>()?;
        sections.push((rel, facts));
    }
    Ok(sections)
}

/// Encodes a delta payload.
pub fn encode_delta(delta: &DeltaState) -> Vec<u8> {
    let mut buf = Vec::new();
    put_rel_sections(&mut buf, &delta.program_rels);
    put_string_list(&mut buf, &delta.rules);
    put_rel_sections(&mut buf, &delta.model_rels);
    buf
}

/// Decodes a delta payload.
pub fn decode_delta(bytes: &[u8]) -> Result<DeltaState, MaintenanceError> {
    let mut r = Reader::new(bytes);
    let program_rels = get_rel_sections(&mut r)?;
    let rules = get_string_list(&mut r).map_err(storage_err)?;
    let model_rels = get_rel_sections(&mut r)?;
    if !r.is_at_end() {
        return Err(storage_err("trailing bytes in delta payload"));
    }
    Ok(DeltaState { program_rels, rules, model_rels })
}

/// Applies a delta's program patch: each carried relation's asserted facts
/// are replaced wholesale, then the rule list is replaced.
fn apply_delta_to_program(
    program: &mut Program,
    delta: &DeltaState,
) -> Result<(), MaintenanceError> {
    for (rel, facts) in &delta.program_rels {
        let old: Vec<Fact> = program.facts().filter(|f| f.rel == *rel).cloned().collect();
        for f in &old {
            program.retract_fact(f);
        }
        for f in facts {
            program
                .assert_fact(f.clone())
                .map_err(|e| storage_err(format!("delta program fact: {e}")))?;
        }
    }
    let old_rules: Vec<_> = program.rules().map(|(id, _)| id).collect();
    for id in old_rules {
        program.remove_rule(id);
    }
    for text in &delta.rules {
        let rule = Rule::parse(text)
            .map_err(|e| storage_err(format!("unparseable rule in delta: {e}")))?;
        program.add_rule(rule).map_err(|e| storage_err(format!("delta rule: {e}")))?;
    }
    Ok(())
}

/// Applies a delta's model patch: each carried relation's extension is
/// replaced wholesale.
fn apply_delta_to_model(model: &mut Database, delta: &DeltaState) {
    for (rel, facts) in &delta.model_rels {
        let old: Vec<Fact> = model.facts_of(*rel).collect();
        for f in &old {
            model.remove(f);
        }
        for f in facts {
            model.insert(f.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// The durable engine.
// ---------------------------------------------------------------------------

/// A shared engine constructor — the one alias for it in the workspace
/// (re-exported by `registry`). `Arc` rather than `Box` so the registry can
/// hand a clone to a [`DurableEngine`], which needs the constructor again
/// at recovery and compaction time. Constructors produce [`EngineBox`]
/// (`Send`) engines so registry-built engines can be moved onto service
/// worker threads.
pub type EngineCtor =
    std::sync::Arc<dyn Fn(Program) -> Result<EngineBox, MaintenanceError> + Send + Sync>;

/// A [`MaintenanceEngine`] whose belief state survives restart.
///
/// Wraps any engine built by `ctor`; all reads and the maintenance
/// semantics are the inner engine's. See the module docs for the write,
/// recovery, and compaction protocols.
pub struct DurableEngine {
    strategy: String,
    ctor: EngineCtor,
    inner: EngineBox,
    store: Store,
    compaction: CompactionPolicy,
    snapshot_mode: SnapshotMode,
    replay_mode: ReplayMode,
    /// What `open` replayed, frozen for the engine's lifetime — restart
    /// metrics (`:stats`, the ingest service's `stats` verb) report it.
    recovered_txns: u64,
    recovered_updates: u64,
    recovered_torn_tail: bool,
    recovered_quarantined: bool,
    /// Wall-clock milliseconds `open` spent recovering, frozen.
    recovery_ms: u64,
    /// Replay throughput (bytes of WAL records per ms), measured at open
    /// when the replayed suffix was big enough to time, else a
    /// conservative default. Feeds the recovery-time estimate the
    /// auto-compaction policy thresholds on.
    replay_bytes_per_ms: u64,
    /// Per-relation model stamps recorded at the last checkpoint — the
    /// stamp side of delta change detection.
    last_stamps: FxHashMap<Symbol, RelStamp>,
    /// Relations named by fact updates since the last checkpoint — the
    /// program side of delta change detection. Stamps alone are not
    /// enough: asserting an already-derived fact changes the program
    /// without moving the model.
    dirty_rels: FxHashSet<Symbol>,
}

/// Replay throughput assumed before any measurement (conservative: the
/// engine-mode rate observed on the e15 workload).
const DEFAULT_REPLAY_BYTES_PER_MS: u64 = 100;

/// Replayed suffixes smaller than this are too noisy to time; keep the
/// default (or previous) throughput estimate.
const MIN_MEASURED_REPLAY_BYTES: u64 = 16 * 1024;

/// Folds one committed update directly into `program`, bypassing the
/// engine's decision path — sound for *committed* history only: every
/// update in it was accepted by the engine once, and acceptance is a
/// deterministic function of the program state, so the fold cannot fail
/// where the original apply succeeded.
fn bulk_fold(program: &mut Program, update: &Update) -> Result<(), MaintenanceError> {
    match crate::engine::normalize(update) {
        Update::InsertFact(f) => {
            program.assert_fact(f).map_err(MaintenanceError::Datalog)?;
        }
        Update::DeleteFact(f) => {
            if !program.retract_fact(&f) {
                return Err(MaintenanceError::NotAsserted(f));
            }
        }
        Update::InsertRule(r) => {
            // Ground unit clauses were normalized away above; a real rule
            // lands in the rule set (add_rule re-checks stratification,
            // which passed when the insert originally committed).
            program.add_rule(r).map_err(MaintenanceError::Datalog)?;
        }
        Update::DeleteRule(r) => {
            let id = program.find_rule(&r).ok_or(MaintenanceError::UnknownRule(r))?;
            program.remove_rule(id);
        }
    }
    Ok(())
}

impl DurableEngine {
    /// Opens (or creates) the durable engine stored at `path` with default
    /// knobs (full snapshots, engine-exact replay, no auto-compaction).
    ///
    /// * Fresh directory: the engine is built from `initial` under
    ///   `strategy` and an initial snapshot is written immediately, so the
    ///   store is recoverable from its first moment.
    /// * Existing store: the state is recovered (snapshot chain +
    ///   committed WAL suffix) and **`initial` is ignored** — what was
    ///   persisted wins. `strategy` selects the engine that interprets the
    ///   recovered program; all strategies agree on the model, so
    ///   reopening under a different strategy is sound (the supports take
    ///   that strategy's form).
    pub fn open(
        path: impl AsRef<Path>,
        strategy: &str,
        ctor: EngineCtor,
        initial: Program,
        durability: Durability,
    ) -> Result<DurableEngine, MaintenanceError> {
        Self::open_with(path, strategy, ctor, initial, durability, None)
    }

    /// [`DurableEngine::open`] with an optional armed fault injector
    /// threaded into the store's WAL and snapshot I/O
    /// (see [`strata_store::faults`]).
    pub fn open_with(
        path: impl AsRef<Path>,
        strategy: &str,
        ctor: EngineCtor,
        initial: Program,
        durability: Durability,
        faults: Option<std::sync::Arc<FaultInjector>>,
    ) -> Result<DurableEngine, MaintenanceError> {
        let mut spec = WalSpec::new(path.as_ref());
        spec.fsync = durability;
        Self::open_spec(&spec, strategy, ctor, initial, faults)
    }

    /// The full-spec entry point: opens (or creates) the durable engine
    /// per `spec` — directory, fsync policy, checkpoint mode, replay mode,
    /// and auto-compaction policy. [`DurableEngine::open`] is the
    /// all-defaults shorthand.
    pub fn open_spec(
        spec: &WalSpec,
        strategy: &str,
        ctor: EngineCtor,
        initial: Program,
        faults: Option<std::sync::Arc<FaultInjector>>,
    ) -> Result<DurableEngine, MaintenanceError> {
        let recovery_start = std::time::Instant::now();
        let (store, recovered) =
            Store::open_with(&spec.dir, spec.fsync, faults).map_err(storage_err)?;
        let fresh = recovered.snapshot.is_none();
        // Reconstruct the chain state — base snapshot plus delta patches —
        // as pure data. `model_check` tracks what the chain claims the
        // model is; the rebuilt engine is verified against it.
        let (mut program, mut model_check) = match recovered.snapshot {
            Some(snap) => {
                let state = decode_state(&snap.payload)?;
                (state.program, Some(state.model))
            }
            None => (initial, None),
        };
        for delta in &recovered.deltas {
            let patch = decode_delta(&delta.payload)?;
            apply_delta_to_program(&mut program, &patch)?;
            if let Some(model) = &mut model_check {
                apply_delta_to_model(model, &patch);
            }
        }
        let committed_bytes: u64 =
            recovered.committed.iter().flat_map(|t| t.records.iter()).map(|r| r.len() as u64).sum();
        let replay_start = std::time::Instant::now();
        let mut recovered_updates = 0u64;
        let inner = match spec.replay {
            ReplayMode::Engine => {
                let mut inner = ctor(program)?;
                if let Some(model) = &model_check {
                    if inner.model() != model {
                        return Err(storage_err(
                            "snapshot integrity check failed: rebuilt model differs from the \
                             snapshot chain's model",
                        ));
                    }
                }
                for txn in &recovered.committed {
                    let updates: Vec<Update> =
                        txn.records.iter().map(|r| decode_update(r)).collect::<Result<_, _>>()?;
                    recovered_updates += updates.len() as u64;
                    // Replay through the entry point that produced the
                    // transaction: engines may override `apply_all` with a
                    // distinct batch path, and exact support reproduction
                    // requires the same code path.
                    let result = match txn.kind {
                        TXN_APPLY => {
                            updates.iter().try_fold(UpdateStats::default(), |mut acc, u| {
                                acc.accumulate(&inner.apply(u)?);
                                Ok(acc)
                            })
                        }
                        _ => inner.apply_all(&updates),
                    };
                    result.map_err(|e| {
                        storage_err(format!(
                            "committed WAL transaction {} failed to replay: {e}",
                            txn.seq
                        ))
                    })?;
                }
                inner
            }
            ReplayMode::Bulk => {
                // Fold the committed suffix into the program first, build
                // the engine exactly once, and let its constructor compute
                // the model in a single saturation. The chain's model is
                // checkable only when there was no suffix (otherwise it
                // describes a strictly earlier state); the WAL's CRCs
                // cover the suffix itself.
                for txn in &recovered.committed {
                    for record in &txn.records {
                        let update = decode_update(record)?;
                        recovered_updates += 1;
                        bulk_fold(&mut program, &update).map_err(|e| {
                            storage_err(format!(
                                "committed WAL transaction {} failed bulk fold: {e}",
                                txn.seq
                            ))
                        })?;
                    }
                }
                let inner = ctor(program)?;
                if recovered.committed.is_empty() {
                    if let Some(model) = &model_check {
                        if inner.model() != model {
                            return Err(storage_err(
                                "snapshot integrity check failed: rebuilt model differs from \
                                 the snapshot chain's model",
                            ));
                        }
                    }
                }
                inner
            }
        };
        let replay_ms = replay_start.elapsed().as_millis() as u64;
        let mut engine = DurableEngine {
            strategy: strategy.to_string(),
            ctor,
            inner,
            store,
            compaction: spec.compaction,
            snapshot_mode: spec.snapshot,
            replay_mode: spec.replay,
            recovered_txns: recovered.committed.len() as u64,
            recovered_updates,
            recovered_torn_tail: recovered.torn_tail,
            recovered_quarantined: recovered.quarantined.is_some(),
            recovery_ms: 0,
            replay_bytes_per_ms: DEFAULT_REPLAY_BYTES_PER_MS,
            last_stamps: FxHashMap::default(),
            dirty_rels: FxHashSet::default(),
        };
        if committed_bytes >= MIN_MEASURED_REPLAY_BYTES && replay_ms >= 1 {
            engine.replay_bytes_per_ms = (committed_bytes / replay_ms).max(1);
        }
        engine.rebaseline();
        if fresh {
            engine.write_snapshot()?;
        }
        let recovery_us = recovery_start.elapsed().as_micros() as u64;
        engine.recovery_ms = recovery_us / 1000;
        let obs = strata_obs::global();
        obs.histogram("strata_recovery_us").record(recovery_us);
        obs.counter("strata_recovered_txns_total").add(engine.recovered_txns);
        obs.counter("strata_recovered_updates_total").add(engine.recovered_updates);
        strata_obs::trace::event(
            strata_obs::EventKind::Recovery,
            format!(
                "us={recovery_us} mode={} txns={} updates={} chain={} torn_tail={} \
                 quarantined={}",
                engine.replay_mode,
                engine.recovered_txns,
                engine.recovered_updates,
                engine.store.chain_len(),
                engine.recovered_torn_tail,
                engine.recovered_quarantined,
            ),
        );
        Ok(engine)
    }

    fn write_snapshot(&mut self) -> Result<(), MaintenanceError> {
        let payload = encode_state(self.inner.as_ref());
        self.store.write_snapshot(&self.strategy, payload).map_err(storage_err)?;
        self.rebaseline();
        Ok(())
    }

    /// Re-records the delta baselines against the current live state:
    /// called after every checkpoint (full or delta) and at open.
    fn rebaseline(&mut self) {
        self.last_stamps =
            self.inner.model().relations().map(|(sym, rel)| (sym, rel.stamp())).collect();
        self.dirty_rels.clear();
    }

    /// Collects the patch since the last checkpoint: model relations whose
    /// stamp moved, program relations an update touched, and the full rule
    /// list.
    fn collect_delta(&self) -> DeltaState {
        let model = self.inner.model();
        let mut model_rels: Vec<(Symbol, Vec<Fact>)> = model
            .relations()
            .filter(|(sym, rel)| self.last_stamps.get(sym) != Some(&rel.stamp()))
            .map(|(sym, _)| {
                let mut facts: Vec<Fact> = model.facts_of(sym).collect();
                facts.sort_by(wire::fact_wire_cmp);
                (sym, facts)
            })
            .collect();
        model_rels.sort_by_key(|(sym, _)| sym.as_str());
        let program = self.inner.program();
        let mut program_rels: Vec<(Symbol, Vec<Fact>)> = self
            .dirty_rels
            .iter()
            .map(|&sym| {
                let mut facts: Vec<Fact> =
                    program.facts().filter(|f| f.rel == sym).cloned().collect();
                facts.sort_by(wire::fact_wire_cmp);
                (sym, facts)
            })
            .collect();
        program_rels.sort_by_key(|(sym, _)| sym.as_str());
        let rules: Vec<String> = program.rules().map(|(_, r)| r.to_string()).collect();
        DeltaState { program_rels, rules, model_rels }
    }

    /// Appends an incremental snapshot to the chain and empties the WAL.
    /// The live engine is **not** canonicalized (a rebuild would
    /// invalidate every stamp baseline); recovery still lands the
    /// canonical state by reconstructing the program and building fresh.
    fn write_delta(&mut self) -> Result<(), MaintenanceError> {
        let payload = encode_delta(&self.collect_delta());
        self.store.write_delta_snapshot(&self.strategy, payload).map_err(storage_err)?;
        self.rebaseline();
        Ok(())
    }

    /// Snapshots the current state in full and empties the WAL.
    ///
    /// The live engine is first rebuilt from its current program
    /// (*canonicalized*), so the post-compaction live state is identical —
    /// supports included — to what [`DurableEngine::open`] reconstructs.
    pub fn compact(&mut self) -> Result<(), MaintenanceError> {
        let program = self.inner.program().clone();
        self.inner = (self.ctor)(program)?;
        self.write_snapshot()
    }

    /// One checkpoint, honoring the configured [`SnapshotMode`]: full, or
    /// a chain delta with full-snapshot fallback once the chain hits its
    /// length bound.
    fn checkpoint_now(&mut self) -> Result<(), MaintenanceError> {
        match self.snapshot_mode {
            SnapshotMode::Full => self.compact()?,
            SnapshotMode::Incremental { max_chain } => {
                if self.store.chain_len() >= u64::from(max_chain) {
                    self.compact()?;
                } else {
                    self.write_delta()?;
                }
            }
        }
        strata_obs::global().counter("strata_store_compactions_total").add(1);
        Ok(())
    }

    /// Estimated milliseconds a restart would spend replaying the current
    /// WAL, from the throughput measured at open. What the
    /// auto-compaction policy's `max_recovery_ms` threshold compares
    /// against.
    pub fn estimated_recovery_ms(&self) -> u64 {
        self.store.wal_bytes() / self.replay_bytes_per_ms.max(1)
    }

    /// The strategy name this engine logs into snapshots.
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// Bytes of terminated transactions currently in the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.store.wal_bytes()
    }

    /// Terminated transactions currently in the WAL. A coalesced group
    /// committed via one `apply_all` counts once, however many updates it
    /// carried — the group-commit observable.
    pub fn wal_txns(&self) -> u64 {
        self.store.wal_txns()
    }

    fn log_and_apply<T>(
        &mut self,
        updates: &[Update],
        kind: u8,
        apply: impl FnOnce(&mut EngineBox, &[Update]) -> Result<T, MaintenanceError>,
    ) -> Result<T, MaintenanceError> {
        // Rollback trail, computed against the pre-batch program: if the
        // COMMIT write fails after the engine applied the batch, the
        // in-memory state must be unwound to match the disk (which, with
        // no terminator record, replays to the pre-batch state). Inserts
        // of facts already asserted at that point are no-ops whose inverse
        // would wrongly retract a pre-existing fact — excluded, as in the
        // sequential batch rollback.
        let mut overlay: rustc_hash::FxHashMap<Fact, bool> = rustc_hash::FxHashMap::default();
        let mut trail: Vec<Update> = Vec::with_capacity(updates.len());
        for u in updates {
            match crate::engine::normalize(u) {
                Update::InsertFact(f) => {
                    // Mark for delta change detection regardless of commit
                    // outcome — a superset of touched relations only makes
                    // the next delta carry an unchanged section.
                    self.dirty_rels.insert(f.rel);
                    let already = overlay
                        .get(&f)
                        .copied()
                        .unwrap_or_else(|| self.inner.program().is_asserted(&f));
                    if !already {
                        overlay.insert(f.clone(), true);
                        trail.push(Update::InsertFact(f));
                    }
                }
                Update::DeleteFact(f) => {
                    self.dirty_rels.insert(f.rel);
                    overlay.insert(f.clone(), false);
                    trail.push(Update::DeleteFact(f));
                }
                other => trail.push(other),
            }
        }
        let records: Vec<Vec<u8>> = updates.iter().map(encode_update).collect();
        let seq = self.store.begin(&records, kind);
        match apply(&mut self.inner, updates) {
            Ok(out) => {
                // In-memory apply done; the WAL commit below stamps fsync.
                strata_obs::trace::stage(strata_obs::Stage::Apply);
                // The commit point: the batch is durable once this returns.
                if let Err(e) = self.store.commit(seq) {
                    // Applied in memory but not durable: unwind so memory
                    // and disk agree on the pre-batch state instead of
                    // silently diverging until the next checkpoint.
                    for done in trail.iter().rev() {
                        self.inner
                            .apply(&crate::engine::invert(done))
                            .expect("inverse of an applied update must apply");
                    }
                    return Err(storage_err(format!(
                        "commit failed, batch rolled back in memory: {e}"
                    )));
                }
                Ok(out)
            }
            Err(e) => {
                // The engine rejected the batch and (per the apply_all
                // contract) rolled itself back; record the decision.
                self.store.abort(seq).map_err(storage_err)?;
                Err(e)
            }
        }
    }
}

impl MaintenanceEngine for DurableEngine {
    fn name(&self) -> &'static str {
        // Transparent wrapper: report the inner strategy, as every
        // comparative harness keys on it.
        self.inner.name()
    }

    fn program(&self) -> &Program {
        self.inner.program()
    }

    fn model(&self) -> &Database {
        self.inner.model()
    }

    fn support_bytes(&self) -> usize {
        self.inner.support_bytes()
    }

    fn support_dump(&self) -> SupportDump {
        self.inner.support_dump()
    }

    fn apply(&mut self, update: &Update) -> Result<UpdateStats, MaintenanceError> {
        self.log_and_apply(std::slice::from_ref(update), TXN_APPLY, |inner, u| inner.apply(&u[0]))
    }

    fn apply_all(&mut self, updates: &[Update]) -> Result<UpdateStats, MaintenanceError> {
        self.log_and_apply(updates, TXN_APPLY_ALL, |inner, u| inner.apply_all(u))
    }

    fn checkpoint(&mut self) -> Result<bool, MaintenanceError> {
        self.checkpoint_now()?;
        Ok(true)
    }

    fn auto_checkpoint(&mut self) -> Result<bool, MaintenanceError> {
        if !self.compaction.due(
            self.store.wal_bytes(),
            self.store.wal_txns(),
            self.estimated_recovery_ms(),
        ) {
            return Ok(false);
        }
        self.checkpoint_now()?;
        Ok(true)
    }

    fn durability(&self) -> Option<DurabilityStats> {
        Some(DurabilityStats {
            recovered_txns: self.recovered_txns,
            recovered_updates: self.recovered_updates,
            recovered_torn_tail: self.recovered_torn_tail,
            wal_txns: self.store.wal_txns(),
            wal_bytes: self.store.wal_bytes(),
            recovered_quarantined: self.recovered_quarantined,
            recovery_ms: self.recovery_ms,
            snapshot_chain_len: self.store.chain_len(),
            snapshot_seq: self.store.snapshot_seq(),
            replay_mode: self.replay_mode,
        })
    }

    fn set_parallelism(&mut self, parallelism: strata_datalog::Parallelism) -> bool {
        self.inner.set_parallelism(parallelism)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::CascadeEngine;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("strata_durable_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cascade_ctor() -> EngineCtor {
        std::sync::Arc::new(|p| Ok(Box::new(CascadeEngine::new(p)?) as EngineBox))
    }

    fn pods() -> Program {
        Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap()
    }

    #[test]
    fn storage_spec_parse_and_display() {
        // Legacy spellings parse to all-default specs and round-trip.
        assert_eq!("mem".parse::<StorageSpec>().unwrap(), StorageSpec::Mem);
        let basic = "wal:/tmp/x".parse::<StorageSpec>().unwrap();
        assert_eq!(basic, StorageSpec::wal("/tmp/x"));
        assert_eq!(basic.to_string(), "wal:/tmp/x");
        assert_eq!(basic.wal_dir(), Some(Path::new("/tmp/x")));
        assert!(basic.is_durable() && !StorageSpec::Mem.is_durable());
        // Every knob, spelled out.
        let full = "wal:/tmp/x;fsync=buffered;compact=auto;snapshot=delta:4;replay=bulk"
            .parse::<StorageSpec>()
            .unwrap();
        assert_eq!(
            full,
            StorageSpec::wal("/tmp/x")
                .fsync(Durability::Buffered)
                .compaction(CompactionPolicy::default_auto())
                .snapshot_mode(SnapshotMode::Incremental { max_chain: 4 })
                .replay(ReplayMode::Bulk)
        );
        assert_eq!(full.to_string().parse::<StorageSpec>().unwrap(), full, "display round-trips");
        // `delta` without a bound gets the default chain length.
        assert_eq!(
            "wal:/x;snapshot=delta".parse::<StorageSpec>().unwrap(),
            StorageSpec::wal("/x")
                .snapshot_mode(SnapshotMode::Incremental { max_chain: DEFAULT_MAX_CHAIN })
        );
        // Custom compaction policies ride through.
        let tuned = "wal:/x;compact=wal=4m,txns=10".parse::<StorageSpec>().unwrap();
        match &tuned {
            StorageSpec::Wal(spec) => {
                assert_eq!(spec.compaction.max_wal_bytes, Some(4 * 1024 * 1024));
                assert_eq!(spec.compaction.min_wal_txns, 10);
            }
            StorageSpec::Mem => panic!("expected wal"),
        }
        assert_eq!(tuned.to_string().parse::<StorageSpec>().unwrap(), tuned);
        // Rejections name the problem.
        for bad in [
            "wal:",
            "nvram:/x",
            "wal:/x;snapshot=delta:0",
            "wal:/x;replay=psychic",
            "wal:/x;fsync=sometimes",
            "wal:/x;compact=wal=",
            "wal:/x;turbo=on",
        ] {
            assert!(bad.parse::<StorageSpec>().is_err(), "{bad} must be rejected");
        }
        #[allow(deprecated)]
        {
            assert_eq!(StorageSpec::parse("mem").unwrap(), StorageSpec::Mem);
        }
    }

    #[test]
    fn update_codec_round_trips() {
        let updates = [
            Update::InsertFact(Fact::parse("p(\"weird value.\")").unwrap()),
            Update::DeleteFact(Fact::parse("\"weird rel\"(1, x)").unwrap()),
            Update::InsertRule(Rule::parse("p(X) :- q(X), !r(X).").unwrap()),
            Update::DeleteRule(Rule::parse("p(X) :- q(X).").unwrap()),
        ];
        for u in &updates {
            assert_eq!(&decode_update(&encode_update(u)).unwrap(), u);
        }
        assert!(decode_update(&[99]).is_err());
        assert!(decode_update(&[]).is_err());
        let mut extra = encode_update(&updates[0]);
        extra.push(0);
        assert!(decode_update(&extra).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn state_codec_round_trips() {
        let engine = CascadeEngine::new(pods()).unwrap();
        let bytes = encode_state(&engine);
        let state = decode_state(&bytes).unwrap();
        assert_eq!(&state.model, engine.model());
        assert_eq!(state.supports, engine.support_dump());
        assert_eq!(state.program.num_facts(), engine.program().num_facts());
        assert_eq!(state.program.num_rules(), engine.program().num_rules());
        // Truncations are rejected, never misread.
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_state(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn fresh_open_apply_reopen_round_trip() {
        let dir = tmpdir("roundtrip");
        let expected = {
            let mut e =
                DurableEngine::open(&dir, "cascade", cascade_ctor(), pods(), Durability::Fsync)
                    .unwrap();
            assert!(e.model().contains_parsed("rejected(1)"));
            e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
            e.apply_all(&[
                Update::InsertFact(Fact::parse("submitted(3)").unwrap()),
                Update::InsertFact(Fact::parse("submitted(4)").unwrap()),
            ])
            .unwrap();
            (e.model().sorted_facts(), e.support_dump())
        }; // dropped = simulated process exit
        let e =
            DurableEngine::open(&dir, "cascade", cascade_ctor(), Program::new(), Durability::Fsync)
                .unwrap();
        assert_eq!(e.model().sorted_facts(), expected.0);
        assert_eq!(e.support_dump(), expected.1);
        assert!(!e.model().contains_parsed("rejected(1)"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_batch_aborts_and_recovers_clean() {
        let dir = tmpdir("abort");
        let before;
        {
            let mut e =
                DurableEngine::open(&dir, "cascade", cascade_ctor(), pods(), Durability::Fsync)
                    .unwrap();
            before = (e.model().sorted_facts(), e.support_dump());
            // Second update deletes an unasserted fact: engine rejects, the
            // whole batch rolls back, an ABORT lands in the WAL.
            let err = e
                .apply_all(&[
                    Update::InsertFact(Fact::parse("submitted(9)").unwrap()),
                    Update::DeleteFact(Fact::parse("ghost(1)").unwrap()),
                ])
                .unwrap_err();
            assert!(matches!(err, MaintenanceError::NotAsserted(_)));
            assert_eq!((e.model().sorted_facts(), e.support_dump()), before);
        }
        let e =
            DurableEngine::open(&dir, "cascade", cascade_ctor(), Program::new(), Durability::Fsync)
                .unwrap();
        assert_eq!((e.model().sorted_facts(), e.support_dump()), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_empties_wal_and_preserves_state() {
        let dir = tmpdir("compact");
        let mut e = DurableEngine::open(&dir, "cascade", cascade_ctor(), pods(), Durability::Fsync)
            .unwrap();
        e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
        assert!(e.wal_bytes() > 0);
        let model = e.model().sorted_facts();
        assert!(e.checkpoint().unwrap());
        assert_eq!(e.wal_bytes(), 0);
        assert_eq!(e.model().sorted_facts(), model);
        // Post-compaction live state ≡ recovered state, supports included.
        let dump = e.support_dump();
        drop(e);
        let e =
            DurableEngine::open(&dir, "cascade", cascade_ctor(), Program::new(), Durability::Fsync)
                .unwrap();
        assert_eq!(e.model().sorted_facts(), model);
        assert_eq!(e.support_dump(), dump);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rule_updates_are_durable() {
        let dir = tmpdir("rules");
        {
            let mut e =
                DurableEngine::open(&dir, "cascade", cascade_ctor(), pods(), Durability::Fsync)
                    .unwrap();
            e.insert_rule(Rule::parse("late(X) :- submitted(X), !reviewed(X).").unwrap()).unwrap();
            e.delete_rule(Rule::parse("late(X) :- submitted(X), !reviewed(X).").unwrap()).unwrap();
            e.insert_rule(Rule::parse("flagged(X) :- rejected(X).").unwrap()).unwrap();
        }
        let e =
            DurableEngine::open(&dir, "cascade", cascade_ctor(), Program::new(), Durability::Fsync)
                .unwrap();
        assert!(e.model().contains_parsed("flagged(1)"));
        assert_eq!(e.program().num_rules(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The canonical support dump for an engine's current program: what a
    /// fresh engine built from it would believe. Recovery through a delta
    /// chain or bulk replay lands exactly this form.
    fn canonical_dump(e: &DurableEngine) -> SupportDump {
        cascade_ctor()(e.program().clone()).unwrap().support_dump()
    }

    #[test]
    fn delta_codec_round_trips() {
        let delta = DeltaState {
            program_rels: vec![
                (
                    Symbol::new("p"),
                    vec![Fact::parse("p(1)").unwrap(), Fact::parse("p(\"odd val\")").unwrap()],
                ),
                (Symbol::new("q"), vec![]),
            ],
            rules: vec!["r(X) :- p(X), !q(X).".to_string()],
            model_rels: vec![(Symbol::new("r"), vec![Fact::parse("r(1)").unwrap()])],
        };
        let bytes = encode_delta(&delta);
        let back = decode_delta(&bytes).unwrap();
        assert_eq!(back.program_rels, delta.program_rels);
        assert_eq!(back.rules, delta.rules);
        assert_eq!(back.model_rels, delta.model_rels);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_delta(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut extra = bytes;
        extra.push(0);
        assert!(decode_delta(&extra).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn incremental_checkpoints_chain_and_recover_exactly() {
        let dir = tmpdir("inc_chain");
        let mut spec = WalSpec::new(&dir);
        spec.snapshot = SnapshotMode::Incremental { max_chain: 8 };
        let (model, canonical) = {
            let mut e =
                DurableEngine::open_spec(&spec, "cascade", cascade_ctor(), pods(), None).unwrap();
            // Checkpoint 1: fact churn, including a retraction.
            e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
            e.delete_fact(Fact::parse("accepted(2)").unwrap()).unwrap();
            assert!(e.checkpoint().unwrap());
            assert_eq!(e.wal_bytes(), 0, "delta checkpoint empties the WAL");
            assert_eq!(e.durability().unwrap().snapshot_chain_len, 1);
            // Checkpoint 2: rule churn rides the chain too.
            e.insert_rule(Rule::parse("flagged(X) :- rejected(X).").unwrap()).unwrap();
            e.insert_fact(Fact::parse("submitted(9)").unwrap()).unwrap();
            assert!(e.checkpoint().unwrap());
            assert_eq!(e.durability().unwrap().snapshot_chain_len, 2);
            // Plus an uncheckpointed WAL suffix on top of the chain.
            e.insert_fact(Fact::parse("accepted(9)").unwrap()).unwrap();
            assert!(e.wal_bytes() > 0);
            (e.model().sorted_facts(), canonical_dump(&e))
        };
        let e = DurableEngine::open_spec(&spec, "cascade", cascade_ctor(), Program::new(), None)
            .unwrap();
        assert_eq!(e.model().sorted_facts(), model, "chain + suffix recovery is exact");
        assert_eq!(e.support_dump(), canonical, "recovered supports are the canonical form");
        assert!(e.model().contains_parsed("flagged(2)"));
        assert!(!e.model().contains_parsed("rejected(9)"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chain_bound_falls_back_to_full_snapshot() {
        let dir = tmpdir("inc_bound");
        let mut spec = WalSpec::new(&dir);
        spec.snapshot = SnapshotMode::Incremental { max_chain: 2 };
        let mut e =
            DurableEngine::open_spec(&spec, "cascade", cascade_ctor(), pods(), None).unwrap();
        for (i, expected_chain) in [(0u32, 1u64), (1, 2), (2, 0), (3, 1)] {
            e.insert_fact(Fact::parse(&format!("submitted({})", 100 + i)).unwrap()).unwrap();
            assert!(e.checkpoint().unwrap());
            assert_eq!(
                e.durability().unwrap().snapshot_chain_len,
                expected_chain,
                "checkpoint {i}: chain grows to the bound, then a full snapshot resets it"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bulk_replay_matches_engine_replay() {
        let dir = tmpdir("bulk_eq");
        let model = {
            let mut e =
                DurableEngine::open(&dir, "cascade", cascade_ctor(), pods(), Durability::Fsync)
                    .unwrap();
            e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
            e.apply_all(&[
                Update::InsertFact(Fact::parse("submitted(3)").unwrap()),
                Update::DeleteFact(Fact::parse("accepted(1)").unwrap()),
                Update::InsertRule(Rule::parse("flagged(X) :- rejected(X).").unwrap()),
            ])
            .unwrap();
            e.delete_rule(Rule::parse("flagged(X) :- rejected(X).").unwrap()).unwrap();
            e.insert_rule(Rule::parse("late(X) :- submitted(X), !accepted(X).").unwrap()).unwrap();
            e.model().sorted_facts()
        };
        let mut spec = WalSpec::new(&dir);
        spec.replay = ReplayMode::Bulk;
        let bulk = DurableEngine::open_spec(&spec, "cascade", cascade_ctor(), Program::new(), None)
            .unwrap();
        assert_eq!(bulk.model().sorted_facts(), model, "bulk replay lands the same model");
        assert_eq!(bulk.durability().unwrap().replay_mode, ReplayMode::Bulk);
        assert_eq!(
            bulk.support_dump(),
            canonical_dump(&bulk),
            "bulk replay lands the canonical support form"
        );
        // Engine-mode reopen of the same store agrees on the model.
        drop(bulk);
        let e =
            DurableEngine::open(&dir, "cascade", cascade_ctor(), Program::new(), Durability::Fsync)
                .unwrap();
        assert_eq!(e.model().sorted_facts(), model);
        assert_eq!(e.durability().unwrap().replay_mode, ReplayMode::Engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_honors_policy() {
        let dir = tmpdir("auto_ckpt");
        let mut spec = WalSpec::new(&dir);
        spec.compaction =
            CompactionPolicy { max_wal_bytes: Some(1), max_recovery_ms: None, min_wal_txns: 2 };
        spec.snapshot = SnapshotMode::Incremental { max_chain: 8 };
        let mut e =
            DurableEngine::open_spec(&spec, "cascade", cascade_ctor(), pods(), None).unwrap();
        e.insert_fact(Fact::parse("submitted(50)").unwrap()).unwrap();
        assert!(!e.auto_checkpoint().unwrap(), "below the txn floor: not due");
        e.insert_fact(Fact::parse("submitted(51)").unwrap()).unwrap();
        assert!(e.auto_checkpoint().unwrap(), "over every threshold: checkpoints");
        assert_eq!(e.wal_bytes(), 0);
        assert_eq!(e.durability().unwrap().snapshot_chain_len, 1);
        // A disabled policy never fires (the default `open` path).
        drop(e);
        let mut e =
            DurableEngine::open(&dir, "cascade", cascade_ctor(), Program::new(), Durability::Fsync)
                .unwrap();
        e.insert_fact(Fact::parse("submitted(52)").unwrap()).unwrap();
        assert!(!e.auto_checkpoint().unwrap(), "compaction off: never due");
        assert!(e.wal_bytes() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
