//! Durable maintenance: [`DurableEngine`] makes any engine's belief state —
//! the model *and* the supports that justify it — survive restart.
//!
//! ## Write path
//!
//! Every [`MaintenanceEngine::apply_all`] batch becomes one WAL transaction,
//! logged **before** the in-memory engine sees it:
//!
//! ```text
//! BEGIN(seq)  DATA(update)*            buffered
//! … inner.apply_all(batch) …           in memory
//! COMMIT(seq) | ABORT(seq)             fsync — the batch's commit point
//! ```
//!
//! A batch the engine rejects writes `ABORT`, so the durable history
//! records the decision; a crash mid-batch leaves an unterminated
//! transaction that recovery discards — either way the store replays to the
//! exact pre-batch state, which is the `apply_all` contract ("reject leaves
//! the engine unchanged") extended to disk.
//!
//! ## Recovery
//!
//! `open` = load the latest snapshot (program + model + support dump),
//! rebuild the engine from the snapshot's program, verify the rebuilt model
//! against the snapshot's model section, then replay the committed WAL
//! suffix through `apply_all`. Engines are deterministic functions of
//! (program, update sequence), so replay reproduces the supports as well as
//! the model.
//!
//! ## Compaction
//!
//! [`DurableEngine::compact`] writes a fresh snapshot and empties the WAL.
//! It first **canonicalizes** the live engine — rebuilds it from its
//! current program — so that the live support state and the
//! recovered-from-snapshot support state are the same object by
//! construction. (Support sets are sound approximations either way; the
//! canonical form is what a fresh engine would believe, which is the
//! natural normal form for a belief state checkpoint.)

use std::fmt;
use std::path::{Path, PathBuf};

use strata_datalog::wire::{self, Reader, WireError};
use strata_datalog::{Database, Fact, Program, Rule};
use strata_store::{Durability, FaultInjector, Store};

use crate::engine::{DurabilityStats, EngineBox, MaintenanceEngine, MaintenanceError, Update};
use crate::stats::UpdateStats;
use crate::support::{FactSupport, PairDump, SupportDump, WitnessDump};

/// Where a registry-built engine keeps its state.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum StorageConfig {
    /// Purely in-memory (the default): state dies with the process.
    #[default]
    Mem,
    /// Durable: WAL + snapshots in this directory.
    Wal(PathBuf),
}

impl StorageConfig {
    /// Parses `"mem"` or `"wal:<path>"`.
    pub fn parse(s: &str) -> Result<StorageConfig, String> {
        if s == "mem" {
            return Ok(StorageConfig::Mem);
        }
        match s.strip_prefix("wal:") {
            Some(path) if !path.is_empty() => Ok(StorageConfig::Wal(PathBuf::from(path))),
            _ => Err(format!("invalid storage config `{s}` (expected `mem` or `wal:<path>`)")),
        }
    }
}

impl fmt::Display for StorageConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageConfig::Mem => f.write_str("mem"),
            StorageConfig::Wal(path) => write!(f, "wal:{}", path.display()),
        }
    }
}

impl std::str::FromStr for StorageConfig {
    type Err = String;

    fn from_str(s: &str) -> Result<StorageConfig, String> {
        StorageConfig::parse(s)
    }
}

fn storage_err(e: impl fmt::Display) -> MaintenanceError {
    MaintenanceError::Storage(e.to_string())
}

// ---------------------------------------------------------------------------
// Update codec (WAL data records).
// ---------------------------------------------------------------------------

/// Transaction kind byte: logged by [`MaintenanceEngine::apply`].
const TXN_APPLY: u8 = 0;
/// Transaction kind byte: logged by [`MaintenanceEngine::apply_all`].
const TXN_APPLY_ALL: u8 = 1;

const UPD_INSERT_FACT: u8 = 0;
const UPD_DELETE_FACT: u8 = 1;
const UPD_INSERT_RULE: u8 = 2;
const UPD_DELETE_RULE: u8 = 3;

/// Encodes one update as a WAL data record. Facts are structural; rules go
/// through their display form, which round-trips by construction.
pub fn encode_update(u: &Update) -> Vec<u8> {
    let mut buf = Vec::new();
    match u {
        Update::InsertFact(f) => {
            buf.push(UPD_INSERT_FACT);
            wire::put_fact(&mut buf, f);
        }
        Update::DeleteFact(f) => {
            buf.push(UPD_DELETE_FACT);
            wire::put_fact(&mut buf, f);
        }
        Update::InsertRule(r) => {
            buf.push(UPD_INSERT_RULE);
            wire::put_str(&mut buf, &r.to_string());
        }
        Update::DeleteRule(r) => {
            buf.push(UPD_DELETE_RULE);
            wire::put_str(&mut buf, &r.to_string());
        }
    }
    buf
}

/// Decodes one WAL data record.
pub fn decode_update(bytes: &[u8]) -> Result<Update, MaintenanceError> {
    let mut r = Reader::new(bytes);
    let tag = r.get_u8().map_err(storage_err)?;
    let update = match tag {
        UPD_INSERT_FACT => Update::InsertFact(r.get_fact().map_err(storage_err)?),
        UPD_DELETE_FACT => Update::DeleteFact(r.get_fact().map_err(storage_err)?),
        UPD_INSERT_RULE | UPD_DELETE_RULE => {
            let text = r.get_str().map_err(storage_err)?;
            let rule = Rule::parse(&text)
                .map_err(|e| storage_err(format!("unparseable rule in WAL: {e}")))?;
            if tag == UPD_INSERT_RULE {
                Update::InsertRule(rule)
            } else {
                Update::DeleteRule(rule)
            }
        }
        other => return Err(storage_err(format!("unknown update tag {other}"))),
    };
    if !r.is_at_end() {
        return Err(storage_err("trailing bytes in update record"));
    }
    Ok(update)
}

// ---------------------------------------------------------------------------
// Snapshot payload codec: program + model + support dump.
// ---------------------------------------------------------------------------

fn put_program(buf: &mut Vec<u8>, program: &Program) {
    let mut facts: Vec<Fact> = program.facts().cloned().collect();
    facts.sort_by(wire::fact_wire_cmp);
    wire::put_u32(buf, facts.len() as u32);
    for f in &facts {
        wire::put_fact(buf, f);
    }
    // Rules in slot order: recovery re-adds them in sequence, so rule ids
    // come out dense and deterministic.
    let rules: Vec<String> = program.rules().map(|(_, r)| r.to_string()).collect();
    wire::put_u32(buf, rules.len() as u32);
    for r in &rules {
        wire::put_str(buf, r);
    }
}

fn get_program(r: &mut Reader<'_>) -> Result<Program, MaintenanceError> {
    let mut program = Program::new();
    let nfacts = r.get_u32().map_err(storage_err)?;
    for _ in 0..nfacts {
        let f = r.get_fact().map_err(storage_err)?;
        program.assert_fact(f).map_err(|e| storage_err(format!("snapshot fact: {e}")))?;
    }
    let nrules = r.get_u32().map_err(storage_err)?;
    for _ in 0..nrules {
        let text = r.get_str().map_err(storage_err)?;
        let rule = Rule::parse(&text)
            .map_err(|e| storage_err(format!("unparseable rule in snapshot: {e}")))?;
        program.add_rule(rule).map_err(|e| storage_err(format!("snapshot rule: {e}")))?;
    }
    Ok(program)
}

fn put_string_list(buf: &mut Vec<u8>, items: &[String]) {
    wire::put_u32(buf, items.len() as u32);
    for s in items {
        wire::put_str(buf, s);
    }
}

fn get_string_list(r: &mut Reader<'_>) -> Result<Vec<String>, WireError> {
    let n = r.get_u32()?;
    (0..n).map(|_| r.get_str()).collect()
}

fn put_pair_dump(buf: &mut Vec<u8>, p: &PairDump) {
    put_string_list(buf, &p.pos);
    put_string_list(buf, &p.pos_signed);
    put_string_list(buf, &p.neg);
    put_string_list(buf, &p.neg_signed);
}

fn get_pair_dump(r: &mut Reader<'_>) -> Result<PairDump, WireError> {
    Ok(PairDump {
        pos: get_string_list(r)?,
        pos_signed: get_string_list(r)?,
        neg: get_string_list(r)?,
        neg_signed: get_string_list(r)?,
    })
}

const SUP_SINGLE: u8 = 0;
const SUP_MULTI: u8 = 1;
const SUP_RULES: u8 = 2;
const SUP_ENTRIES: u8 = 3;

fn put_support_dump(buf: &mut Vec<u8>, dump: &SupportDump) {
    wire::put_u32(buf, dump.entries.len() as u32);
    for (fact, support) in &dump.entries {
        wire::put_fact(buf, fact);
        match support {
            FactSupport::Single(p) => {
                buf.push(SUP_SINGLE);
                put_pair_dump(buf, p);
            }
            FactSupport::Multi { asserted, pairs } => {
                buf.push(SUP_MULTI);
                buf.push(u8::from(*asserted));
                wire::put_u32(buf, pairs.len() as u32);
                for p in pairs {
                    put_pair_dump(buf, p);
                }
            }
            FactSupport::Rules { asserted, rules } => {
                buf.push(SUP_RULES);
                buf.push(u8::from(*asserted));
                put_string_list(buf, rules);
            }
            FactSupport::Entries(entries) => {
                buf.push(SUP_ENTRIES);
                wire::put_u32(buf, entries.len() as u32);
                for e in entries {
                    put_string_list(buf, &e.pos);
                    put_string_list(buf, &e.neg);
                }
            }
        }
    }
}

fn get_support_dump(r: &mut Reader<'_>) -> Result<SupportDump, WireError> {
    let n = r.get_u32()?;
    let mut entries = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let fact = r.get_fact()?;
        let support = match r.get_u8()? {
            SUP_SINGLE => FactSupport::Single(get_pair_dump(r)?),
            SUP_MULTI => {
                let asserted = r.get_u8()? != 0;
                let k = r.get_u32()?;
                let pairs = (0..k).map(|_| get_pair_dump(r)).collect::<Result<_, _>>()?;
                FactSupport::Multi { asserted, pairs }
            }
            SUP_RULES => {
                let asserted = r.get_u8()? != 0;
                FactSupport::Rules { asserted, rules: get_string_list(r)? }
            }
            SUP_ENTRIES => {
                let k = r.get_u32()?;
                let entries = (0..k)
                    .map(|_| Ok(WitnessDump { pos: get_string_list(r)?, neg: get_string_list(r)? }))
                    .collect::<Result<_, WireError>>()?;
                FactSupport::Entries(entries)
            }
            _ => {
                return Err(WireError { at: r.pos(), msg: "unknown support tag" });
            }
        };
        entries.push((fact, support));
    }
    Ok(SupportDump { entries })
}

/// The decoded contents of a snapshot payload.
pub struct SnapshotState {
    /// The program (asserted EDB + rules) — the authoritative recovery base.
    pub program: Program,
    /// The model at snapshot time, used as a recovery integrity check.
    pub model: Database,
    /// The per-fact support dump (audit; recovery rebuilds supports).
    pub supports: SupportDump,
}

/// Encodes the full belief state of `engine` into a snapshot payload.
pub fn encode_state(engine: &dyn MaintenanceEngine) -> Vec<u8> {
    let mut buf = Vec::new();
    put_program(&mut buf, engine.program());
    wire::put_store(&mut buf, engine.model());
    put_support_dump(&mut buf, &engine.support_dump());
    buf
}

/// Decodes a snapshot payload.
pub fn decode_state(bytes: &[u8]) -> Result<SnapshotState, MaintenanceError> {
    let mut r = Reader::new(bytes);
    let program = get_program(&mut r)?;
    let mut model = Database::new();
    r.get_store(&mut model).map_err(storage_err)?;
    let supports = get_support_dump(&mut r).map_err(storage_err)?;
    if !r.is_at_end() {
        return Err(storage_err("trailing bytes in snapshot payload"));
    }
    Ok(SnapshotState { program, model, supports })
}

// ---------------------------------------------------------------------------
// The durable engine.
// ---------------------------------------------------------------------------

/// A shared engine constructor — the one alias for it in the workspace
/// (re-exported by `registry`). `Arc` rather than `Box` so the registry can
/// hand a clone to a [`DurableEngine`], which needs the constructor again
/// at recovery and compaction time. Constructors produce [`EngineBox`]
/// (`Send`) engines so registry-built engines can be moved onto service
/// worker threads.
pub type EngineCtor =
    std::sync::Arc<dyn Fn(Program) -> Result<EngineBox, MaintenanceError> + Send + Sync>;

/// A [`MaintenanceEngine`] whose belief state survives restart.
///
/// Wraps any engine built by `ctor`; all reads and the maintenance
/// semantics are the inner engine's. See the module docs for the write,
/// recovery, and compaction protocols.
pub struct DurableEngine {
    strategy: String,
    ctor: EngineCtor,
    inner: EngineBox,
    store: Store,
    /// What `open` replayed, frozen for the engine's lifetime — restart
    /// metrics (`:stats`, the ingest service's `stats` verb) report it.
    recovered_txns: u64,
    recovered_updates: u64,
    recovered_torn_tail: bool,
    recovered_quarantined: bool,
}

impl DurableEngine {
    /// Opens (or creates) the durable engine stored at `path`.
    ///
    /// * Fresh directory: the engine is built from `initial` under
    ///   `strategy` and an initial snapshot is written immediately, so the
    ///   store is recoverable from its first moment.
    /// * Existing store: the state is recovered (snapshot + committed WAL
    ///   suffix) and **`initial` is ignored** — what was persisted wins.
    ///   `strategy` selects the engine that interprets the recovered
    ///   program; all strategies agree on the model, so reopening under a
    ///   different strategy is sound (the supports take that strategy's
    ///   form).
    pub fn open(
        path: impl AsRef<Path>,
        strategy: &str,
        ctor: EngineCtor,
        initial: Program,
        durability: Durability,
    ) -> Result<DurableEngine, MaintenanceError> {
        Self::open_with(path, strategy, ctor, initial, durability, None)
    }

    /// [`DurableEngine::open`] with an optional armed fault injector
    /// threaded into the store's WAL and snapshot I/O
    /// (see [`strata_store::faults`]).
    pub fn open_with(
        path: impl AsRef<Path>,
        strategy: &str,
        ctor: EngineCtor,
        initial: Program,
        durability: Durability,
        faults: Option<std::sync::Arc<FaultInjector>>,
    ) -> Result<DurableEngine, MaintenanceError> {
        let recovery_start = std::time::Instant::now();
        let (store, recovered) =
            Store::open_with(path.as_ref(), durability, faults).map_err(storage_err)?;
        let fresh = recovered.snapshot.is_none();
        let base = match recovered.snapshot {
            Some(snap) => {
                let state = decode_state(&snap.payload)?;
                let inner = ctor(state.program)?;
                if inner.model() != &state.model {
                    return Err(storage_err(
                        "snapshot integrity check failed: rebuilt model differs from the \
                         snapshot's model section",
                    ));
                }
                inner
            }
            None => ctor(initial)?,
        };
        let mut inner = base;
        let mut recovered_updates = 0u64;
        for txn in &recovered.committed {
            let updates: Vec<Update> =
                txn.records.iter().map(|r| decode_update(r)).collect::<Result<_, _>>()?;
            recovered_updates += updates.len() as u64;
            // Replay through the entry point that produced the transaction:
            // engines may override `apply_all` with a distinct batch path,
            // and exact support reproduction requires the same code path.
            let result = match txn.kind {
                TXN_APPLY => updates.iter().try_fold(UpdateStats::default(), |mut acc, u| {
                    acc.accumulate(&inner.apply(u)?);
                    Ok(acc)
                }),
                _ => inner.apply_all(&updates),
            };
            result.map_err(|e| {
                storage_err(format!("committed WAL transaction {} failed to replay: {e}", txn.seq))
            })?;
        }
        let mut engine = DurableEngine {
            strategy: strategy.to_string(),
            ctor,
            inner,
            store,
            recovered_txns: recovered.committed.len() as u64,
            recovered_updates,
            recovered_torn_tail: recovered.torn_tail,
            recovered_quarantined: recovered.quarantined.is_some(),
        };
        if fresh {
            engine.write_snapshot()?;
        }
        let recovery_us = recovery_start.elapsed().as_micros() as u64;
        let obs = strata_obs::global();
        obs.histogram("strata_recovery_us").record(recovery_us);
        obs.counter("strata_recovered_txns_total").add(engine.recovered_txns);
        obs.counter("strata_recovered_updates_total").add(engine.recovered_updates);
        strata_obs::trace::event(
            strata_obs::EventKind::Recovery,
            format!(
                "us={recovery_us} txns={} updates={} torn_tail={} quarantined={}",
                engine.recovered_txns,
                engine.recovered_updates,
                engine.recovered_torn_tail,
                engine.recovered_quarantined,
            ),
        );
        Ok(engine)
    }

    fn write_snapshot(&mut self) -> Result<(), MaintenanceError> {
        let payload = encode_state(self.inner.as_ref());
        self.store.write_snapshot(&self.strategy, payload).map_err(storage_err)
    }

    /// Snapshots the current state and empties the WAL.
    ///
    /// The live engine is first rebuilt from its current program
    /// (*canonicalized*), so the post-compaction live state is identical —
    /// supports included — to what [`DurableEngine::open`] reconstructs.
    pub fn compact(&mut self) -> Result<(), MaintenanceError> {
        let program = self.inner.program().clone();
        self.inner = (self.ctor)(program)?;
        self.write_snapshot()
    }

    /// The strategy name this engine logs into snapshots.
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// Bytes of terminated transactions currently in the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.store.wal_bytes()
    }

    /// Terminated transactions currently in the WAL. A coalesced group
    /// committed via one `apply_all` counts once, however many updates it
    /// carried — the group-commit observable.
    pub fn wal_txns(&self) -> u64 {
        self.store.wal_txns()
    }

    fn log_and_apply<T>(
        &mut self,
        updates: &[Update],
        kind: u8,
        apply: impl FnOnce(&mut EngineBox, &[Update]) -> Result<T, MaintenanceError>,
    ) -> Result<T, MaintenanceError> {
        // Rollback trail, computed against the pre-batch program: if the
        // COMMIT write fails after the engine applied the batch, the
        // in-memory state must be unwound to match the disk (which, with
        // no terminator record, replays to the pre-batch state). Inserts
        // of facts already asserted at that point are no-ops whose inverse
        // would wrongly retract a pre-existing fact — excluded, as in the
        // sequential batch rollback.
        let mut overlay: rustc_hash::FxHashMap<Fact, bool> = rustc_hash::FxHashMap::default();
        let mut trail: Vec<Update> = Vec::with_capacity(updates.len());
        for u in updates {
            match crate::engine::normalize(u) {
                Update::InsertFact(f) => {
                    let already = overlay
                        .get(&f)
                        .copied()
                        .unwrap_or_else(|| self.inner.program().is_asserted(&f));
                    if !already {
                        overlay.insert(f.clone(), true);
                        trail.push(Update::InsertFact(f));
                    }
                }
                Update::DeleteFact(f) => {
                    overlay.insert(f.clone(), false);
                    trail.push(Update::DeleteFact(f));
                }
                other => trail.push(other),
            }
        }
        let records: Vec<Vec<u8>> = updates.iter().map(encode_update).collect();
        let seq = self.store.begin(&records, kind);
        match apply(&mut self.inner, updates) {
            Ok(out) => {
                // In-memory apply done; the WAL commit below stamps fsync.
                strata_obs::trace::stage(strata_obs::Stage::Apply);
                // The commit point: the batch is durable once this returns.
                if let Err(e) = self.store.commit(seq) {
                    // Applied in memory but not durable: unwind so memory
                    // and disk agree on the pre-batch state instead of
                    // silently diverging until the next checkpoint.
                    for done in trail.iter().rev() {
                        self.inner
                            .apply(&crate::engine::invert(done))
                            .expect("inverse of an applied update must apply");
                    }
                    return Err(storage_err(format!(
                        "commit failed, batch rolled back in memory: {e}"
                    )));
                }
                Ok(out)
            }
            Err(e) => {
                // The engine rejected the batch and (per the apply_all
                // contract) rolled itself back; record the decision.
                self.store.abort(seq).map_err(storage_err)?;
                Err(e)
            }
        }
    }
}

impl MaintenanceEngine for DurableEngine {
    fn name(&self) -> &'static str {
        // Transparent wrapper: report the inner strategy, as every
        // comparative harness keys on it.
        self.inner.name()
    }

    fn program(&self) -> &Program {
        self.inner.program()
    }

    fn model(&self) -> &Database {
        self.inner.model()
    }

    fn support_bytes(&self) -> usize {
        self.inner.support_bytes()
    }

    fn support_dump(&self) -> SupportDump {
        self.inner.support_dump()
    }

    fn apply(&mut self, update: &Update) -> Result<UpdateStats, MaintenanceError> {
        self.log_and_apply(std::slice::from_ref(update), TXN_APPLY, |inner, u| inner.apply(&u[0]))
    }

    fn apply_all(&mut self, updates: &[Update]) -> Result<UpdateStats, MaintenanceError> {
        self.log_and_apply(updates, TXN_APPLY_ALL, |inner, u| inner.apply_all(u))
    }

    fn checkpoint(&mut self) -> Result<bool, MaintenanceError> {
        self.compact()?;
        Ok(true)
    }

    fn durability(&self) -> Option<DurabilityStats> {
        Some(DurabilityStats {
            recovered_txns: self.recovered_txns,
            recovered_updates: self.recovered_updates,
            recovered_torn_tail: self.recovered_torn_tail,
            wal_txns: self.store.wal_txns(),
            wal_bytes: self.store.wal_bytes(),
            recovered_quarantined: self.recovered_quarantined,
        })
    }

    fn set_parallelism(&mut self, parallelism: strata_datalog::Parallelism) -> bool {
        self.inner.set_parallelism(parallelism)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::CascadeEngine;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("strata_durable_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cascade_ctor() -> EngineCtor {
        std::sync::Arc::new(|p| Ok(Box::new(CascadeEngine::new(p)?) as EngineBox))
    }

    fn pods() -> Program {
        Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap()
    }

    #[test]
    fn storage_config_parse_and_display() {
        assert_eq!(StorageConfig::parse("mem").unwrap(), StorageConfig::Mem);
        assert_eq!(
            StorageConfig::parse("wal:/tmp/x").unwrap(),
            StorageConfig::Wal(PathBuf::from("/tmp/x"))
        );
        assert!(StorageConfig::parse("wal:").is_err());
        assert!(StorageConfig::parse("nvram:/x").is_err());
        assert_eq!(StorageConfig::Wal(PathBuf::from("/a/b")).to_string(), "wal:/a/b");
        assert_eq!("mem".parse::<StorageConfig>().unwrap(), StorageConfig::Mem);
    }

    #[test]
    fn update_codec_round_trips() {
        let updates = [
            Update::InsertFact(Fact::parse("p(\"weird value.\")").unwrap()),
            Update::DeleteFact(Fact::parse("\"weird rel\"(1, x)").unwrap()),
            Update::InsertRule(Rule::parse("p(X) :- q(X), !r(X).").unwrap()),
            Update::DeleteRule(Rule::parse("p(X) :- q(X).").unwrap()),
        ];
        for u in &updates {
            assert_eq!(&decode_update(&encode_update(u)).unwrap(), u);
        }
        assert!(decode_update(&[99]).is_err());
        assert!(decode_update(&[]).is_err());
        let mut extra = encode_update(&updates[0]);
        extra.push(0);
        assert!(decode_update(&extra).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn state_codec_round_trips() {
        let engine = CascadeEngine::new(pods()).unwrap();
        let bytes = encode_state(&engine);
        let state = decode_state(&bytes).unwrap();
        assert_eq!(&state.model, engine.model());
        assert_eq!(state.supports, engine.support_dump());
        assert_eq!(state.program.num_facts(), engine.program().num_facts());
        assert_eq!(state.program.num_rules(), engine.program().num_rules());
        // Truncations are rejected, never misread.
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_state(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn fresh_open_apply_reopen_round_trip() {
        let dir = tmpdir("roundtrip");
        let expected = {
            let mut e =
                DurableEngine::open(&dir, "cascade", cascade_ctor(), pods(), Durability::Fsync)
                    .unwrap();
            assert!(e.model().contains_parsed("rejected(1)"));
            e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
            e.apply_all(&[
                Update::InsertFact(Fact::parse("submitted(3)").unwrap()),
                Update::InsertFact(Fact::parse("submitted(4)").unwrap()),
            ])
            .unwrap();
            (e.model().sorted_facts(), e.support_dump())
        }; // dropped = simulated process exit
        let e =
            DurableEngine::open(&dir, "cascade", cascade_ctor(), Program::new(), Durability::Fsync)
                .unwrap();
        assert_eq!(e.model().sorted_facts(), expected.0);
        assert_eq!(e.support_dump(), expected.1);
        assert!(!e.model().contains_parsed("rejected(1)"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_batch_aborts_and_recovers_clean() {
        let dir = tmpdir("abort");
        let before;
        {
            let mut e =
                DurableEngine::open(&dir, "cascade", cascade_ctor(), pods(), Durability::Fsync)
                    .unwrap();
            before = (e.model().sorted_facts(), e.support_dump());
            // Second update deletes an unasserted fact: engine rejects, the
            // whole batch rolls back, an ABORT lands in the WAL.
            let err = e
                .apply_all(&[
                    Update::InsertFact(Fact::parse("submitted(9)").unwrap()),
                    Update::DeleteFact(Fact::parse("ghost(1)").unwrap()),
                ])
                .unwrap_err();
            assert!(matches!(err, MaintenanceError::NotAsserted(_)));
            assert_eq!((e.model().sorted_facts(), e.support_dump()), before);
        }
        let e =
            DurableEngine::open(&dir, "cascade", cascade_ctor(), Program::new(), Durability::Fsync)
                .unwrap();
        assert_eq!((e.model().sorted_facts(), e.support_dump()), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_empties_wal_and_preserves_state() {
        let dir = tmpdir("compact");
        let mut e = DurableEngine::open(&dir, "cascade", cascade_ctor(), pods(), Durability::Fsync)
            .unwrap();
        e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
        assert!(e.wal_bytes() > 0);
        let model = e.model().sorted_facts();
        assert!(e.checkpoint().unwrap());
        assert_eq!(e.wal_bytes(), 0);
        assert_eq!(e.model().sorted_facts(), model);
        // Post-compaction live state ≡ recovered state, supports included.
        let dump = e.support_dump();
        drop(e);
        let e =
            DurableEngine::open(&dir, "cascade", cascade_ctor(), Program::new(), Durability::Fsync)
                .unwrap();
        assert_eq!(e.model().sorted_facts(), model);
        assert_eq!(e.support_dump(), dump);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rule_updates_are_durable() {
        let dir = tmpdir("rules");
        {
            let mut e =
                DurableEngine::open(&dir, "cascade", cascade_ctor(), pods(), Durability::Fsync)
                    .unwrap();
            e.insert_rule(Rule::parse("late(X) :- submitted(X), !reviewed(X).").unwrap()).unwrap();
            e.delete_rule(Rule::parse("late(X) :- submitted(X), !reviewed(X).").unwrap()).unwrap();
            e.insert_rule(Rule::parse("flagged(X) :- rejected(X).").unwrap()).unwrap();
        }
        let e =
            DurableEngine::open(&dir, "cascade", cascade_ctor(), Program::new(), Durability::Fsync)
                .unwrap();
        assert!(e.model().contains_parsed("flagged(1)"));
        assert_eq!(e.program().num_rules(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
