//! Integrity constraints (paper §3: "in addition a database contains a set
//! of integrity constraints" — their *checking* theory is delegated to
//! Lloyd, Sonenberg & Topor [LST]; this module supplies the enforcement
//! layer over the maintained model).
//!
//! A constraint is a **denial**: a rule body that must never be satisfiable
//! in `M(P)`. `:- accepted(X), rejected(X).` forbids a paper from being
//! both. Because every engine keeps `M(P)` explicit, checking is a join
//! over the materialized model — no deduction at check time.
//!
//! [`GuardedEngine`] wraps any [`MaintenanceEngine`]: an update whose
//! result violates a constraint is **rolled back** by applying the inverse
//! update (exact, since engines are differentially verified against the
//! recomputed model) and reported as an error with the violating bindings.

use std::fmt;

use strata_datalog::query::{render_row, Query, Row};
use strata_datalog::{Database, DatalogError, Fact, Program, Rule};

use crate::engine::{MaintenanceEngine, MaintenanceError, Update};
use crate::stats::UpdateStats;

/// A denial constraint: a body that must have no answer in the model.
#[derive(Clone, Debug)]
pub struct Constraint {
    query: Query,
    text: String,
}

impl Constraint {
    /// Parses a denial: `:- p(X), !q(X).` (the leading `:-` and trailing
    /// `.` are optional).
    pub fn parse(src: &str) -> Result<Constraint, DatalogError> {
        let body = src.trim().trim_start_matches(":-").trim();
        let query = Query::parse(body)?;
        Ok(Constraint { text: format!(":- {query}."), query })
    }

    /// The violating bindings in `model` (empty = satisfied).
    pub fn violations(&self, model: &Database) -> Vec<Row> {
        self.query.eval(model)
    }

    /// Whether the constraint holds in `model`.
    pub fn is_satisfied(&self, model: &Database) -> bool {
        !self.query.holds(model)
    }

    /// Renders a violation row (`X = 1, Y = a`).
    pub fn render_violation(&self, row: &[strata_datalog::Value]) -> String {
        render_row(&self.query, row)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A set of denials checked together.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// An empty set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Adds a constraint.
    pub fn add(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Parses and adds a denial.
    pub fn add_parsed(&mut self, src: &str) -> Result<(), DatalogError> {
        self.add(Constraint::parse(src)?);
        Ok(())
    }

    /// The constraints.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> + '_ {
        self.constraints.iter()
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The first violated constraint with one witness, if any.
    pub fn first_violation(&self, model: &Database) -> Option<(usize, &Constraint, Row)> {
        for (i, c) in self.constraints.iter().enumerate() {
            if let Some(row) = c.violations(model).into_iter().next() {
                return Some((i, c, row));
            }
        }
        None
    }

    /// All violations of all constraints.
    pub fn all_violations(&self, model: &Database) -> Vec<(usize, Row)> {
        let mut out = Vec::new();
        for (i, c) in self.constraints.iter().enumerate() {
            for row in c.violations(model) {
                out.push((i, row));
            }
        }
        out
    }
}

/// Why a guarded update failed.
#[derive(Clone, Debug)]
pub enum GuardError {
    /// The underlying engine rejected the update.
    Engine(MaintenanceError),
    /// The update would violate a constraint; it was rolled back.
    Violated {
        /// The violated constraint, rendered.
        constraint: String,
        /// One violating binding, rendered.
        witness: String,
    },
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::Engine(e) => write!(f, "{e}"),
            GuardError::Violated { constraint, witness } => {
                write!(f, "update violates `{constraint}` (witness: {witness}); rolled back")
            }
        }
    }
}

impl std::error::Error for GuardError {}

impl From<MaintenanceError> for GuardError {
    fn from(e: MaintenanceError) -> GuardError {
        GuardError::Engine(e)
    }
}

/// A maintenance engine guarded by integrity constraints.
///
/// The initial database is *not* required to satisfy the constraints
/// (legacy data); the guard only prevents updates from *introducing*
/// violations — new violations, not pre-existing ones, trigger rollback.
pub struct GuardedEngine<E> {
    inner: E,
    constraints: ConstraintSet,
}

impl<E: MaintenanceEngine> GuardedEngine<E> {
    /// Wraps `inner` with `constraints`.
    pub fn new(inner: E, constraints: ConstraintSet) -> GuardedEngine<E> {
        GuardedEngine { inner, constraints }
    }

    /// Wraps `inner` with no constraints yet.
    pub fn unconstrained(inner: E) -> GuardedEngine<E> {
        GuardedEngine::new(inner, ConstraintSet::new())
    }

    /// Adds a constraint. Fails if the *current* model already violates it
    /// (a constraint must start satisfied to be enforceable).
    pub fn add_constraint(&mut self, c: Constraint) -> Result<(), GuardError> {
        if let Some(row) = c.violations(self.inner.model()).into_iter().next() {
            return Err(GuardError::Violated {
                constraint: c.to_string(),
                witness: c.render_violation(&row),
            });
        }
        self.constraints.add(c);
        Ok(())
    }

    /// The constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Mutable access to the wrapped engine, for operations outside the
    /// guarded update path (e.g. [`MaintenanceEngine::checkpoint`] on a
    /// durable engine). Constraint enforcement only covers updates applied
    /// through the guard.
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }

    /// Swaps the wrapped engine (e.g. a strategy switch over the same
    /// program), returning the old one. The constraints carry over.
    pub fn replace_inner(&mut self, inner: E) -> E {
        std::mem::replace(&mut self.inner, inner)
    }

    /// The current program.
    pub fn program(&self) -> &Program {
        self.inner.program()
    }

    /// The current model.
    pub fn model(&self) -> &Database {
        self.inner.model()
    }

    /// Applies an update; rolls it back if it introduces a violation.
    pub fn apply(&mut self, update: &Update) -> Result<UpdateStats, GuardError> {
        let before: Vec<(usize, Row)> = self.constraints.all_violations(self.inner.model());
        let stats = self.inner.apply(update)?;
        for (i, c) in self.constraints.iter().enumerate() {
            for row in c.violations(self.inner.model()) {
                let pre_existing = before.iter().any(|(j, r)| *j == i && *r == row);
                if pre_existing {
                    continue;
                }
                let err = GuardError::Violated {
                    constraint: c.to_string(),
                    witness: c.render_violation(&row),
                };
                self.inner
                    .apply(&crate::engine::invert(update))
                    .expect("inverse of an accepted update must apply");
                return Err(err);
            }
        }
        Ok(stats)
    }

    /// Applies a batch of updates as one guarded transaction: the engine's
    /// [`MaintenanceEngine::apply_all`] runs the whole batch (with its own
    /// prefix rollback on engine-level rejection), and the constraints are
    /// checked once against the **final** state. A batch may therefore pass
    /// through intermediate states that would violate a constraint, as long
    /// as the end state does not — the transactional reading of denials.
    /// On a new violation the entire batch is rolled back.
    pub fn apply_all(&mut self, updates: &[Update]) -> Result<UpdateStats, GuardError> {
        if self.constraints.is_empty() {
            return Ok(self.inner.apply_all(updates)?);
        }
        // Record the rollback trail *before* applying: inserts of facts
        // already asserted at that point in the batch are no-ops whose
        // inverse would wrongly retract a pre-existing fact. Assertedness
        // is tracked as a batch-local overlay over the program (O(|batch|),
        // not a clone of the fact base).
        let mut overlay: rustc_hash::FxHashMap<Fact, bool> = rustc_hash::FxHashMap::default();
        let mut trail: Vec<Update> = Vec::with_capacity(updates.len());
        for u in updates {
            match crate::engine::normalize(u) {
                Update::InsertFact(f) => {
                    let already = overlay
                        .get(&f)
                        .copied()
                        .unwrap_or_else(|| self.inner.program().is_asserted(&f));
                    if !already {
                        overlay.insert(f.clone(), true);
                        trail.push(Update::InsertFact(f));
                    }
                }
                Update::DeleteFact(f) => {
                    overlay.insert(f.clone(), false);
                    trail.push(Update::DeleteFact(f));
                }
                other => trail.push(other),
            }
        }
        let before: Vec<(usize, Row)> = self.constraints.all_violations(self.inner.model());
        let stats = self.inner.apply_all(updates)?;
        for (i, c) in self.constraints.iter().enumerate() {
            for row in c.violations(self.inner.model()) {
                if before.iter().any(|(j, r)| *j == i && *r == row) {
                    continue;
                }
                let err = GuardError::Violated {
                    constraint: c.to_string(),
                    witness: c.render_violation(&row),
                };
                for done in trail.iter().rev() {
                    self.inner
                        .apply(&crate::engine::invert(done))
                        .expect("inverse of an applied update must apply");
                }
                return Err(err);
            }
        }
        Ok(stats)
    }

    /// Convenience: insert a fact under guard.
    pub fn insert_fact(&mut self, fact: Fact) -> Result<UpdateStats, GuardError> {
        self.apply(&Update::InsertFact(fact))
    }

    /// Convenience: delete a fact under guard.
    pub fn delete_fact(&mut self, fact: Fact) -> Result<UpdateStats, GuardError> {
        self.apply(&Update::DeleteFact(fact))
    }

    /// Convenience: insert a rule under guard.
    pub fn insert_rule(&mut self, rule: Rule) -> Result<UpdateStats, GuardError> {
        self.apply(&Update::InsertRule(rule))
    }

    /// Convenience: delete a rule under guard.
    pub fn delete_rule(&mut self, rule: Rule) -> Result<UpdateStats, GuardError> {
        self.apply(&Update::DeleteRule(rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::CascadeEngine;
    use crate::verify::assert_matches_ground_truth;

    fn fact(s: &str) -> Fact {
        Fact::parse(s).unwrap()
    }

    fn guarded(src: &str, denials: &[&str]) -> GuardedEngine<CascadeEngine> {
        let engine = CascadeEngine::new(Program::parse(src).unwrap()).unwrap();
        let mut g = GuardedEngine::unconstrained(engine);
        for d in denials {
            g.add_constraint(Constraint::parse(d).unwrap()).unwrap();
        }
        g
    }

    #[test]
    fn constraint_parsing_and_display() {
        let c = Constraint::parse(":- accepted(X), rejected(X).").unwrap();
        assert_eq!(c.to_string(), ":- accepted(X), rejected(X).");
        // Leading `:-` optional.
        let c2 = Constraint::parse("accepted(X), rejected(X)").unwrap();
        assert_eq!(c2.to_string(), c.to_string());
        assert!(Constraint::parse(":- !only_negative(X).").is_err());
    }

    #[test]
    fn satisfied_constraint_lets_updates_through() {
        let mut g = guarded(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
            &[":- accepted(X), rejected(X)."],
        );
        // Inserting accepted(1) removes rejected(1): no violation.
        g.insert_fact(fact("accepted(1)")).unwrap();
        assert!(g.model().contains_parsed("accepted(1)"));
        assert_matches_ground_truth(g.inner());
    }

    #[test]
    fn violating_update_rolled_back() {
        // `rejected` is asserted directly here, so accepting 3 would
        // coexist with its rejection — forbidden.
        let mut g =
            guarded("submitted(3). rejected(3).", &[":- submitted(X), rejected(X), accepted(X)."]);
        let before = g.model().sorted_facts();
        let err = g.insert_fact(fact("accepted(3)")).unwrap_err();
        let GuardError::Violated { constraint, witness } = &err else {
            panic!("expected violation, got {err}")
        };
        assert!(constraint.contains("rejected"));
        assert!(witness.contains("X = 3"), "{witness}");
        assert_eq!(g.model().sorted_facts(), before, "rolled back");
        assert_matches_ground_truth(g.inner());
    }

    #[test]
    fn deletion_can_violate_too() {
        // Every submitted paper must have a decision.
        let mut g = guarded(
            "submitted(1). accepted(1).
             undecided(X) :- submitted(X), !accepted(X), !rejected(X).",
            &[":- undecided(X)."],
        );
        let err = g.delete_fact(fact("accepted(1)")).unwrap_err();
        assert!(matches!(err, GuardError::Violated { .. }));
        assert!(g.model().contains_parsed("accepted(1)"), "rolled back");
    }

    #[test]
    fn rule_updates_guarded() {
        let mut g = guarded("e(1). ok(1).", &[":- bad(X)."]);
        let err = g.insert_rule(Rule::parse("bad(X) :- e(X), !missing(X).").unwrap()).unwrap_err();
        assert!(matches!(err, GuardError::Violated { .. }));
        assert_eq!(g.program().num_rules(), 0, "rule insertion rolled back");
        // A harmless rule passes.
        g.insert_rule(Rule::parse("fine(X) :- e(X), ok(X).").unwrap()).unwrap();
        assert!(g.model().contains_parsed("fine(1)"));
    }

    #[test]
    fn engine_errors_pass_through() {
        let mut g = guarded("e(1).", &[]);
        let err = g.delete_fact(fact("ghost(9)")).unwrap_err();
        assert!(matches!(err, GuardError::Engine(MaintenanceError::NotAsserted(_))));
        assert!(err.to_string().contains("not an asserted fact"));
    }

    #[test]
    fn pre_existing_violations_are_tolerated() {
        // Legacy data violates the denial; unrelated updates still work,
        // and the update may NOT add a *new* violation.
        let engine =
            CascadeEngine::new(Program::parse("conflict(1). conflict(2). other(5).").unwrap())
                .unwrap();
        let mut g = GuardedEngine::unconstrained(engine);
        // add_constraint refuses a violated constraint…
        let c = Constraint::parse(":- conflict(X).").unwrap();
        assert!(matches!(g.add_constraint(c.clone()), Err(GuardError::Violated { .. })));
        // …but a force-installed set tolerates old violations.
        let mut set = ConstraintSet::new();
        set.add(c);
        let engine =
            CascadeEngine::new(Program::parse("conflict(1). conflict(2). other(5).").unwrap())
                .unwrap();
        let mut g = GuardedEngine::new(engine, set);
        g.insert_fact(fact("other(6)")).unwrap();
        let err = g.insert_fact(fact("conflict(3)")).unwrap_err();
        assert!(matches!(err, GuardError::Violated { .. }));
        assert!(!g.model().contains_parsed("conflict(3)"));
    }

    #[test]
    fn guarded_batch_checks_only_the_final_state() {
        // accepted(1) + rejected(1) coexisting is forbidden, but a batch
        // may pass through that state as long as it ends clean.
        let mut g = guarded("submitted(1). rejected(1).", &[":- accepted(X), rejected(X)."]);
        g.apply_all(&[
            Update::InsertFact(fact("accepted(1)")),
            Update::DeleteFact(fact("rejected(1)")),
        ])
        .unwrap();
        assert!(g.model().contains_parsed("accepted(1)"));
        assert!(!g.model().contains_parsed("rejected(1)"));
    }

    #[test]
    fn guarded_batch_rolls_back_whole_transaction_on_violation() {
        let mut g =
            guarded("submitted(1). submitted(2). rejected(2).", &[":- accepted(X), rejected(X)."]);
        let before = g.model().sorted_facts();
        // The first two updates are fine; the last leaves accepted(2)
        // coexisting with rejected(2) in the final state.
        let err = g
            .apply_all(&[
                Update::InsertFact(fact("accepted(1)")),
                Update::InsertFact(fact("submitted(3)")),
                Update::InsertFact(fact("accepted(2)")),
            ])
            .unwrap_err();
        assert!(matches!(err, GuardError::Violated { .. }), "{err}");
        assert_eq!(g.model().sorted_facts(), before, "whole batch rolled back");
        assert_matches_ground_truth(g.inner());
    }

    #[test]
    fn guarded_batch_rollback_spares_preexisting_facts() {
        // Re-inserting an already-asserted fact is a no-op: when the batch
        // is rolled back, that fact must survive.
        let mut g = guarded("submitted(1). rejected(2).", &[":- accepted(X), rejected(X)."]);
        let err = g
            .apply_all(&[
                Update::InsertFact(fact("submitted(1)")), // no-op insert
                Update::InsertFact(fact("accepted(2)")),  // violates
            ])
            .unwrap_err();
        assert!(matches!(err, GuardError::Violated { .. }));
        assert!(g.model().contains_parsed("submitted(1)"), "pre-existing fact survived");
        assert!(!g.model().contains_parsed("accepted(2)"));
    }

    #[test]
    fn guarded_batch_engine_rejection_passes_through() {
        let mut g = guarded("e(1).", &[":- bad(X)."]);
        let before = g.model().sorted_facts();
        let err = g
            .apply_all(&[Update::InsertFact(fact("e(2)")), Update::DeleteFact(fact("ghost(9)"))])
            .unwrap_err();
        assert!(matches!(err, GuardError::Engine(MaintenanceError::NotAsserted(_))));
        assert_eq!(g.model().sorted_facts(), before, "engine prefix rollback held");
    }

    #[test]
    fn constraint_set_inspection() {
        let mut set = ConstraintSet::new();
        assert!(set.is_empty());
        set.add_parsed(":- a(X), b(X).").unwrap();
        set.add_parsed(":- c(X).").unwrap();
        assert_eq!(set.len(), 2);
        let db =
            Database::from_facts(["a(1)", "b(1)", "c(9)"].iter().map(|s| Fact::parse(s).unwrap()));
        let all = set.all_violations(&db);
        assert_eq!(all.len(), 2);
        let (i, c, row) = set.first_violation(&db).unwrap();
        assert_eq!(i, 0);
        assert_eq!(c.render_violation(&row), "X = 1");
    }
}
