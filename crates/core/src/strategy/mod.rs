//! The maintenance strategies.
//!
//! * [`RecomputeEngine`] — no bookkeeping; recompute `M(P')` from scratch.
//! * [`StaticEngine`] — §4.1, removal driven by the static dependency graph.
//! * [`DynamicSingleEngine`] — §4.2, one support pair per fact.
//! * [`DynamicMultiEngine`] — §4.3, one support pair per derivation.
//! * [`CascadeEngine`] — §5.1, rule-pointer supports with per-stratum
//!   alternation of removal and saturation.
//! * [`FactLevelEngine`] — §5.2's discussed endpoint: fact-level supports,
//!   zero migration, prohibitive bookkeeping.

mod cascade;
mod dynamic_multi;
mod dynamic_single;
mod fact_level;
mod recompute;
mod static_graph;

pub use cascade::{CascadeConfig, CascadeEngine};
pub use dynamic_multi::DynamicMultiEngine;
pub use dynamic_single::{DynamicSingleEngine, SingleConfig};
pub use fact_level::{EntrySet, FactEntry, FactLevelEngine};
pub use recompute::RecomputeEngine;
pub use static_graph::StaticEngine;

use rustc_hash::FxHashSet;
use strata_datalog::{Database, Fact, Program, Rule, RuleId, Symbol};

use crate::engine::MaintenanceError;

/// Validates and performs a fact retraction on the program.
pub(crate) fn retract_checked(program: &mut Program, fact: &Fact) -> Result<(), MaintenanceError> {
    if !program.is_asserted(fact) {
        return Err(MaintenanceError::NotAsserted(fact.clone()));
    }
    program.retract_fact(fact);
    Ok(())
}

/// Adds a (non-fact) rule to the program, reporting language errors.
/// Stratification must be checked by the caller (who can roll back).
pub(crate) fn add_rule_checked(
    program: &mut Program,
    rule: &Rule,
) -> Result<RuleId, MaintenanceError> {
    let id = program.add_rule(rule.clone()).map_err(MaintenanceError::Datalog)?;
    Ok(id.expect("fact clauses are normalized to fact updates"))
}

/// Finds a structurally equal rule or reports it unknown.
pub(crate) fn find_rule_checked(
    program: &Program,
    rule: &Rule,
) -> Result<RuleId, MaintenanceError> {
    program.find_rule(rule).ok_or_else(|| MaintenanceError::UnknownRule(rule.clone()))
}

/// Removes every fact of each listed relation from `model`, recording the
/// removals. This is the §4.1 static removal phase: "remove from M(P) all
/// facts r(s̄) such that p belongs to Neg(r)" removes by *relation*.
pub(crate) fn remove_rel_facts(
    model: &mut Database,
    rels: impl IntoIterator<Item = Symbol>,
    removed: &mut FxHashSet<Fact>,
) {
    for rel in rels {
        let facts: Vec<Fact> = model.facts_of(rel).collect();
        for f in facts {
            model.remove(&f);
            removed.insert(f);
        }
    }
}
