//! The no-bookkeeping baseline: recompute `M(P')` from scratch.
//!
//! The paper frames maintenance as a trade-off between bookkeeping cost and
//! migration; full recomputation is the zero-bookkeeping endpoint. It is
//! also the ground truth every other engine is verified against.

use rustc_hash::FxHashSet;
use strata_datalog::eval::par;
use strata_datalog::eval::seminaive::DeltaStats;
use strata_datalog::eval::NullNewFact;
use strata_datalog::model::{StratKind, Strata};
use strata_datalog::{Database, Fact, Parallelism, Program};

use crate::engine::{normalize, MaintenanceEngine, MaintenanceError, Update};
use crate::stats::UpdateStats;
use crate::strategy::{add_rule_checked, find_rule_checked, retract_checked};

/// Recomputes the standard model after every update.
pub struct RecomputeEngine {
    /// `"recompute"`, or `"recompute-parallel"` when built via
    /// [`RecomputeEngine::parallel`].
    name: &'static str,
    program: Program,
    model: Database,
    parallelism: Parallelism,
}

impl RecomputeEngine {
    /// Builds the engine, computing `M(P)`.
    pub fn new(program: Program) -> Result<RecomputeEngine, MaintenanceError> {
        let (model, _) = compute(&program, Parallelism::sequential())?;
        Ok(RecomputeEngine {
            name: "recompute",
            program,
            model,
            parallelism: Parallelism::sequential(),
        })
    }

    /// Builds the `recompute-parallel` variant: every recomputation's
    /// saturation is sharded across `parallelism` workers.
    pub fn parallel(
        program: Program,
        parallelism: Parallelism,
    ) -> Result<RecomputeEngine, MaintenanceError> {
        let (model, _) = compute(&program, parallelism)?;
        Ok(RecomputeEngine { name: "recompute-parallel", program, model, parallelism })
    }

    fn recompute(&mut self) -> Result<u64, MaintenanceError> {
        let (model, firings) = compute(&self.program, self.parallelism)?;
        self.model = model;
        Ok(firings)
    }
}

fn compute(
    program: &Program,
    parallelism: Parallelism,
) -> Result<(Database, u64), MaintenanceError> {
    let strata = Strata::build(program, StratKind::ByLevels)
        .map_err(|e| MaintenanceError::Datalog(e.into()))?;
    let mut db = Database::new();
    let mut stats = DeltaStats::default();
    for i in 0..strata.num_strata() {
        for f in strata.facts_of(i) {
            db.insert(f.clone());
        }
        par::saturate(&mut db, strata.rules_of(i), &mut NullNewFact, &mut stats, parallelism);
    }
    Ok((db, stats.firings))
}

impl MaintenanceEngine for RecomputeEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) -> bool {
        self.parallelism = parallelism;
        true
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn model(&self) -> &Database {
        &self.model
    }

    fn support_bytes(&self) -> usize {
        0
    }

    fn apply(&mut self, update: &Update) -> Result<UpdateStats, MaintenanceError> {
        let update = normalize(update);
        match &update {
            Update::InsertFact(f) => {
                if self.program.is_asserted(f) {
                    return Ok(UpdateStats::default());
                }
                self.program.assert_fact(f.clone()).map_err(MaintenanceError::Datalog)?;
            }
            Update::DeleteFact(f) => retract_checked(&mut self.program, f)?,
            Update::InsertRule(r) => {
                let id = add_rule_checked(&mut self.program, r)?;
                if let Err(e) = Strata::build(&self.program, StratKind::ByLevels) {
                    self.program.remove_rule(id);
                    return Err(MaintenanceError::WouldUnstratify(e));
                }
            }
            Update::DeleteRule(r) => {
                let id = find_rule_checked(&self.program, r)?;
                self.program.remove_rule(id);
            }
        }
        let old = std::mem::take(&mut self.model);
        let firings = self.recompute()?;
        // No removal phase exists: report the net difference, zero migration.
        let removed: FxHashSet<Fact> =
            old.iter_facts().filter(|f| !self.model.contains(f)).collect();
        let added: FxHashSet<Fact> = self.model.iter_facts().filter(|f| !old.contains(f)).collect();
        Ok(UpdateStats::from_sets(&removed, &added, firings, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_datalog::Rule;

    fn engine(src: &str) -> RecomputeEngine {
        RecomputeEngine::new(Program::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn pods_insert_and_delete() {
        // Paper §3: PODS database.
        let mut e = engine(
            "submitted(1). submitted(2). submitted(3).
             accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        );
        assert!(e.model().contains_parsed("rejected(1)"));
        // Insertion of accepted(1) removes rejected(1).
        let s = e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("rejected(1)"));
        assert!(e.model().contains_parsed("accepted(1)"));
        assert_eq!(s.net_added, 1);
        assert_eq!(s.net_removed, 1);
        assert_eq!(s.migrated, 0);
        // Deletion of accepted(2) adds rejected(2).
        e.delete_fact(Fact::parse("accepted(2)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("rejected(2)"));
        assert!(!e.model().contains_parsed("accepted(2)"));
    }

    #[test]
    fn delete_of_derived_fact_rejected() {
        let mut e = engine("s(1). r(X) :- s(X).");
        let err = e.delete_fact(Fact::parse("r(1)").unwrap()).unwrap_err();
        assert!(matches!(err, MaintenanceError::NotAsserted(_)));
        // Engine unchanged.
        assert!(e.model().contains_parsed("r(1)"));
    }

    #[test]
    fn unstratifying_rule_rejected_and_rolled_back() {
        let mut e = engine("e(1). p(X) :- e(X), !q(X).");
        let err = e.insert_rule(Rule::parse("q(X) :- e(X), !p(X).").unwrap()).unwrap_err();
        assert!(matches!(err, MaintenanceError::WouldUnstratify(_)));
        assert_eq!(e.program().num_rules(), 1);
        assert!(e.model().contains_parsed("p(1)"));
        // The engine still works after the rejected update.
        e.insert_fact(Fact::parse("q(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("p(1)"));
    }

    #[test]
    fn rule_insert_and_delete_round_trip() {
        let mut e = engine("e(1). e(2).");
        let rule = Rule::parse("p(X) :- e(X).").unwrap();
        e.insert_rule(rule.clone()).unwrap();
        assert_eq!(e.model().count("p".into()), 2);
        e.delete_rule(rule.clone()).unwrap();
        assert_eq!(e.model().count("p".into()), 0);
        let err = e.delete_rule(rule).unwrap_err();
        assert!(matches!(err, MaintenanceError::UnknownRule(_)));
    }

    #[test]
    fn duplicate_fact_insert_is_noop() {
        let mut e = engine("a(1).");
        let s = e.insert_fact(Fact::parse("a(1)").unwrap()).unwrap();
        assert_eq!(s, UpdateStats::default());
    }

    #[test]
    fn fact_clause_rule_updates_normalize() {
        let mut e = engine("a(1).");
        e.insert_rule(Rule::parse("b(7).").unwrap()).unwrap();
        assert!(e.model().contains_parsed("b(7)"));
        e.delete_rule(Rule::parse("b(7).").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("b(7)"));
    }
}
