//! §4.1 — the static solution using the dependency graph.
//!
//! No supports are attached to facts. The removal phase takes "a pessimistic
//! view": on an insertion into `p`, *every* fact of *every* relation `r`
//! with `p ∈ Neg(r)` is removed (on deletion: `p ∈ Pos(r)`), and the
//! affected strata are re-saturated. Facts removed although still derivable
//! **migrate** — the paper's Example 1 (reproduced in the tests) shows the
//! asserted fact `accepted(l+1)` migrating, which the dynamic solutions
//! avoid.

use rustc_hash::FxHashSet;
use strata_datalog::eval::seminaive::{self, DeltaStats};
use strata_datalog::eval::NullNewFact;
use strata_datalog::model::StratKind;
use strata_datalog::{Database, Fact, Program, Symbol};

use crate::analysis::Analysis;
use crate::engine::{normalize, MaintenanceEngine, MaintenanceError, Update};
use crate::stats::UpdateStats;
use crate::strategy::{add_rule_checked, find_rule_checked, remove_rel_facts, retract_checked};

/// The paper's §4.1 engine.
pub struct StaticEngine {
    program: Program,
    analysis: Analysis,
    model: Database,
}

impl StaticEngine {
    /// Builds the engine, computing `M(P)` and the static dependency sets.
    pub fn new(program: Program) -> Result<StaticEngine, MaintenanceError> {
        let analysis = Analysis::build(&program, StratKind::Maximal)
            .map_err(|e| MaintenanceError::Datalog(e.into()))?;
        let mut engine = StaticEngine { program, analysis, model: Database::new() };
        let mut added = FxHashSet::default();
        let mut derivs = 0;
        engine.resaturate_from(0, &mut added, &mut derivs);
        Ok(engine)
    }

    /// Step (3) of the paper's procedures: `M'_i = SAT(P_i, M)` for the
    /// strata from `start` upward, re-injecting asserted facts (their
    /// "trivial derivations").
    fn resaturate_from(&mut self, start: usize, added: &mut FxHashSet<Fact>, derivs: &mut u64) {
        let strata = self.analysis.strata();
        for s in start..strata.num_strata() {
            for f in strata.facts_of(s) {
                if self.model.insert(f.clone()) {
                    added.insert(f.clone());
                }
            }
            let mut stats = DeltaStats::default();
            let new = seminaive::saturate(
                &mut self.model,
                strata.rules_of(s),
                &mut NullNewFact,
                &mut stats,
            );
            *derivs += stats.firings;
            added.extend(new);
        }
    }

    fn rels_of(&self, indices: &strata_datalog::RelSet) -> Vec<Symbol> {
        indices.iter().map(|i| self.analysis.index().rel(i)).collect()
    }

    fn rebuild_analysis(&mut self) -> Result<(), MaintenanceError> {
        self.analysis =
            Analysis::rebuild(&self.program, StratKind::Maximal, self.analysis.index_clone())
                .map_err(|e| MaintenanceError::Datalog(e.into()))?;
        Ok(())
    }

    fn finish(&self, removed: FxHashSet<Fact>, added: FxHashSet<Fact>, derivs: u64) -> UpdateStats {
        UpdateStats::from_sets(&removed, &added, derivs, self.support_bytes())
    }
}

impl MaintenanceEngine for StaticEngine {
    fn name(&self) -> &'static str {
        "static"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn model(&self) -> &Database {
        &self.model
    }

    /// The static sets are the bookkeeping of this strategy.
    fn support_bytes(&self) -> usize {
        self.analysis.deps().heap_bytes()
    }

    fn apply(&mut self, update: &Update) -> Result<UpdateStats, MaintenanceError> {
        let update = normalize(update);
        let mut removed = FxHashSet::default();
        let mut added = FxHashSet::default();
        let mut derivs = 0u64;
        match &update {
            Update::InsertFact(f) => {
                if self.program.is_asserted(f) {
                    return Ok(self.finish(removed, added, derivs));
                }
                self.program.assert_fact(f.clone()).map_err(MaintenanceError::Datalog)?;
                if self.analysis.rel(f.rel).is_none() {
                    self.rebuild_analysis().expect("fact insertion cannot unstratify");
                } else {
                    self.analysis.note_assert(f);
                }
                let p = self.analysis.rel(f.rel).expect("indexed after rebuild");
                // 1) remove all facts of relations depending on p through an
                //    odd number of negations.
                let rels = self.rels_of(self.analysis.deps().neg_inverse(p));
                remove_rel_facts(&mut self.model, rels, &mut removed);
                // 2) add p(t̄).
                if self.model.insert(f.clone()) {
                    added.insert(f.clone());
                }
                // 3) re-saturate the strata from p's stratum up.
                self.resaturate_from(self.analysis.stratum_of(f.rel), &mut added, &mut derivs);
            }
            Update::DeleteFact(f) => {
                retract_checked(&mut self.program, f)?;
                self.analysis.note_retract(f);
                let p = self.analysis.rel(f.rel).expect("asserted relation is indexed");
                // 1) remove all facts of relations depending on p through an
                //    even number of negations — including every fact of p
                //    itself, since p ∈ Pos(p).
                let rels = self.rels_of(self.analysis.deps().pos_inverse(p));
                remove_rel_facts(&mut self.model, rels, &mut removed);
                // 2) p(t̄) is gone with them (no longer asserted);
                // 3) re-saturate.
                self.resaturate_from(self.analysis.stratum_of(f.rel), &mut added, &mut derivs);
            }
            Update::InsertRule(r) => {
                let id = add_rule_checked(&mut self.program, r)?;
                let old = self.analysis.clone();
                if let Err(e) = self.rebuild_analysis() {
                    self.program.remove_rule(id);
                    self.analysis = old;
                    let MaintenanceError::Datalog(strata_datalog::DatalogError::Stratification(s)) =
                        e
                    else {
                        return Err(e);
                    };
                    return Err(MaintenanceError::WouldUnstratify(s));
                }
                // A rule insertion can only increase p: same removal as a
                // fact insertion, with the recomputed dependency sets.
                let p = self.analysis.rel(r.head.rel).expect("indexed after rebuild");
                let rels = self.rels_of(self.analysis.deps().neg_inverse(p));
                remove_rel_facts(&mut self.model, rels, &mut removed);
                self.resaturate_from(self.analysis.stratum_of(r.head.rel), &mut added, &mut derivs);
            }
            Update::DeleteRule(r) => {
                let id = find_rule_checked(&self.program, r)?;
                // Removal must use the dependency sets computed *before* the
                // rule disappears: a relation that depended on p only through
                // the deleted rule still holds facts derived through it.
                let p = self.analysis.rel(r.head.rel).expect("rule head is indexed");
                let affected = self.rels_of(self.analysis.deps().pos_inverse(p));
                remove_rel_facts(&mut self.model, affected.iter().copied(), &mut removed);
                self.program.remove_rule(id);
                self.rebuild_analysis().expect("rule deletion cannot unstratify");
                let start =
                    affected.iter().map(|&rel| self.analysis.stratum_of(rel)).min().unwrap_or(0);
                self.resaturate_from(start, &mut added, &mut derivs);
            }
        }
        Ok(self.finish(removed, added, derivs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_matches_ground_truth;
    use strata_datalog::Rule;

    fn engine(src: &str) -> StaticEngine {
        StaticEngine::new(Program::parse(src).unwrap()).unwrap()
    }

    /// Paper §3: the PODS database.
    #[test]
    fn pods_insert_and_delete() {
        let mut e = engine(
            "submitted(1). submitted(2). submitted(3).
             accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        );
        e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("rejected(1)"));
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("accepted(2)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("rejected(2)"));
        assert_matches_ground_truth(&e);
    }

    /// Paper §4.1 Example 1 (CONF): the static solution migrates the
    /// asserted fact accepted(l+1).
    #[test]
    fn conf_example_migrates_asserted_fact() {
        let mut e = engine(
            "submitted(1). submitted(2). submitted(3). late(4). accepted(4).
             accepted(X) :- submitted(X), !rejected(X).",
        );
        assert!(e.model().contains_parsed("accepted(4)"));
        let stats = e.insert_fact(Fact::parse("rejected(4)").unwrap()).unwrap();
        // accepted(4) is still in the model (it is asserted)…
        assert!(e.model().contains_parsed("accepted(4)"));
        assert_matches_ground_truth(&e);
        // …but it was removed and re-added: it migrated, together with the
        // three derived accepted facts.
        assert_eq!(stats.removed, 4);
        assert_eq!(stats.migrated, 4);
        assert_eq!(stats.net_added, 1); // rejected(4)
        assert_eq!(stats.net_removed, 0);
    }

    /// Paper §4.2 Example 2: the chain p1 ← ¬p0, p2 ← ¬p1, p3 ← ¬p2.
    /// The static solution handles it correctly (if wastefully).
    #[test]
    fn chain_insert_and_delete() {
        let mut e = engine("p1 :- !p0. p2 :- !p1. p3 :- !p2.");
        assert_eq!(render(e.model()), "p1 p3");
        e.insert_fact(Fact::parse("p0").unwrap()).unwrap();
        assert_eq!(render(e.model()), "p0 p2");
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("p0").unwrap()).unwrap();
        assert_eq!(render(e.model()), "p1 p3");
        assert_matches_ground_truth(&e);
    }

    fn render(db: &Database) -> String {
        db.sorted_facts().iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
    }

    #[test]
    fn rule_insertion_updates_model() {
        let mut e = engine("e(1). e(2). f(2).");
        e.insert_rule(Rule::parse("p(X) :- e(X), !f(X).").unwrap()).unwrap();
        assert!(e.model().contains_parsed("p(1)"));
        assert!(!e.model().contains_parsed("p(2)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn rule_deletion_removes_derived_facts() {
        let mut e = engine("e(1). p(X) :- e(X). q(X) :- p(X).");
        assert!(e.model().contains_parsed("q(1)"));
        e.delete_rule(Rule::parse("p(X) :- e(X).").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("p(1)"));
        assert!(!e.model().contains_parsed("q(1)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn rule_deletion_keeps_alternative_derivations() {
        let mut e = engine("e(1). p(X) :- e(X). p(X) :- f(X). f(1). f(2).");
        e.delete_rule(Rule::parse("p(X) :- e(X).").unwrap()).unwrap();
        // p(1) survives via f; p(2) too.
        assert!(e.model().contains_parsed("p(1)"));
        assert!(e.model().contains_parsed("p(2)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn unstratifying_rule_rejected_and_rolled_back() {
        let mut e = engine("e(1). p(X) :- e(X), !q(X).");
        let before = e.model().clone();
        let err = e.insert_rule(Rule::parse("q(X) :- e(X), !p(X).").unwrap()).unwrap_err();
        assert!(matches!(err, MaintenanceError::WouldUnstratify(_)));
        assert_eq!(e.model(), &before);
        assert_eq!(e.program().num_rules(), 1);
        // Still functional.
        e.insert_fact(Fact::parse("e(2)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("p(2)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn delete_non_asserted_fact_rejected() {
        let mut e = engine("e(1). p(X) :- e(X).");
        assert!(matches!(
            e.delete_fact(Fact::parse("p(1)").unwrap()),
            Err(MaintenanceError::NotAsserted(_))
        ));
    }

    #[test]
    fn insert_fact_for_new_relation() {
        let mut e = engine("a(1).");
        e.insert_fact(Fact::parse("brand_new(7)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("brand_new(7)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn static_deletion_removes_whole_relation_pessimistically() {
        // Deleting one e-fact removes *all* e facts and dependents, which
        // then migrate back — the static strategy's signature waste.
        let mut e = engine("e(1). e(2). e(3). p(X) :- e(X).");
        let stats = e.delete_fact(Fact::parse("e(3)").unwrap()).unwrap();
        assert_eq!(stats.removed, 6); // 3 e-facts + 3 p-facts
        assert_eq!(stats.migrated, 4); // e(1), e(2), p(1), p(2) come back
        assert_eq!(stats.net_removed, 2); // e(3), p(3)
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn deep_cascade_through_double_negation() {
        let mut e = engine(
            "s(1). s(2). c(1).
             b(X) :- s(X), !c(X).
             a(X) :- s(X), !b(X).",
        );
        assert!(e.model().contains_parsed("a(1)"));
        assert!(!e.model().contains_parsed("a(2)"));
        // Deleting c(1) flips b(1), which flips a(1).
        e.delete_fact(Fact::parse("c(1)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("b(1)"));
        assert!(!e.model().contains_parsed("a(1)"));
        assert_matches_ground_truth(&e);
    }
}
