//! §4.2 — the dynamic solution using one `Pos`/`Neg` support pair per fact.
//!
//! Supports are computed **during** saturation from the dependencies
//! actually used, not the potential ones, so fewer facts are removed than in
//! §4.1. Two paper-mandated subtleties:
//!
//! * **Signed relations.** Recording only the directly negated relations is
//!   incorrect (the paper's Example 2): the transitive dependencies *behind*
//!   a negative hypothesis never appear in any positive body support. Signed
//!   entries `-r`/`+r` are therefore kept and resolved against the static
//!   dependency sets at update time. The incorrect naive variant remains
//!   available via [`SingleConfig::signed`]` = false` — experiment E3
//!   demonstrates exactly the failure the paper describes.
//! * **Smaller supports are preferable** (Example 3): a re-derivation whose
//!   pair is *pairwise smaller* replaces the stored pair. Only pairwise
//!   comparability makes the replacement sound — see
//!   [`SingleConfig::prefer_smaller`] for the ablation.
//!
//! Keeping a single support per fact loses information when a fact has
//! several derivations (Example 4); §4.3 fixes that at higher cost.

use rustc_hash::{FxHashMap, FxHashSet};
use strata_datalog::eval::naive::{self, SaturationStats};
use strata_datalog::eval::{Derivation, DerivationSink};
use strata_datalog::graph::RelIndex;
use strata_datalog::model::StratKind;
use strata_datalog::{Database, Fact, Program, Symbol};

use crate::analysis::Analysis;
use crate::engine::{normalize, MaintenanceEngine, MaintenanceError, Update};
use crate::stats::UpdateStats;
use crate::strategy::{add_rule_checked, find_rule_checked, retract_checked};
use crate::support::SupportPair;

/// Configuration for [`DynamicSingleEngine`].
#[derive(Clone, Copy, Debug)]
pub struct SingleConfig {
    /// Keep signed entries and resolve them against static dependencies
    /// (`true` = the paper's corrected solution; `false` = the incorrect
    /// naive variant of Example 2, kept for the reproduction).
    pub signed: bool,
    /// Replace a stored support when a pairwise-smaller one is derived
    /// (the paper's Example 3 preference).
    pub prefer_smaller: bool,
}

impl Default for SingleConfig {
    fn default() -> SingleConfig {
        SingleConfig { signed: true, prefer_smaller: true }
    }
}

/// The paper's §4.2 engine.
pub struct DynamicSingleEngine {
    program: Program,
    analysis: Analysis,
    model: Database,
    supports: FxHashMap<Fact, SupportPair>,
    config: SingleConfig,
}

struct SingleSink<'a> {
    supports: &'a mut FxHashMap<Fact, SupportPair>,
    index: &'a RelIndex,
    universe: usize,
    config: SingleConfig,
}

impl DerivationSink for SingleSink<'_> {
    fn on_derivation(&mut self, d: &Derivation<'_>) -> bool {
        let mut pair = SupportPair::empty(self.universe);
        for bf in d.pos_body {
            if let Some(sup) = self.supports.get(bf) {
                pair.union_with(sup);
            }
            pair.pos.plain.insert(self.index.of(bf.rel));
        }
        for nf in d.neg_body {
            let r = self.index.of(nf.rel);
            if self.config.signed {
                // Pos gains -r, Neg gains +r.
                pair.pos.signed.insert(r);
                pair.neg.signed.insert(r);
            } else {
                // The naive (incorrect) construction: Neg gains plain r.
                pair.neg.plain.insert(r);
            }
        }
        use std::collections::hash_map::Entry;
        match self.supports.entry(d.head.clone()) {
            Entry::Vacant(v) => {
                v.insert(pair);
                true
            }
            Entry::Occupied(mut o) => {
                // "We keep its old pair of Pos and Neg sets unless the new
                // pair is pairwise smaller than the old one."
                if self.config.prefer_smaller && pair.pairwise_subset(o.get()) && &pair != o.get() {
                    o.insert(pair);
                    true
                } else {
                    false
                }
            }
        }
    }
}

impl DynamicSingleEngine {
    /// Builds the engine with the corrected (signed) configuration.
    pub fn new(program: Program) -> Result<DynamicSingleEngine, MaintenanceError> {
        Self::with_config(program, SingleConfig::default())
    }

    /// Builds the paper's *incorrect* naive variant (Example 2), kept to
    /// reproduce its failure. Its model can diverge from the ground truth!
    pub fn naive_unsigned(program: Program) -> Result<DynamicSingleEngine, MaintenanceError> {
        Self::with_config(program, SingleConfig { signed: false, prefer_smaller: true })
    }

    /// Builds the engine with an explicit configuration.
    pub fn with_config(
        program: Program,
        config: SingleConfig,
    ) -> Result<DynamicSingleEngine, MaintenanceError> {
        let analysis = Analysis::build(&program, StratKind::Maximal)
            .map_err(|e| MaintenanceError::Datalog(e.into()))?;
        let mut engine = DynamicSingleEngine {
            program,
            analysis,
            model: Database::new(),
            supports: FxHashMap::default(),
            config,
        };
        let mut added = FxHashSet::default();
        let mut derivs = 0;
        engine.resaturate_from(0, &mut added, &mut derivs);
        Ok(engine)
    }

    /// The support pair currently attached to a fact (for tests/inspection).
    pub fn support_of(&self, fact: &Fact) -> Option<&SupportPair> {
        self.supports.get(fact)
    }

    fn resaturate_from(&mut self, start: usize, added: &mut FxHashSet<Fact>, derivs: &mut u64) {
        let strata = self.analysis.strata();
        let universe = self.analysis.universe();
        for s in start..strata.num_strata() {
            for f in strata.facts_of(s) {
                if self.model.insert(f.clone()) {
                    added.insert(f.clone());
                }
                // Asserted facts carry the empty pair — unbeatably small.
                self.supports.insert(f.clone(), SupportPair::empty(universe));
            }
            let mut sink = SingleSink {
                supports: &mut self.supports,
                index: self.analysis.index(),
                universe,
                config: self.config,
            };
            let mut stats = SaturationStats::default();
            let new = naive::saturate(&mut self.model, strata.rules_of(s), &mut sink, &mut stats);
            *derivs += stats.derivations;
            added.extend(new);
        }
    }

    /// Removal phase for an increase of `p`: drop facts whose resolved
    /// `Neg'` contains `p`.
    fn removal_on_increase(&mut self, p: u32, removed: &mut FxHashSet<Fact>) {
        let rels: Vec<Symbol> = self
            .analysis
            .deps()
            .neg_inverse(p)
            .iter()
            .map(|i| self.analysis.index().rel(i))
            .collect();
        for rel in rels {
            let facts: Vec<Fact> = self.model.facts_of(rel).collect();
            for f in facts {
                let fails = match self.supports.get(&f) {
                    Some(pair) if self.config.signed => {
                        pair.neg_resolved_contains(p, self.analysis.deps())
                    }
                    Some(pair) => pair.neg.plain.contains(p),
                    None => true, // unknown support: be pessimistic
                };
                if fails {
                    self.model.remove(&f);
                    self.supports.remove(&f);
                    removed.insert(f);
                }
            }
        }
    }

    /// Removal phase for a decrease of `p`: drop facts whose resolved
    /// `Pos'` contains `p`. When `drop_all_of` is set (rule deletion), every
    /// non-asserted fact of that relation goes too — a single relation-level
    /// pair cannot tell which derivation used the deleted rule.
    fn removal_on_decrease(
        &mut self,
        p: u32,
        drop_all_of: Option<Symbol>,
        removed: &mut FxHashSet<Fact>,
    ) {
        let rels: Vec<Symbol> = self
            .analysis
            .deps()
            .pos_inverse(p)
            .iter()
            .map(|i| self.analysis.index().rel(i))
            .collect();
        for rel in rels {
            let facts: Vec<Fact> = self.model.facts_of(rel).collect();
            for f in facts {
                let fails = if drop_all_of == Some(rel) {
                    !self.program.is_asserted(&f)
                } else {
                    match self.supports.get(&f) {
                        Some(pair) if self.config.signed => {
                            pair.pos_resolved_contains(p, self.analysis.deps())
                        }
                        Some(pair) => pair.pos.plain.contains(p),
                        None => true,
                    }
                };
                if fails {
                    self.model.remove(&f);
                    self.supports.remove(&f);
                    removed.insert(f);
                }
            }
        }
    }

    fn rebuild_analysis(&mut self) -> Result<(), MaintenanceError> {
        self.analysis =
            Analysis::rebuild(&self.program, StratKind::Maximal, self.analysis.index_clone())
                .map_err(|e| MaintenanceError::Datalog(e.into()))?;
        Ok(())
    }

    fn finish(&self, removed: FxHashSet<Fact>, added: FxHashSet<Fact>, derivs: u64) -> UpdateStats {
        UpdateStats::from_sets(&removed, &added, derivs, self.support_bytes())
    }
}

impl MaintenanceEngine for DynamicSingleEngine {
    fn name(&self) -> &'static str {
        if self.config.signed {
            "dynamic-single"
        } else {
            "dynamic-single-naive"
        }
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn model(&self) -> &Database {
        &self.model
    }

    fn support_bytes(&self) -> usize {
        self.supports.values().map(SupportPair::heap_bytes).sum::<usize>()
            + self.supports.capacity()
                * (std::mem::size_of::<Fact>() + std::mem::size_of::<SupportPair>())
    }

    fn support_dump(&self) -> crate::support::SupportDump {
        let index = self.analysis.index();
        crate::support::SupportDump::from_entries(
            self.supports
                .iter()
                .map(|(f, pair)| (f.clone(), crate::support::FactSupport::Single(pair.dump(index))))
                .collect(),
        )
    }

    fn apply(&mut self, update: &Update) -> Result<UpdateStats, MaintenanceError> {
        let update = normalize(update);
        let mut removed = FxHashSet::default();
        let mut added = FxHashSet::default();
        let mut derivs = 0u64;
        match &update {
            Update::InsertFact(f) => {
                if self.program.is_asserted(f) {
                    return Ok(self.finish(removed, added, derivs));
                }
                self.program.assert_fact(f.clone()).map_err(MaintenanceError::Datalog)?;
                if self.analysis.rel(f.rel).is_none() {
                    self.rebuild_analysis().expect("fact insertion cannot unstratify");
                } else {
                    self.analysis.note_assert(f);
                }
                let p = self.analysis.rel(f.rel).expect("indexed");
                self.removal_on_increase(p, &mut removed);
                if self.model.insert(f.clone()) {
                    added.insert(f.clone());
                }
                // "then add p(t̄) with a support consisting of empty Pos and
                // Neg sets."
                self.supports.insert(f.clone(), SupportPair::empty(self.analysis.universe()));
                self.resaturate_from(self.analysis.stratum_of(f.rel), &mut added, &mut derivs);
            }
            Update::DeleteFact(f) => {
                retract_checked(&mut self.program, f)?;
                self.analysis.note_retract(f);
                let p = self.analysis.rel(f.rel).expect("indexed");
                // The fact itself leaves unconditionally; a single
                // relation-level support cannot witness other derivations.
                if self.model.remove(f) {
                    self.supports.remove(f);
                    removed.insert(f.clone());
                }
                self.removal_on_decrease(p, None, &mut removed);
                self.resaturate_from(self.analysis.stratum_of(f.rel), &mut added, &mut derivs);
            }
            Update::InsertRule(r) => {
                let id = add_rule_checked(&mut self.program, r)?;
                let old = self.analysis.clone();
                if let Err(e) = self.rebuild_analysis() {
                    self.program.remove_rule(id);
                    self.analysis = old;
                    let MaintenanceError::Datalog(strata_datalog::DatalogError::Stratification(s)) =
                        e
                    else {
                        return Err(e);
                    };
                    return Err(MaintenanceError::WouldUnstratify(s));
                }
                let p = self.analysis.rel(r.head.rel).expect("indexed");
                self.removal_on_increase(p, &mut removed);
                self.resaturate_from(self.analysis.stratum_of(r.head.rel), &mut added, &mut derivs);
            }
            Update::DeleteRule(r) => {
                let id = find_rule_checked(&self.program, r)?;
                let head = r.head.rel;
                let p = self.analysis.rel(head).expect("indexed");
                let affected: Vec<Symbol> = self
                    .analysis
                    .deps()
                    .pos_inverse(p)
                    .iter()
                    .map(|i| self.analysis.index().rel(i))
                    .collect();
                self.removal_on_decrease(p, Some(head), &mut removed);
                self.program.remove_rule(id);
                self.rebuild_analysis().expect("rule deletion cannot unstratify");
                let start =
                    affected.iter().map(|&rel| self.analysis.stratum_of(rel)).min().unwrap_or(0);
                self.resaturate_from(start, &mut added, &mut derivs);
            }
        }
        Ok(self.finish(removed, added, derivs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_matches_ground_truth;
    use strata_datalog::Rule;

    fn engine(src: &str) -> DynamicSingleEngine {
        DynamicSingleEngine::new(Program::parse(src).unwrap()).unwrap()
    }

    fn render(db: &Database) -> String {
        db.sorted_facts().iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
    }

    /// Paper §4.1 Example 1 (CONF): unlike the static engine, the dynamic
    /// engine does **not** migrate the asserted fact accepted(l+1).
    #[test]
    fn conf_example_keeps_asserted_fact() {
        let mut e = engine(
            "submitted(1). submitted(2). submitted(3). late(4). accepted(4).
             accepted(X) :- submitted(X), !rejected(X).",
        );
        let stats = e.insert_fact(Fact::parse("rejected(4)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("accepted(4)"));
        assert_matches_ground_truth(&e);
        // Derived accepted(1..3) still migrate (relation-level supports),
        // but accepted(4) — empty support — is never removed.
        assert_eq!(stats.removed, 3);
        assert_eq!(stats.migrated, 3);
    }

    /// Paper §4.2 Example 2: the signed solution handles the chain.
    #[test]
    fn chain_correct_with_signed_supports() {
        let mut e = engine("p1 :- !p0. p2 :- !p1. p3 :- !p2.");
        assert_eq!(render(e.model()), "p1 p3");
        e.insert_fact(Fact::parse("p0").unwrap()).unwrap();
        assert_eq!(render(e.model()), "p0 p2");
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("p0").unwrap()).unwrap();
        assert_eq!(render(e.model()), "p1 p3");
        assert_matches_ground_truth(&e);
    }

    /// Paper §4.2 Example 2: the naive (unsigned) solution is incorrect —
    /// inserting p0 fails to remove p3.
    #[test]
    fn chain_incorrect_without_signed_supports() {
        let mut e = DynamicSingleEngine::naive_unsigned(
            Program::parse("p1 :- !p0. p2 :- !p1. p3 :- !p2.").unwrap(),
        )
        .unwrap();
        e.insert_fact(Fact::parse("p0").unwrap()).unwrap();
        // True model is {p0, p2}; the naive engine keeps the spurious p3.
        assert!(e.model().contains_parsed("p3"), "naive variant should exhibit the bug");
        assert!(crate::verify::check_against_ground_truth(&e).is_err());
    }

    /// Paper §4.2 Example 3 (CONGRESS): with two derivations of
    /// accepted(l), the pairwise-smaller support (from `accepted(l) :-
    /// submitted(l)`) wins, so inserting rejected(l) does not migrate it.
    #[test]
    fn congress_prefers_smaller_support() {
        let mut e = engine(
            "submitted(1). submitted(2).
             accepted(X) :- submitted(X), !rejected(X).
             accepted(2) :- submitted(2).",
        );
        let sup = e.support_of(&Fact::parse("accepted(2)").unwrap()).unwrap();
        // The preferred support is Pos = {submitted}, Neg = ∅.
        assert!(sup.neg.plain.is_empty() && sup.neg.signed.is_empty());
        let stats = e.insert_fact(Fact::parse("rejected(2)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("accepted(2)"));
        assert_matches_ground_truth(&e);
        // accepted(1) migrates; accepted(2) does not.
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.migrated, 1);
    }

    /// Paper §4.2 Example 4 (MEET): one support per fact is not enough —
    /// accepted(a) migrates even though its second derivation survives.
    #[test]
    fn meet_single_support_migrates() {
        let mut e = engine(
            "submitted(a). in_pc(chair). author(chair, a).
             accepted(X) :- submitted(X), !rejected(X).
             accepted(Y) :- author(X, Y), in_pc(X).",
        );
        let stats = e.insert_fact(Fact::parse("rejected(a)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("accepted(a)"));
        assert_matches_ground_truth(&e);
        // Whether accepted(a) migrates depends on which support was kept;
        // the two pairs are incomparable, so the first derivation's support
        // survives. With the rule order above the negation-based support is
        // found first, so the fact migrates.
        assert_eq!(stats.migrated, 1, "single support loses the second derivation");
    }

    #[test]
    fn pods_round_trip() {
        let mut e = engine(
            "submitted(1). submitted(2). submitted(3). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        );
        e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("accepted(2)").unwrap()).unwrap();
        assert_matches_ground_truth(&e);
        assert!(e.model().contains_parsed("rejected(2)"));
    }

    #[test]
    fn deletion_keeps_unrelated_asserted_facts() {
        // Unlike the static engine, deleting e(3) does not disturb e(1), e(2).
        let mut e = engine("e(1). e(2). e(3). p(X) :- e(X).");
        let stats = e.delete_fact(Fact::parse("e(3)").unwrap()).unwrap();
        assert_matches_ground_truth(&e);
        // e(3) removed; all p-facts fail (relation-level Pos contains e);
        // p(1), p(2) migrate.
        assert_eq!(stats.removed, 4);
        assert_eq!(stats.migrated, 2);
        assert_eq!(stats.net_removed, 2); // e(3), p(3)
    }

    #[test]
    fn rule_updates_with_supports() {
        let mut e = engine("e(1). e(2). f(2).");
        e.insert_rule(Rule::parse("p(X) :- e(X), !f(X).").unwrap()).unwrap();
        assert!(e.model().contains_parsed("p(1)"));
        assert_matches_ground_truth(&e);
        e.insert_rule(Rule::parse("q(X) :- p(X).").unwrap()).unwrap();
        assert!(e.model().contains_parsed("q(1)"));
        e.delete_rule(Rule::parse("p(X) :- e(X), !f(X).").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("p(1)"));
        assert!(!e.model().contains_parsed("q(1)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn unstratifying_rule_rolled_back() {
        let mut e = engine("e(1). p(X) :- e(X), !q(X).");
        let before = e.model().clone();
        assert!(e.insert_rule(Rule::parse("q(X) :- e(X), !p(X).").unwrap()).is_err());
        assert_eq!(e.model(), &before);
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn supports_are_rebuilt_for_migrated_facts() {
        let mut e = engine(
            "s(1). c(1).
             b(X) :- s(X), !c(X).
             a(X) :- s(X), !b(X).",
        );
        assert!(e.model().contains_parsed("a(1)"));
        e.delete_fact(Fact::parse("c(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("a(1)"));
        assert!(e.model().contains_parsed("b(1)"));
        assert_matches_ground_truth(&e);
        // And back.
        e.insert_fact(Fact::parse("c(1)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("a(1)"));
        assert_matches_ground_truth(&e);
    }
}
