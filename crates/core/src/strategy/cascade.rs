//! §5.1 — the cascade solution with one-level rule-pointer supports.
//!
//! "Insertions inside N_i can lead to deletions and insertions inside N_{i+1}
//! which in turn can lead to deletions and insertions inside N_{i+2}, etc."
//!
//! The engine keeps, for each fact, the set of pointers to the rules that
//! fired it (plus an *asserted* flag), and per update walks the strata in
//! order, alternating removal and saturation while accumulating the `INC`
//! and `DEC` sets of relations incremented/decremented so far. A support
//! pointer *fails* when the rule's positive relations meet `DEC` or its
//! negative relations meet `INC`; a fact leaves when all pointers fail.
//!
//! Because all facts produced in one delta are deduced by the same rule,
//! this support form works with the delta-driven mechanism (§5.2) — the
//! reason the paper concludes it is "clearly preferable" for databases.
//!
//! **Reconstruction notes.**
//!
//! 1. The paper's pseudocode orders each stratum as REMOVEPOS; REMOVENEG;
//!    SATURATE, yet its closing example claims that in
//!    `{r ← p, q ← r, q ← ¬p}` the insertion of `p` never removes `q`.
//!    Under the literal order `q` *is* removed (its only support `{¬p}`
//!    fails before `q ← r` ever fires). We restore the claimed behaviour
//!    soundly with a **pre-saturation** phase: rules whose body lies
//!    entirely in lower — already final — strata fire on the accumulated
//!    deltas *before* the removal phase, enriching supports with
//!    derivations that cannot be unfounded. Disable via
//!    [`CascadeConfig::presaturate`] to measure the literal pseudocode
//!    (experiment E6 compares both).
//! 2. Relation-level pointer supports cannot detect **within-stratum
//!    unfounded cycles**: in `{a ← seed, a ← b, b ← a}`, deleting `seed`
//!    fails only the first pointer, and the `a ↔ b` pointers keep each
//!    other alive although neither relation ever decreased. The paper's
//!    procedures are silent on this case. Touched *recursive* strata are
//!    therefore processed by a **groundedness sweep** — recompute the
//!    stratum's fixpoint from the final lower strata, rebuilding pointers —
//!    which is exact and charges no migration. Non-recursive strata (the
//!    common case, and every example in the paper) keep the cheap pointer
//!    phases.

use rustc_hash::{FxHashMap, FxHashSet};
use strata_datalog::eval::matcher::for_each_match;
use strata_datalog::eval::par;
use strata_datalog::eval::plan::MatchScratch;
use strata_datalog::eval::seminaive::DeltaStats;
use strata_datalog::eval::NewFactSink;
use strata_datalog::model::StratKind;
use strata_datalog::{Database, Fact, Parallelism, Program, RelSet, RuleId, Symbol};

use crate::analysis::Analysis;
use crate::engine::{normalize, MaintenanceEngine, MaintenanceError, Update};
use crate::stats::UpdateStats;
use crate::strategy::{add_rule_checked, find_rule_checked, retract_checked};
use crate::support::RuleSupport;

/// Configuration for [`CascadeEngine`].
#[derive(Clone, Copy, Debug)]
pub struct CascadeConfig {
    /// Skip strata in which no rule depends on `INC ∪ DEC` (the paper's
    /// stated improvement of the while loop).
    pub skip_unaffected: bool,
    /// Fire lower-strata-only rules before each removal phase (see the
    /// module docs reconstruction note).
    pub presaturate: bool,
    /// Worker threads for per-stratum saturation. Sequential by default;
    /// results are bit-identical at any setting (see
    /// [`strata_datalog::eval::par`]).
    pub parallelism: Parallelism,
}

impl Default for CascadeConfig {
    fn default() -> CascadeConfig {
        CascadeConfig {
            skip_unaffected: true,
            presaturate: true,
            parallelism: Parallelism::sequential(),
        }
    }
}

/// Per-rule relation signature used for support-failure tests: all failure
/// checks are relation-level, so they can be precomputed per rule.
#[derive(Clone, Debug)]
struct RuleSig {
    pos: RelSet,
    neg: RelSet,
    /// Highest stratum among body relations; a rule qualifies for
    /// pre-saturation at stratum `s` iff this is `< s`.
    max_body_stratum: usize,
}

struct CascadeSink<'a> {
    supports: &'a mut FxHashMap<Fact, RuleSupport>,
}

impl NewFactSink for CascadeSink<'_> {
    fn on_new_fact(&mut self, rule: RuleId, fact: &Fact) {
        self.supports.entry(fact.clone()).or_default().rules.insert(rule);
    }

    fn on_existing_fact(&mut self, rule: RuleId, fact: &Fact) {
        self.supports.entry(fact.clone()).or_default().rules.insert(rule);
    }
}

/// The paper's §5.1 engine.
pub struct CascadeEngine {
    /// `"cascade"`, or `"cascade-parallel"` when built via
    /// [`CascadeEngine::parallel`] — the registry requires engines to
    /// report their registered name.
    name: &'static str,
    program: Program,
    analysis: Analysis,
    model: Database,
    supports: FxHashMap<Fact, RuleSupport>,
    rule_sigs: FxHashMap<RuleId, RuleSig>,
    config: CascadeConfig,
}

impl CascadeEngine {
    /// Builds the engine with the default configuration.
    pub fn new(program: Program) -> Result<CascadeEngine, MaintenanceError> {
        Self::with_config(program, CascadeConfig::default())
    }

    /// Builds the `cascade-parallel` variant: the same engine with
    /// per-stratum saturation sharded across `parallelism` workers.
    pub fn parallel(
        program: Program,
        parallelism: Parallelism,
    ) -> Result<CascadeEngine, MaintenanceError> {
        let mut engine =
            Self::with_config(program, CascadeConfig { parallelism, ..CascadeConfig::default() })?;
        engine.name = "cascade-parallel";
        Ok(engine)
    }

    /// Builds the engine with an explicit configuration.
    pub fn with_config(
        program: Program,
        config: CascadeConfig,
    ) -> Result<CascadeEngine, MaintenanceError> {
        let analysis = Analysis::build(&program, StratKind::Maximal)
            .map_err(|e| MaintenanceError::Datalog(e.into()))?;
        let rule_sigs = build_sigs(&program, &analysis);
        let mut engine = CascadeEngine {
            name: "cascade",
            program,
            analysis,
            model: Database::new(),
            supports: FxHashMap::default(),
            rule_sigs,
            config,
        };
        engine.construct_initial();
        Ok(engine)
    }

    /// The rule-pointer support of a fact (for tests/inspection).
    pub fn support_of(&self, fact: &Fact) -> Option<&RuleSupport> {
        self.supports.get(fact)
    }

    fn construct_initial(&mut self) {
        let strata = self.analysis.strata();
        let par = self.config.parallelism;
        let mut stats = DeltaStats::default();
        for s in 0..strata.num_strata() {
            for f in strata.facts_of(s) {
                self.model.insert(f.clone());
                self.supports.entry(f.clone()).or_default().asserted = true;
            }
            let mut sink = CascadeSink { supports: &mut self.supports };
            par::saturate(&mut self.model, strata.rules_of(s), &mut sink, &mut stats, par);
        }
    }

    fn rebuild_all(&mut self) -> Result<(), strata_datalog::StratificationError> {
        self.analysis =
            Analysis::rebuild(&self.program, StratKind::Maximal, self.analysis.index_clone())?;
        self.rule_sigs = build_sigs(&self.program, &self.analysis);
        Ok(())
    }

    /// The per-stratum cascade: pre-saturate, remove to fixpoint, saturate.
    #[allow(clippy::too_many_arguments)]
    fn cascade_from(
        &mut self,
        start: usize,
        mut added_list: Vec<Fact>,
        mut removed_list: Vec<Fact>,
        mut first_candidates: Vec<Fact>,
        removed: &mut FxHashSet<Fact>,
        added: &mut FxHashSet<Fact>,
        derivs: &mut u64,
    ) {
        let universe = self.analysis.universe();
        let mut inc = RelSet::empty(universe);
        let mut dec = RelSet::empty(universe);
        for f in &added_list {
            inc.insert(self.analysis.rel(f.rel).expect("indexed"));
        }
        for f in &removed_list {
            dec.insert(self.analysis.rel(f.rel).expect("indexed"));
        }
        let num_strata = self.analysis.strata().num_strata();
        for s in start..num_strata {
            // Re-derivation candidates are released at their own stratum
            // (batched deletes can span several).
            let mut candidates: Vec<Fact> = Vec::new();
            first_candidates.retain(|f| {
                if self.analysis.stratum_of(f.rel) == s {
                    candidates.push(f.clone());
                    false
                } else {
                    true
                }
            });

            // Skip strata whose rules touch nothing in INC ∪ DEC.
            let touched = self.analysis.strata().rules_of(s).iter().any(|cr| {
                let sig = &self.rule_sigs[&cr.id()];
                sig.pos.intersects(&inc)
                    || sig.pos.intersects(&dec)
                    || sig.neg.intersects(&inc)
                    || sig.neg.intersects(&dec)
            });
            if self.config.skip_unaffected && !touched && candidates.is_empty() {
                continue;
            }

            // Recursive strata get a groundedness sweep instead of the
            // pointer phases: relation-level pointers cannot detect
            // within-stratum unfounded cycles (a ← b, b ← a keep each
            // other's pointer alive after their external seed is deleted —
            // neither relation ever "decreases"). The paper's pseudocode is
            // silent on this case; recomputing the touched recursive
            // stratum from the (final) lower strata is exact, rebuilds the
            // pointers, and reports only net changes.
            let recursive = self
                .analysis
                .strata()
                .rules_of(s)
                .iter()
                .any(|cr| self.rule_sigs[&cr.id()].max_body_stratum == s);
            if recursive {
                self.sweep_stratum(
                    s,
                    &mut inc,
                    &mut dec,
                    &mut added_list,
                    &mut removed_list,
                    removed,
                    added,
                    derivs,
                );
                continue;
            }

            // Phase A: pre-saturation over finalized lower strata.
            if self.config.presaturate {
                let new_facts = self.presaturate_stratum(s, &added_list, &removed_list, derivs);
                for f in new_facts {
                    inc.insert(self.analysis.rel(f.rel).expect("indexed"));
                    added.insert(f.clone());
                    added_list.push(f);
                }
            }

            // Phase B: removal to fixpoint (within-stratum removals extend
            // DEC and can fail further supports).
            loop {
                let mut any = false;
                let stratum_rels: Vec<u32> =
                    self.analysis.strata().stratification().stratum(s).to_vec();
                for rel_ix in stratum_rels {
                    let rel = self.analysis.index().rel(rel_ix);
                    let facts: Vec<Fact> = self.model.facts_of(rel).collect();
                    for f in facts {
                        let sigs = &self.rule_sigs;
                        let dead = {
                            let Some(sup) = self.supports.get_mut(&f) else { continue };
                            sup.rules.retain(|rid| {
                                let sig = &sigs[rid];
                                !(sig.pos.intersects(&dec) || sig.neg.intersects(&inc))
                            });
                            !sup.is_alive()
                        };
                        if dead {
                            self.model.remove(&f);
                            self.supports.remove(&f);
                            removed.insert(f.clone());
                            removed_list.push(f.clone());
                            candidates.push(f);
                            dec.insert(rel_ix);
                            any = true;
                        }
                    }
                }
                if !any {
                    break;
                }
            }

            // Phase C: incremental saturation — rederive removal victims,
            // fire on removed tuples (negative positions) and added tuples
            // (positive positions).
            let mut sink = CascadeSink { supports: &mut self.supports };
            let mut dstats = DeltaStats::default();
            let new = par::stratum_saturate(
                &mut self.model,
                self.analysis.strata().rules_of(s),
                &added_list,
                &removed_list,
                &candidates,
                &mut sink,
                &mut dstats,
                self.config.parallelism,
            );
            *derivs += dstats.firings;
            for f in new {
                inc.insert(self.analysis.rel(f.rel).expect("indexed"));
                added.insert(f.clone());
                added_list.push(f);
            }
        }
    }

    /// Groundedness sweep for a touched recursive stratum: empty the
    /// stratum's derived facts, re-inject its asserted facts, and saturate
    /// from the final lower strata, rebuilding pointer supports. Facts that
    /// fail to return were unfounded; facts that return are never reported
    /// as removed (no migration is charged for the sweep).
    #[allow(clippy::too_many_arguments)]
    fn sweep_stratum(
        &mut self,
        s: usize,
        inc: &mut RelSet,
        dec: &mut RelSet,
        added_list: &mut Vec<Fact>,
        removed_list: &mut Vec<Fact>,
        removed: &mut FxHashSet<Fact>,
        added: &mut FxHashSet<Fact>,
        derivs: &mut u64,
    ) {
        let stratum_rels: Vec<u32> = self.analysis.strata().stratification().stratum(s).to_vec();
        let mut resident: FxHashSet<Fact> = FxHashSet::default();
        for &rel_ix in &stratum_rels {
            let rel = self.analysis.index().rel(rel_ix);
            resident.extend(self.model.facts_of(rel));
        }
        for f in &resident {
            self.model.remove(f);
            self.supports.remove(f);
        }
        for f in self.program.facts() {
            if self.analysis.stratum_of(f.rel) == s {
                self.model.insert(f.clone());
                self.supports.entry(f.clone()).or_default().asserted = true;
            }
        }
        let mut sink = CascadeSink { supports: &mut self.supports };
        let mut dstats = DeltaStats::default();
        par::saturate(
            &mut self.model,
            self.analysis.strata().rules_of(s),
            &mut sink,
            &mut dstats,
            self.config.parallelism,
        );
        *derivs += dstats.firings;
        // Net diff against the pre-sweep residents.
        for f in &resident {
            if !self.model.contains(f) {
                dec.insert(self.analysis.rel(f.rel).expect("indexed"));
                removed.insert(f.clone());
                removed_list.push(f.clone());
            }
        }
        for &rel_ix in &stratum_rels {
            let rel = self.analysis.index().rel(rel_ix);
            let now: Vec<Fact> = self.model.facts_of(rel).collect();
            for f in now {
                if !resident.contains(&f) {
                    inc.insert(rel_ix);
                    added.insert(f.clone());
                    added_list.push(f);
                }
            }
        }
    }

    /// Phase A: fire rules of stratum `s` whose body lies entirely in lower
    /// strata, restricted to the accumulated deltas. Existing heads gain the
    /// rule pointer (saving them from the removal phase); new heads enter
    /// the model. Sound because every lower stratum is already final.
    fn presaturate_stratum(
        &mut self,
        s: usize,
        added_list: &[Fact],
        removed_list: &[Fact],
        derivs: &mut u64,
    ) -> Vec<Fact> {
        let added_by_rel = group(added_list);
        let removed_by_rel = group(removed_list);
        let mut scratch = MatchScratch::new();
        let mut new_facts: Vec<Fact> = Vec::new();
        for cr in self.analysis.strata().rules_of(s) {
            let rid = cr.id();
            if self.rule_sigs[&rid].max_body_stratum >= s {
                continue;
            }
            for (li, lit) in cr.rule().body.iter().enumerate() {
                let drel = if lit.positive {
                    added_by_rel.get(&lit.atom.rel)
                } else {
                    removed_by_rel.get(&lit.atom.rel)
                };
                let Some(drel) = drel else { continue };
                *derivs += 1;
                let mut out: Vec<(Fact, bool)> = Vec::new();
                par::collect_delta_heads(
                    cr.delta_plan(li),
                    &self.model,
                    drel,
                    self.config.parallelism,
                    &mut scratch,
                    &mut out,
                );
                for (f, existed) in out {
                    if existed {
                        self.supports.entry(f).or_default().rules.insert(rid);
                    } else if self.model.insert(f.clone()) {
                        self.supports.entry(f.clone()).or_default().rules.insert(rid);
                        new_facts.push(f);
                    }
                }
            }
        }
        new_facts
    }

    fn finish(&self, removed: FxHashSet<Fact>, added: FxHashSet<Fact>, derivs: u64) -> UpdateStats {
        UpdateStats::from_sets(&removed, &added, derivs, self.support_bytes())
    }
}

fn group(facts: &[Fact]) -> FxHashMap<Symbol, strata_datalog::Relation> {
    let mut by_rel: FxHashMap<Symbol, strata_datalog::Relation> = FxHashMap::default();
    for f in facts {
        by_rel
            .entry(f.rel)
            .or_insert_with(|| strata_datalog::Relation::new(f.arity()))
            .insert(f.args.clone());
    }
    by_rel
}

fn build_sigs(program: &Program, analysis: &Analysis) -> FxHashMap<RuleId, RuleSig> {
    let universe = analysis.universe();
    program
        .rules()
        .map(|(rid, rule)| {
            let pos = RelSet::from_indices(
                universe,
                rule.pos_body_rels().iter().map(|&r| analysis.rel(r).expect("indexed")),
            );
            let neg = RelSet::from_indices(
                universe,
                rule.neg_body_rels().iter().map(|&r| analysis.rel(r).expect("indexed")),
            );
            let max_body_stratum = rule
                .pos_body_rels()
                .iter()
                .chain(rule.neg_body_rels().iter())
                .map(|&r| analysis.stratum_of(r))
                .max()
                .unwrap_or(0);
            (rid, RuleSig { pos, neg, max_body_stratum })
        })
        .collect()
}

impl MaintenanceEngine for CascadeEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) -> bool {
        self.config.parallelism = parallelism;
        true
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn model(&self) -> &Database {
        &self.model
    }

    fn support_bytes(&self) -> usize {
        self.supports.values().map(RuleSupport::heap_bytes).sum::<usize>()
            + self.supports.capacity()
                * (std::mem::size_of::<Fact>() + std::mem::size_of::<RuleSupport>())
    }

    fn support_dump(&self) -> crate::support::SupportDump {
        // Rule pointers are rendered as rule text: slot indices are not
        // stable across a snapshot round-trip (snapshots re-pack deleted
        // slots), rule structure is.
        crate::support::SupportDump::from_entries(
            self.supports
                .iter()
                .map(|(fact, sup)| {
                    let mut rules: Vec<String> = sup
                        .rules
                        .iter()
                        .filter_map(|id| self.program.rule(*id))
                        .map(|r| r.to_string())
                        .collect();
                    rules.sort();
                    (
                        fact.clone(),
                        crate::support::FactSupport::Rules { asserted: sup.asserted, rules },
                    )
                })
                .collect(),
        )
    }

    /// Batched fact updates walk the strata **once** for the whole group:
    /// all program changes are validated and staged first, then a single
    /// cascade propagates the combined deltas. Batches containing rule
    /// updates fall back to the default sequential path.
    fn apply_all(&mut self, updates: &[Update]) -> Result<UpdateStats, MaintenanceError> {
        let normalized: Vec<Update> = updates.iter().map(normalize).collect();
        if normalized.iter().any(|u| matches!(u, Update::InsertRule(_) | Update::DeleteRule(_))) {
            // Mixed batches: sequential default (rule updates rebuild the
            // analysis, which invalidates a shared stratum walk).
            return crate::engine::apply_all_sequential(self, updates);
        }

        // Stage 1: validate & apply all program changes (rolled back in
        // full on the first invalid update — nothing has touched the model
        // yet).
        let mut staged: Vec<Update> = Vec::new();
        for u in &normalized {
            let result = match u {
                Update::InsertFact(f) => {
                    if self.program.is_asserted(f) {
                        continue; // no-op inside the batch
                    }
                    self.program
                        .assert_fact(f.clone())
                        .map(|_| ())
                        .map_err(MaintenanceError::Datalog)
                }
                Update::DeleteFact(f) => retract_checked(&mut self.program, f),
                _ => unreachable!("rule updates handled above"),
            };
            if let Err(e) = result {
                for done in staged.iter().rev() {
                    match done {
                        Update::InsertFact(f) => {
                            self.program.retract_fact(f);
                        }
                        Update::DeleteFact(f) => {
                            self.program.assert_fact(f.clone()).expect("restoring fact");
                        }
                        _ => unreachable!(),
                    }
                }
                return Err(e);
            }
            staged.push(u.clone());
        }
        let introduces_new_rel = staged.iter().any(|u| match u {
            Update::InsertFact(f) => self.analysis.rel(f.rel).is_none(),
            _ => false,
        });
        if introduces_new_rel {
            self.rebuild_all().expect("fact insertion cannot unstratify");
        }

        // Stage 2: apply the combined deltas to the model, then cascade once.
        let mut removed = FxHashSet::default();
        let mut added = FxHashSet::default();
        let mut derivs = 0u64;
        let mut added_list = Vec::new();
        let mut removed_list = Vec::new();
        let mut candidates = Vec::new();
        let mut start = usize::MAX;
        for u in &staged {
            match u {
                Update::InsertFact(f) => {
                    start = start.min(self.analysis.stratum_of(f.rel));
                    let sup = self.supports.entry(f.clone()).or_default();
                    sup.asserted = true;
                    if self.model.insert(f.clone()) {
                        added.insert(f.clone());
                        added_list.push(f.clone());
                    }
                }
                Update::DeleteFact(f) => {
                    start = start.min(self.analysis.stratum_of(f.rel));
                    let alive = {
                        let sup = self.supports.entry(f.clone()).or_default();
                        sup.asserted = false;
                        sup.is_alive()
                    };
                    if !alive {
                        self.model.remove(f);
                        self.supports.remove(f);
                        removed.insert(f.clone());
                        removed_list.push(f.clone());
                        candidates.push(f.clone());
                    }
                }
                _ => unreachable!(),
            }
        }
        if start == usize::MAX {
            return Ok(self.finish(removed, added, derivs)); // all no-ops
        }
        // A fact both inserted and deleted by the batch nets out in the
        // lists; the cascade handles overlapping deltas per stratum.
        self.cascade_from(
            start,
            added_list,
            removed_list,
            candidates,
            &mut removed,
            &mut added,
            &mut derivs,
        );
        Ok(self.finish(removed, added, derivs))
    }

    fn apply(&mut self, update: &Update) -> Result<UpdateStats, MaintenanceError> {
        let update = normalize(update);
        let mut removed = FxHashSet::default();
        let mut added = FxHashSet::default();
        let mut derivs = 0u64;
        match &update {
            Update::InsertFact(f) => {
                if self.program.is_asserted(f) {
                    return Ok(self.finish(removed, added, derivs));
                }
                self.program.assert_fact(f.clone()).map_err(MaintenanceError::Datalog)?;
                if self.analysis.rel(f.rel).is_none() {
                    self.rebuild_all().expect("fact insertion cannot unstratify");
                }
                if self.model.contains(f) {
                    // Already derivable: only the trivial derivation is new.
                    self.supports.entry(f.clone()).or_default().asserted = true;
                    return Ok(self.finish(removed, added, derivs));
                }
                self.model.insert(f.clone());
                self.supports.entry(f.clone()).or_default().asserted = true;
                added.insert(f.clone());
                self.cascade_from(
                    self.analysis.stratum_of(f.rel),
                    vec![f.clone()],
                    Vec::new(),
                    Vec::new(),
                    &mut removed,
                    &mut added,
                    &mut derivs,
                );
            }
            Update::DeleteFact(f) => {
                retract_checked(&mut self.program, f)?;
                let alive = {
                    let sup = self.supports.entry(f.clone()).or_default();
                    sup.asserted = false;
                    sup.is_alive()
                };
                if alive {
                    // Surviving rule pointers witness valid derivations:
                    // the model is unchanged.
                    return Ok(self.finish(removed, added, derivs));
                }
                self.model.remove(f);
                self.supports.remove(f);
                removed.insert(f.clone());
                self.cascade_from(
                    self.analysis.stratum_of(f.rel),
                    Vec::new(),
                    vec![f.clone()],
                    vec![f.clone()],
                    &mut removed,
                    &mut added,
                    &mut derivs,
                );
            }
            Update::InsertRule(r) => {
                let id = add_rule_checked(&mut self.program, r)?;
                if let Err(e) = self.rebuild_all() {
                    self.program.remove_rule(id);
                    self.rebuild_all().expect("previous program was stratified");
                    return Err(MaintenanceError::WouldUnstratify(e));
                }
                // Fire the new rule once in full over the current model.
                let rule = self.program.rule(id).expect("just inserted").clone();
                let mut out: Vec<(Fact, bool)> = Vec::new();
                for_each_match(&self.model, &rule, None, |head, _, _| {
                    let existed = self.model.contains(&head);
                    out.push((head, existed));
                    true
                });
                derivs += out.len() as u64;
                let mut added_list = Vec::new();
                for (f, existed) in out {
                    if existed {
                        self.supports.entry(f).or_default().rules.insert(id);
                    } else if self.model.insert(f.clone()) {
                        self.supports.entry(f.clone()).or_default().rules.insert(id);
                        added.insert(f.clone());
                        added_list.push(f);
                    }
                }
                self.cascade_from(
                    self.analysis.stratum_of(r.head.rel),
                    added_list,
                    Vec::new(),
                    Vec::new(),
                    &mut removed,
                    &mut added,
                    &mut derivs,
                );
            }
            Update::DeleteRule(r) => {
                let id = find_rule_checked(&self.program, r)?;
                let head = r.head.rel;
                // Drop the pointer from every fact of the head relation.
                let facts: Vec<Fact> = self.model.facts_of(head).collect();
                let mut removed_list = Vec::new();
                let mut candidates = Vec::new();
                for f in facts {
                    let dead = {
                        let Some(sup) = self.supports.get_mut(&f) else { continue };
                        sup.rules.remove(&id);
                        !sup.is_alive()
                    };
                    if dead {
                        self.model.remove(&f);
                        self.supports.remove(&f);
                        removed.insert(f.clone());
                        removed_list.push(f.clone());
                        candidates.push(f);
                    }
                }
                self.program.remove_rule(id);
                self.rebuild_all().expect("rule deletion cannot unstratify");
                self.cascade_from(
                    self.analysis.stratum_of(head),
                    Vec::new(),
                    removed_list,
                    candidates,
                    &mut removed,
                    &mut added,
                    &mut derivs,
                );
            }
        }
        Ok(self.finish(removed, added, derivs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_matches_ground_truth;
    use strata_datalog::Rule;

    fn engine(src: &str) -> CascadeEngine {
        CascadeEngine::new(Program::parse(src).unwrap()).unwrap()
    }

    fn render(db: &Database) -> String {
        db.sorted_facts().iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
    }

    /// Paper §5.1's closing example: in {r ← p, q ← r, q ← ¬p}, INSERT(p)
    /// never removes q — with pre-saturation, q gains the q ← r pointer
    /// before the removal phase sees its failing ¬p support.
    #[test]
    fn cascade_example_no_removal_of_q() {
        let mut e = engine("r :- p. q :- r. q :- !p.");
        assert_eq!(render(e.model()), "q");
        let stats = e.insert_fact(Fact::parse("p").unwrap()).unwrap();
        assert_eq!(render(e.model()), "p q r");
        assert_matches_ground_truth(&e);
        assert_eq!(stats.removed, 0, "q must never be removed");
        assert_eq!(stats.migrated, 0);
        assert_eq!(stats.net_added, 2); // p, r
    }

    /// The same update with pre-saturation disabled follows the paper's
    /// literal pseudocode: q is removed, then re-inserted (it migrates) —
    /// exactly what §4.3 does and what §5.1 claims to improve upon.
    #[test]
    fn literal_pseudocode_migrates_q() {
        let mut e = CascadeEngine::with_config(
            Program::parse("r :- p. q :- r. q :- !p.").unwrap(),
            CascadeConfig { skip_unaffected: true, presaturate: false, ..CascadeConfig::default() },
        )
        .unwrap();
        let stats = e.insert_fact(Fact::parse("p").unwrap()).unwrap();
        assert_eq!(render(e.model()), "p q r");
        assert_matches_ground_truth(&e);
        assert_eq!(stats.removed, 1, "q is removed under the literal order");
        assert_eq!(stats.migrated, 1, "…and migrates back");
    }

    #[test]
    fn pods_round_trip() {
        let mut e = engine(
            "submitted(1). submitted(2). submitted(3). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        );
        e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("rejected(1)"));
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("accepted(2)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("rejected(2)"));
        assert_matches_ground_truth(&e);
    }

    /// CONF (Example 1): the asserted accepted fact never migrates, and
    /// unlike §4.2, the derived accepted facts don't either — their support
    /// pointer (rule accepted ← submitted ∧ ¬rejected) fails only at
    /// relation granularity… it does fail here, so they migrate. What the
    /// cascade saves is the *asserted* fact.
    #[test]
    fn conf_example() {
        let mut e = engine(
            "submitted(1). submitted(2). submitted(3). late(4). accepted(4).
             accepted(X) :- submitted(X), !rejected(X).",
        );
        let stats = e.insert_fact(Fact::parse("rejected(4)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("accepted(4)"));
        assert_matches_ground_truth(&e);
        // accepted(1..3) lose their only pointer (rejected ∈ INC) and
        // migrate; accepted(4) is asserted and survives.
        assert_eq!(stats.removed, 3);
        assert_eq!(stats.migrated, 3);
    }

    #[test]
    fn chain_insert_and_delete() {
        let mut e = engine("p1 :- !p0. p2 :- !p1. p3 :- !p2.");
        e.insert_fact(Fact::parse("p0").unwrap()).unwrap();
        assert_eq!(render(e.model()), "p0 p2");
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("p0").unwrap()).unwrap();
        assert_eq!(render(e.model()), "p1 p3");
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn meet_multiple_pointers_save_fact() {
        let mut e = engine(
            "submitted(a). in_pc(chair). author(chair, a).
             accepted(X) :- submitted(X), !rejected(X).
             accepted(Y) :- author(X, Y), in_pc(X).",
        );
        let sup = e.support_of(&Fact::parse("accepted(a)").unwrap()).unwrap();
        assert_eq!(sup.rules.len(), 2, "both rules recorded as pointers");
        let stats = e.insert_fact(Fact::parse("rejected(a)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("accepted(a)"));
        assert_eq!(stats.migrated, 0, "second pointer saves the fact");
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn retraction_of_derivable_fact_is_noop() {
        let mut e = engine(
            "submitted(1). accepted(1).
             accepted(X) :- submitted(X), !rejected(X).",
        );
        let stats = e.delete_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("accepted(1)"));
        assert_eq!(stats.removed, 0);
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn within_stratum_positive_recursion() {
        let mut e = engine(
            "e(1, 2). e(2, 3).
             p(X, Y) :- e(X, Y).
             p(X, Z) :- p(X, Y), e(Y, Z).",
        );
        e.insert_fact(Fact::parse("e(3, 4)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("p(1, 4)"));
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("e(2, 3)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("p(1, 3)"));
        assert!(!e.model().contains_parsed("p(1, 4)"));
        assert!(e.model().contains_parsed("p(3, 4)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn unfounded_cycle_is_not_kept() {
        // a and b support each other within a stratum; removing the external
        // seed must remove both (no unfounded mutual support).
        let mut e = engine("seed(1). a(X) :- seed(X). a(X) :- b(X). b(X) :- a(X).");
        assert!(e.model().contains_parsed("b(1)"));
        e.delete_fact(Fact::parse("seed(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("a(1)"));
        assert!(!e.model().contains_parsed("b(1)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn rule_insert_fires_and_cascades() {
        let mut e = engine("e(1). e(2). f(2). q(X) :- p(X).");
        e.insert_rule(Rule::parse("p(X) :- e(X), !f(X).").unwrap()).unwrap();
        assert!(e.model().contains_parsed("p(1)"));
        assert!(e.model().contains_parsed("q(1)"));
        assert!(!e.model().contains_parsed("p(2)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn rule_insert_can_shrink_higher_strata() {
        let mut e = engine("e(1). s(X) :- e(X), !p(X).");
        assert!(e.model().contains_parsed("s(1)"));
        e.insert_rule(Rule::parse("p(X) :- e(X).").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("s(1)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn rule_delete_drops_pointer_and_rederives() {
        let mut e = engine("e(1). f(1). p(X) :- e(X). p(X) :- f(X). q(X) :- p(X).");
        let stats = e.delete_rule(Rule::parse("p(X) :- e(X).").unwrap()).unwrap();
        assert!(e.model().contains_parsed("p(1)"));
        assert!(e.model().contains_parsed("q(1)"));
        // p(1) kept the second pointer: no removal at all.
        assert_eq!(stats.removed, 0);
        assert_matches_ground_truth(&e);
        // Deleting the second rule now removes p(1) and q(1).
        e.delete_rule(Rule::parse("p(X) :- f(X).").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("p(1)"));
        assert!(!e.model().contains_parsed("q(1)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn unstratifying_rule_rolled_back() {
        let mut e = engine("e(1). p(X) :- e(X), !q(X).");
        let before = e.model().clone();
        assert!(e.insert_rule(Rule::parse("q(X) :- e(X), !p(X).").unwrap()).is_err());
        assert_eq!(e.model(), &before);
        assert_matches_ground_truth(&e);
        // And the engine still updates correctly afterwards.
        e.insert_fact(Fact::parse("q(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("p(1)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn deep_alternation_cascades_through_strata() {
        let mut e = engine(
            "s(1).
             a(X) :- s(X), !z(X).
             b(X) :- s(X), !a(X).
             c(X) :- s(X), !b(X).",
        );
        assert!(e.model().contains_parsed("a(1)"));
        assert!(e.model().contains_parsed("c(1)"));
        e.insert_fact(Fact::parse("z(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("a(1)"));
        assert!(e.model().contains_parsed("b(1)"));
        assert!(!e.model().contains_parsed("c(1)"));
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("z(1)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("a(1)"));
        assert!(e.model().contains_parsed("c(1)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn skip_unaffected_strata_gives_same_result() {
        let src = "e(1). e(2). f(2).
                   p(X) :- e(X), !f(X).
                   q(X) :- p(X).
                   zz(X) :- w(X), !v(X). w(9).";
        let mut with_skip = CascadeEngine::with_config(
            Program::parse(src).unwrap(),
            CascadeConfig { skip_unaffected: true, presaturate: true, ..CascadeConfig::default() },
        )
        .unwrap();
        let mut without_skip = CascadeEngine::with_config(
            Program::parse(src).unwrap(),
            CascadeConfig { skip_unaffected: false, presaturate: true, ..CascadeConfig::default() },
        )
        .unwrap();
        for e in [&mut with_skip, &mut without_skip] {
            e.insert_fact(Fact::parse("f(1)").unwrap()).unwrap();
            e.delete_fact(Fact::parse("f(2)").unwrap()).unwrap();
            assert_matches_ground_truth(e);
        }
        assert_eq!(with_skip.model(), without_skip.model());
    }

    #[test]
    fn insert_already_derived_fact_only_flags_assertion() {
        let mut e = engine("e(1). p(X) :- e(X).");
        let stats = e.insert_fact(Fact::parse("p(1)").unwrap()).unwrap();
        assert_eq!(stats.removed + stats.net_added, 0);
        let sup = e.support_of(&Fact::parse("p(1)").unwrap()).unwrap();
        assert!(sup.asserted);
        assert_eq!(sup.rules.len(), 1);
        // Deleting e(1) keeps p(1): it is asserted now.
        e.delete_fact(Fact::parse("e(1)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("p(1)"));
        assert_matches_ground_truth(&e);
    }
}
