//! §5.2's discussed-and-rejected endpoint: **fact-level supports**.
//!
//! "One might consider a different form of supports in which not relations
//! but facts are recorded. This would be clearly preferable from the point
//! of view of minimization of migration. In fact, this form of supports
//! combined with an appropriate type of a saturation procedure keeping all
//! possible 'original' deductions would lead to a solution with no
//! migration. … However, this choice should be rejected in the framework of
//! databases" — the bookkeeping is prohibitive and the delta-driven
//! mechanism no longer applies.
//!
//! This engine implements that endpoint so the trade-off can be *measured*
//! (experiment E8/E11). Each fact carries a set of **entries**, one per
//! distinct proof shape, flattened to the leaves of the proof tree:
//!
//! * `pos` — the asserted facts the proof rests on,
//! * `neg` — the ground atoms the proof requires to be absent.
//!
//! An entry is an exact witness: if every `pos` fact is asserted and every
//! `neg` atom absent from the (final, lower-strata) model, the original
//! proof tree stands verbatim. Updates walk the strata bottom-up and keep a
//! fact iff some entry remains valid — facts are removed only when truly
//! underivable, so **nothing ever migrates** (asserted facts included: they
//! always hold the trivial entry). The price is label blow-up: the entry
//! sets are ATMS-style labels over fact assumptions (cf.
//! `strata-tms::bridge::FactSupports`), maintained here under negation too.

use rustc_hash::{FxHashMap, FxHashSet};
use strata_datalog::eval::naive::{self, SaturationStats};
use strata_datalog::eval::{Derivation, DerivationSink};
use strata_datalog::model::StratKind;
use strata_datalog::{Database, Fact, Program};

use crate::analysis::Analysis;
use crate::engine::{normalize, MaintenanceEngine, MaintenanceError, Update};
use crate::stats::UpdateStats;
use crate::strategy::{add_rule_checked, find_rule_checked, retract_checked};

/// One flattened proof witness: asserted leaves and required absences.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct FactEntry {
    /// Asserted facts the proof rests on (sorted, deduplicated).
    pub pos: Box<[Fact]>,
    /// Ground atoms the proof requires absent (sorted, deduplicated).
    pub neg: Box<[Fact]>,
}

impl FactEntry {
    fn assertion(fact: &Fact) -> FactEntry {
        FactEntry { pos: Box::from([fact.clone()]), neg: Box::from([]) }
    }

    fn subsumes(&self, other: &FactEntry) -> bool {
        // self ⊆ other component-wise (both sorted): self is the stronger
        // (smaller) witness.
        sorted_subset(&self.pos, &other.pos) && sorted_subset(&self.neg, &other.neg)
    }

    /// Whether the witness stands: leaves asserted, absences absent.
    fn valid(&self, asserted: &FxHashSet<Fact>, model: &Database) -> bool {
        self.pos.iter().all(|f| asserted.contains(f)) && self.neg.iter().all(|f| !model.contains(f))
    }

    fn heap_bytes(&self) -> usize {
        (self.pos.len() + self.neg.len()) * std::mem::size_of::<Fact>()
    }
}

fn sorted_subset(a: &[Fact], b: &[Fact]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

fn sorted_union(a: &[Fact], b: &[Fact]) -> Box<[Fact]> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend(a[i..].iter().cloned());
    out.extend(b[j..].iter().cloned());
    out.into()
}

/// The entry label of one fact: an antichain under [`FactEntry::subsumes`].
#[derive(Clone, Debug, Default)]
pub struct EntrySet {
    entries: Vec<FactEntry>,
}

impl EntrySet {
    /// The witnesses.
    pub fn entries(&self) -> &[FactEntry] {
        &self.entries
    }

    /// Inserts maintaining minimality; reports change.
    fn insert_minimal(&mut self, e: FactEntry) -> bool {
        if self.entries.iter().any(|x| x.subsumes(&e)) {
            return false;
        }
        self.entries.retain(|x| !e.subsumes(x));
        self.entries.push(e);
        true
    }

    fn heap_bytes(&self) -> usize {
        self.entries.iter().map(FactEntry::heap_bytes).sum::<usize>()
            + self.entries.capacity() * std::mem::size_of::<FactEntry>()
    }
}

struct FactSink<'a> {
    supports: &'a mut FxHashMap<Fact, EntrySet>,
    asserted: &'a FxHashSet<Fact>,
    /// Cap on entries per fact (`usize::MAX` = the paper's "all possible
    /// original deductions"). A finite cap trades the zero-migration
    /// guarantee for bounded bookkeeping.
    max_entries: usize,
}

impl DerivationSink for FactSink<'_> {
    fn on_derivation(&mut self, d: &Derivation<'_>) -> bool {
        // Cross product of body-fact entry sets, seeded with this rule's
        // direct negative checks.
        let mut acc: Vec<FactEntry> = vec![FactEntry {
            pos: Box::from([]),
            neg: {
                let mut n: Vec<Fact> = d.neg_body.to_vec();
                n.sort();
                n.dedup();
                n.into()
            },
        }];
        for bf in d.pos_body {
            let mut contributions: Vec<FactEntry> = Vec::new();
            if self.asserted.contains(bf) {
                contributions.push(FactEntry::assertion(bf));
            }
            if let Some(set) = self.supports.get(bf) {
                contributions.extend(set.entries.iter().cloned());
            }
            if contributions.is_empty() {
                return false; // body fact's entries not yet known; retry next pass
            }
            let mut next = Vec::with_capacity(acc.len() * contributions.len());
            for base in &acc {
                for c in &contributions {
                    next.push(FactEntry {
                        pos: sorted_union(&base.pos, &c.pos),
                        neg: sorted_union(&base.neg, &c.neg),
                    });
                    if next.len() > self.max_entries.saturating_mul(4) {
                        break; // soft guard against cross-product blow-up
                    }
                }
            }
            acc = next;
        }
        let set = self.supports.entry(d.head.clone()).or_default();
        let mut changed = false;
        for e in acc {
            if set.entries.len() >= self.max_entries {
                break;
            }
            if set.insert_minimal(e) {
                changed = true;
            }
        }
        changed
    }
}

/// The fact-level (zero-migration) engine. See the module docs.
pub struct FactLevelEngine {
    program: Program,
    analysis: Analysis,
    model: Database,
    asserted: FxHashSet<Fact>,
    supports: FxHashMap<Fact, EntrySet>,
    max_entries: usize,
}

impl FactLevelEngine {
    /// Builds the engine keeping all derivations (the paper's discussed
    /// form; exponential in the worst case).
    pub fn new(program: Program) -> Result<FactLevelEngine, MaintenanceError> {
        Self::with_cap(program, usize::MAX)
    }

    /// Builds the engine with a per-fact entry cap. A finite cap bounds the
    /// bookkeeping but may reintroduce migration (dropped witnesses).
    pub fn with_cap(
        program: Program,
        max_entries: usize,
    ) -> Result<FactLevelEngine, MaintenanceError> {
        let analysis = Analysis::build(&program, StratKind::Maximal)
            .map_err(|e| MaintenanceError::Datalog(e.into()))?;
        let asserted: FxHashSet<Fact> = program.facts().cloned().collect();
        let mut engine = FactLevelEngine {
            program,
            analysis,
            model: Database::new(),
            asserted,
            supports: FxHashMap::default(),
            max_entries,
        };
        let mut added = FxHashSet::default();
        let mut derivs = 0;
        engine.revalidate_and_saturate(0, &mut FxHashSet::default(), &mut added, &mut derivs);
        Ok(engine)
    }

    /// The entry label of a fact (for tests/inspection).
    pub fn entries_of(&self, fact: &Fact) -> Option<&EntrySet> {
        self.supports.get(fact)
    }

    /// Walks strata from `start`: drop facts with no valid witness, then
    /// saturate the stratum, enriching witnesses. Lower strata are final
    /// when a stratum is processed, so validity checks are exact — nothing
    /// valid is ever dropped, hence no migration (with an uncapped label).
    fn revalidate_and_saturate(
        &mut self,
        start: usize,
        removed: &mut FxHashSet<Fact>,
        added: &mut FxHashSet<Fact>,
        derivs: &mut u64,
    ) {
        let num_strata = self.analysis.strata().num_strata();
        for s in start..num_strata {
            // Removal: exact validity check per fact of this stratum.
            let stratum_rels: Vec<u32> =
                self.analysis.strata().stratification().stratum(s).to_vec();
            for rel_ix in stratum_rels {
                let rel = self.analysis.index().rel(rel_ix);
                let facts: Vec<Fact> = self.model.facts_of(rel).collect();
                for f in facts {
                    if self.asserted.contains(&f) {
                        continue; // the trivial entry always stands
                    }
                    let alive = self
                        .supports
                        .get_mut(&f)
                        .map(|set| {
                            let asserted = &self.asserted;
                            let model = &self.model;
                            set.entries.retain(|e| e.valid(asserted, model));
                            !set.entries.is_empty()
                        })
                        .unwrap_or(false);
                    if !alive {
                        self.model.remove(&f);
                        self.supports.remove(&f);
                        removed.insert(f);
                    }
                }
            }
            // Inject asserted facts of this stratum (live, from the program).
            for f in self.program.facts() {
                if self.analysis.stratum_of(f.rel) == s && self.model.insert(f.clone()) {
                    added.insert(f.clone());
                }
            }
            // Addition: naive saturation with witness bookkeeping.
            let mut sink = FactSink {
                supports: &mut self.supports,
                asserted: &self.asserted,
                max_entries: self.max_entries,
            };
            let mut stats = SaturationStats::default();
            let new = naive::saturate(
                &mut self.model,
                self.analysis.strata().rules_of(s),
                &mut sink,
                &mut stats,
            );
            *derivs += stats.derivations;
            added.extend(new);
        }
    }

    fn rebuild_analysis(&mut self) -> Result<(), MaintenanceError> {
        self.analysis =
            Analysis::rebuild(&self.program, StratKind::Maximal, self.analysis.index_clone())
                .map_err(|e| MaintenanceError::Datalog(e.into()))?;
        Ok(())
    }

    fn finish(&self, removed: FxHashSet<Fact>, added: FxHashSet<Fact>, derivs: u64) -> UpdateStats {
        UpdateStats::from_sets(&removed, &added, derivs, self.support_bytes())
    }
}

impl MaintenanceEngine for FactLevelEngine {
    fn name(&self) -> &'static str {
        "fact-level"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn model(&self) -> &Database {
        &self.model
    }

    fn support_bytes(&self) -> usize {
        self.supports.values().map(EntrySet::heap_bytes).sum::<usize>()
            + self.supports.capacity()
                * (std::mem::size_of::<Fact>() + std::mem::size_of::<EntrySet>())
    }

    fn support_dump(&self) -> crate::support::SupportDump {
        crate::support::SupportDump::from_entries(
            self.supports
                .iter()
                .map(|(f, set)| {
                    let mut entries: Vec<crate::support::WitnessDump> = set
                        .entries()
                        .iter()
                        .map(|e| {
                            let render = |fs: &[Fact]| {
                                let mut v: Vec<String> = fs.iter().map(|f| f.to_string()).collect();
                                v.sort();
                                v
                            };
                            crate::support::WitnessDump { pos: render(&e.pos), neg: render(&e.neg) }
                        })
                        .collect();
                    entries.sort();
                    (f.clone(), crate::support::FactSupport::Entries(entries))
                })
                .collect(),
        )
    }

    fn apply(&mut self, update: &Update) -> Result<UpdateStats, MaintenanceError> {
        let update = normalize(update);
        let mut removed = FxHashSet::default();
        let mut added = FxHashSet::default();
        let mut derivs = 0u64;
        match &update {
            Update::InsertFact(f) => {
                if self.program.is_asserted(f) {
                    return Ok(self.finish(removed, added, derivs));
                }
                self.program.assert_fact(f.clone()).map_err(MaintenanceError::Datalog)?;
                if self.analysis.rel(f.rel).is_none() {
                    self.rebuild_analysis().expect("fact insertion cannot unstratify");
                }
                self.asserted.insert(f.clone());
                if self.model.insert(f.clone()) {
                    added.insert(f.clone());
                }
                let start = self.analysis.stratum_of(f.rel);
                self.revalidate_and_saturate(start, &mut removed, &mut added, &mut derivs);
            }
            Update::DeleteFact(f) => {
                retract_checked(&mut self.program, f)?;
                self.asserted.remove(f);
                let start = self.analysis.stratum_of(f.rel);
                // The fact itself survives iff a non-trivial witness stands;
                // the stratum walk decides that exactly.
                self.revalidate_and_saturate(start, &mut removed, &mut added, &mut derivs);
            }
            Update::InsertRule(r) => {
                let id = add_rule_checked(&mut self.program, r)?;
                let old = self.analysis.clone();
                if let Err(e) = self.rebuild_analysis() {
                    self.program.remove_rule(id);
                    self.analysis = old;
                    let MaintenanceError::Datalog(strata_datalog::DatalogError::Stratification(s)) =
                        e
                    else {
                        return Err(e);
                    };
                    return Err(MaintenanceError::WouldUnstratify(s));
                }
                let start = self.analysis.stratum_of(r.head.rel);
                self.revalidate_and_saturate(start, &mut removed, &mut added, &mut derivs);
            }
            Update::DeleteRule(r) => {
                let id = find_rule_checked(&self.program, r)?;
                self.program.remove_rule(id);
                self.rebuild_analysis().expect("rule deletion cannot unstratify");
                // Witnesses do not record rules, so a rule deletion
                // invalidates them wholesale: rebuild the labels of every
                // fact of the head's stratum and above by dropping them and
                // revalidating from scratch there.
                let start = self.analysis.stratum_of(r.head.rel);
                let num = self.analysis.strata().num_strata();
                for s in start..num {
                    let rels: Vec<u32> =
                        self.analysis.strata().stratification().stratum(s).to_vec();
                    for rel_ix in rels {
                        let rel = self.analysis.index().rel(rel_ix);
                        let facts: Vec<Fact> = self.model.facts_of(rel).collect();
                        for f in facts {
                            self.supports.remove(&f);
                            if !self.asserted.contains(&f) {
                                self.model.remove(&f);
                                removed.insert(f);
                            }
                        }
                    }
                }
                self.revalidate_and_saturate(start, &mut removed, &mut added, &mut derivs);
            }
        }
        Ok(self.finish(removed, added, derivs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_matches_ground_truth;
    use strata_datalog::Rule;

    fn engine(src: &str) -> FactLevelEngine {
        FactLevelEngine::new(Program::parse(src).unwrap()).unwrap()
    }

    fn fact(s: &str) -> Fact {
        Fact::parse(s).unwrap()
    }

    #[test]
    fn conf_example_zero_migration() {
        // Example 1: where the static engine migrates 4 facts and the
        // cascade 3, fact-level supports migrate none.
        let mut e = engine(
            "submitted(1). submitted(2). submitted(3). late(4). accepted(4).
             accepted(X) :- submitted(X), !rejected(X).",
        );
        let stats = e.insert_fact(fact("rejected(4)")).unwrap();
        assert_matches_ground_truth(&e);
        assert_eq!(stats.migrated, 0);
        assert_eq!(stats.removed, 0, "no accepted(i) depends on rejected(4)");
    }

    #[test]
    fn pods_round_trip_no_migration() {
        let mut e = engine(
            "submitted(1). submitted(2). submitted(3). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        );
        let s1 = e.insert_fact(fact("accepted(1)")).unwrap();
        assert_matches_ground_truth(&e);
        assert_eq!(s1.migrated, 0);
        assert_eq!(s1.net_removed, 1); // rejected(1)
        let s2 = e.delete_fact(fact("accepted(1)")).unwrap();
        assert_matches_ground_truth(&e);
        assert_eq!(s2.migrated, 0);
        assert_eq!(s2.net_added, 1); // rejected(1) back
    }

    #[test]
    fn meet_second_derivation_preserves_fact() {
        let mut e = engine(
            "submitted(a). in_pc(chair). author(chair, a).
             accepted(X) :- submitted(X), !rejected(X).
             accepted(Y) :- author(X, Y), in_pc(X).",
        );
        let stats = e.insert_fact(fact("rejected(a)")).unwrap();
        assert!(e.model().contains_parsed("accepted(a)"));
        assert_eq!(stats.migrated, 0);
        assert_eq!(stats.removed, 0);
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn chain_example_exact() {
        let mut e = engine("p1 :- !p0. p2 :- !p1. p3 :- !p2.");
        let s = e.insert_fact(fact("p0")).unwrap();
        assert_matches_ground_truth(&e);
        assert_eq!(s.migrated, 0);
        e.delete_fact(fact("p0")).unwrap();
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn transitive_closure_alternative_paths() {
        let mut e = engine(
            "e(1, 2). e(2, 4). e(1, 3). e(3, 4).
             p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).",
        );
        // p(1,4) has two witnesses; deleting one edge keeps it, migration 0.
        let stats = e.delete_fact(fact("e(1, 2)")).unwrap();
        assert!(e.model().contains_parsed("p(1, 4)"));
        assert_eq!(stats.migrated, 0);
        assert_matches_ground_truth(&e);
        // Deleting the second path finally removes it.
        e.delete_fact(fact("e(3, 4)")).unwrap();
        assert!(!e.model().contains_parsed("p(1, 4)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn entries_flatten_to_asserted_leaves() {
        let e = engine("e(1, 2). e(2, 3). p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).");
        let set = e.entries_of(&fact("p(1, 3)")).unwrap();
        assert_eq!(set.entries().len(), 1);
        assert_eq!(
            set.entries()[0].pos.as_ref(),
            &[fact("e(1, 2)"), fact("e(2, 3)")],
            "the witness lists the asserted leaves, not p(1,2)"
        );
    }

    #[test]
    fn negative_checks_recorded_in_witness() {
        let e = engine("s(1). r(X) :- s(X), !a(X). t(X) :- r(X), !b(X).");
        let set = e.entries_of(&fact("t(1)")).unwrap();
        assert_eq!(set.entries().len(), 1);
        let entry = &set.entries()[0];
        assert_eq!(entry.pos.as_ref(), &[fact("s(1)")]);
        // Entries sort by interner id (total but arbitrary across
        // relations): compare the negative checks as a set.
        let mut neg: Vec<String> = entry.neg.iter().map(ToString::to_string).collect();
        neg.sort();
        assert_eq!(neg, vec!["a(1)", "b(1)"]);
    }

    #[test]
    fn rule_updates_work() {
        let mut e = engine("e(1). e(2). f(2).");
        e.insert_rule(Rule::parse("p(X) :- e(X), !f(X).").unwrap()).unwrap();
        assert!(e.model().contains_parsed("p(1)"));
        assert!(!e.model().contains_parsed("p(2)"));
        assert_matches_ground_truth(&e);
        e.delete_rule(Rule::parse("p(X) :- e(X), !f(X).").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("p(1)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn unstratifying_rule_rolled_back() {
        let mut e = engine("e(1). p(X) :- e(X), !q(X).");
        let before = e.model().clone();
        assert!(e.insert_rule(Rule::parse("q(X) :- e(X), !p(X).").unwrap()).is_err());
        assert_eq!(e.model(), &before);
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn capped_engine_stays_correct() {
        // A cap of 1 forgets witnesses (may migrate) but the model must
        // still match the ground truth after every update.
        let mut e = FactLevelEngine::with_cap(
            Program::parse(
                "e(1, 2). e(2, 4). e(1, 3). e(3, 4).
                 p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).",
            )
            .unwrap(),
            1,
        )
        .unwrap();
        e.delete_fact(fact("e(1, 2)")).unwrap();
        assert_matches_ground_truth(&e);
        e.insert_fact(fact("e(1, 2)")).unwrap();
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn support_bytes_grow_with_alternatives() {
        let small = engine("e(1, 2). p(X, Y) :- e(X, Y).");
        let big = engine(
            "e(1, 2). e(2, 3). e(1, 3). e(3, 4). e(2, 4). e(1, 4).
             p(X, Y) :- e(X, Y). p(X, Z) :- p(X, Y), e(Y, Z).",
        );
        assert!(big.support_bytes() > small.support_bytes());
    }

    #[test]
    fn random_scripts_never_migrate() {
        // The zero-migration claim, exercised on a synthetic workload.
        let src = "e0(1). e0(2). e0(3). e1(1). e1(4).
                   i0(X) :- e0(X), !e1(X).
                   i1(X) :- e0(X), i0(X).
                   i2(X) :- e1(X), !i1(X).";
        let mut e = engine(src);
        let updates = [
            Update::InsertFact(fact("e1(2)")),
            Update::DeleteFact(fact("e0(1)")),
            Update::InsertFact(fact("e0(5)")),
            Update::DeleteFact(fact("e1(4)")),
            Update::InsertFact(fact("e1(3)")),
        ];
        for u in &updates {
            let stats = e.apply(u).unwrap();
            assert_eq!(stats.migrated, 0, "migration on {u}");
            assert_matches_ground_truth(&e);
        }
    }
}
