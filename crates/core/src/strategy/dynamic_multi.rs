//! §4.3 — the dynamic solution keeping a support **per derivation**.
//!
//! "To take care of this type of situations we should maintain supports in
//! the form of Pos and Neg sets for each derivation of a fact, and thus
//! maintain supports not in the form of sets but rather sets of sets."
//!
//! Each fact carries a [`MultiSupport`]: a set of [`SupportPair`]s (one per
//! remembered derivation, combined over the body facts' own supports with
//! the paper's `⊕` product) plus an `asserted` flag for the trivial
//! derivation. A fact is removed only when *every* pair fails — this is what
//! saves `accepted(a)` in the paper's Example 4 (MEET).
//!
//! See [`crate::support`] for the deliberate deviation: pairs fail as units
//! rather than as independent `Pos`/`Neg` elements, which is required for
//! soundness across sequences of updates.

use rustc_hash::{FxHashMap, FxHashSet};
use strata_datalog::eval::naive::{self, SaturationStats};
use strata_datalog::eval::{Derivation, DerivationSink};
use strata_datalog::graph::RelIndex;
use strata_datalog::model::StratKind;
use strata_datalog::{Database, Fact, Program, Symbol};

use crate::analysis::Analysis;
use crate::engine::{normalize, MaintenanceEngine, MaintenanceError, Update};
use crate::stats::UpdateStats;
use crate::strategy::{add_rule_checked, find_rule_checked, retract_checked};
use crate::support::{MultiConfig, MultiSupport, SupportPair};

/// The paper's §4.3 engine.
pub struct DynamicMultiEngine {
    program: Program,
    analysis: Analysis,
    model: Database,
    supports: FxHashMap<Fact, MultiSupport>,
    config: MultiConfig,
}

struct MultiSink<'a> {
    supports: &'a mut FxHashMap<Fact, MultiSupport>,
    index: &'a RelIndex,
    universe: usize,
    config: MultiConfig,
}

impl DerivationSink for MultiSink<'_> {
    fn on_derivation(&mut self, d: &Derivation<'_>) -> bool {
        // The contribution of the rule instance itself:
        // {q1…qi, -r1…-rj} on the Pos side, {+r1…+rj} on the Neg side.
        let mut lit = SupportPair::empty(self.universe);
        for bf in d.pos_body {
            lit.pos.plain.insert(self.index.of(bf.rel));
        }
        for nf in d.neg_body {
            let r = self.index.of(nf.rel);
            lit.pos.signed.insert(r);
            lit.neg.signed.insert(r);
        }
        // The ⊕ product over the body facts' supports: one choice of pair
        // per body fact, unioned component-wise.
        let mut acc: Vec<SupportPair> = vec![lit];
        for bf in d.pos_body {
            let options: Vec<SupportPair> = match self.supports.get(bf) {
                Some(ms) => {
                    let mut o: Vec<SupportPair> = ms.pairs().to_vec();
                    if ms.asserted {
                        o.push(SupportPair::empty(self.universe));
                    }
                    o
                }
                // Unknown body support: treat as asserted (pessimism is not
                // needed for additions; saturation will refine later).
                None => vec![SupportPair::empty(self.universe)],
            };
            if options.iter().all(SupportPair::is_assertion) {
                continue; // ∅ is the ⊕ identity
            }
            let mut next = Vec::with_capacity(acc.len() * options.len());
            for a in &acc {
                for o in &options {
                    let mut c = a.clone();
                    c.union_with(o);
                    next.push(c);
                }
            }
            prune(&mut next, &self.config);
            acc = next;
        }
        let entry = self.supports.entry(d.head.clone()).or_default();
        let mut changed = false;
        for pair in acc {
            changed |= entry.add_pair(pair, &self.config);
        }
        changed
    }
}

/// Keeps a manageable antichain: dominated pairs dropped, capped smallest-
/// first in the canonical order.
fn prune(pairs: &mut Vec<SupportPair>, cfg: &MultiConfig) {
    pairs.sort_by(|a, b| a.canonical_cmp(b));
    pairs.dedup();
    if cfg.minimize {
        let mut kept: Vec<SupportPair> = Vec::with_capacity(pairs.len());
        for p in pairs.drain(..) {
            if !kept.iter().any(|k| k.pairwise_subset(&p)) {
                kept.push(p);
            }
        }
        *pairs = kept;
    }
    pairs.truncate(cfg.max_pairs);
}

impl DynamicMultiEngine {
    /// Builds the engine with the default configuration.
    pub fn new(program: Program) -> Result<DynamicMultiEngine, MaintenanceError> {
        Self::with_config(program, MultiConfig::default())
    }

    /// Builds the engine with an explicit configuration (see the
    /// minimality-pruning ablation in the benches).
    pub fn with_config(
        program: Program,
        config: MultiConfig,
    ) -> Result<DynamicMultiEngine, MaintenanceError> {
        let analysis = Analysis::build(&program, StratKind::Maximal)
            .map_err(|e| MaintenanceError::Datalog(e.into()))?;
        let mut engine = DynamicMultiEngine {
            program,
            analysis,
            model: Database::new(),
            supports: FxHashMap::default(),
            config,
        };
        let mut added = FxHashSet::default();
        let mut derivs = 0;
        engine.resaturate_from(0, &mut added, &mut derivs);
        Ok(engine)
    }

    /// The support currently attached to a fact (for tests/inspection).
    pub fn support_of(&self, fact: &Fact) -> Option<&MultiSupport> {
        self.supports.get(fact)
    }

    fn resaturate_from(&mut self, start: usize, added: &mut FxHashSet<Fact>, derivs: &mut u64) {
        let strata = self.analysis.strata();
        let universe = self.analysis.universe();
        for s in start..strata.num_strata() {
            for f in strata.facts_of(s) {
                if self.model.insert(f.clone()) {
                    added.insert(f.clone());
                }
                self.supports.entry(f.clone()).or_default().asserted = true;
            }
            let mut sink = MultiSink {
                supports: &mut self.supports,
                index: self.analysis.index(),
                universe,
                config: self.config,
            };
            let mut stats = SaturationStats::default();
            let new = naive::saturate(&mut self.model, strata.rules_of(s), &mut sink, &mut stats);
            *derivs += stats.derivations;
            added.extend(new);
        }
    }

    /// Removal phase for an increase of `p`: every pair whose resolved
    /// `Neg'` contains `p` fails; a fact with no surviving grounds leaves.
    fn removal_on_increase(&mut self, p: u32, removed: &mut FxHashSet<Fact>) {
        let rels: Vec<Symbol> = self
            .analysis
            .deps()
            .neg_inverse(p)
            .iter()
            .map(|i| self.analysis.index().rel(i))
            .collect();
        let deps = self.analysis.deps();
        for rel in rels {
            let facts: Vec<Fact> = self.model.facts_of(rel).collect();
            for f in facts {
                let alive = match self.supports.get_mut(&f) {
                    Some(sup) => {
                        sup.remove_failed(|pair| pair.neg_resolved_contains(p, deps));
                        sup.is_alive()
                    }
                    None => false,
                };
                if !alive {
                    self.model.remove(&f);
                    self.supports.remove(&f);
                    removed.insert(f);
                }
            }
        }
    }

    /// Removal phase for a decrease of `p`. `clear_pairs_of` (rule deletion)
    /// pessimistically drops all derivation pairs of that head relation.
    fn removal_on_decrease(
        &mut self,
        p: u32,
        clear_pairs_of: Option<Symbol>,
        removed: &mut FxHashSet<Fact>,
    ) {
        let rels: Vec<Symbol> = self
            .analysis
            .deps()
            .pos_inverse(p)
            .iter()
            .map(|i| self.analysis.index().rel(i))
            .collect();
        let deps = self.analysis.deps();
        for rel in rels {
            let facts: Vec<Fact> = self.model.facts_of(rel).collect();
            for f in facts {
                let alive = match self.supports.get_mut(&f) {
                    Some(sup) => {
                        if clear_pairs_of == Some(rel) {
                            sup.clear_pairs();
                        } else {
                            sup.remove_failed(|pair| pair.pos_resolved_contains(p, deps));
                        }
                        sup.is_alive()
                    }
                    None => false,
                };
                if !alive {
                    self.model.remove(&f);
                    self.supports.remove(&f);
                    removed.insert(f);
                }
            }
        }
    }

    fn rebuild_analysis(&mut self) -> Result<(), MaintenanceError> {
        self.analysis =
            Analysis::rebuild(&self.program, StratKind::Maximal, self.analysis.index_clone())
                .map_err(|e| MaintenanceError::Datalog(e.into()))?;
        Ok(())
    }

    fn finish(&self, removed: FxHashSet<Fact>, added: FxHashSet<Fact>, derivs: u64) -> UpdateStats {
        UpdateStats::from_sets(&removed, &added, derivs, self.support_bytes())
    }
}

impl MaintenanceEngine for DynamicMultiEngine {
    fn name(&self) -> &'static str {
        "dynamic-multi"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn model(&self) -> &Database {
        &self.model
    }

    fn support_bytes(&self) -> usize {
        self.supports.values().map(MultiSupport::heap_bytes).sum::<usize>()
            + self.supports.capacity()
                * (std::mem::size_of::<Fact>() + std::mem::size_of::<MultiSupport>())
    }

    fn support_dump(&self) -> crate::support::SupportDump {
        let index = self.analysis.index();
        crate::support::SupportDump::from_entries(
            self.supports
                .iter()
                .map(|(f, sup)| {
                    let mut pairs: Vec<crate::support::PairDump> =
                        sup.pairs().iter().map(|p| p.dump(index)).collect();
                    pairs.sort();
                    (
                        f.clone(),
                        crate::support::FactSupport::Multi { asserted: sup.asserted, pairs },
                    )
                })
                .collect(),
        )
    }

    fn apply(&mut self, update: &Update) -> Result<UpdateStats, MaintenanceError> {
        let update = normalize(update);
        let mut removed = FxHashSet::default();
        let mut added = FxHashSet::default();
        let mut derivs = 0u64;
        match &update {
            Update::InsertFact(f) => {
                if self.program.is_asserted(f) {
                    return Ok(self.finish(removed, added, derivs));
                }
                self.program.assert_fact(f.clone()).map_err(MaintenanceError::Datalog)?;
                if self.analysis.rel(f.rel).is_none() {
                    self.rebuild_analysis().expect("fact insertion cannot unstratify");
                } else {
                    self.analysis.note_assert(f);
                }
                let p = self.analysis.rel(f.rel).expect("indexed");
                self.removal_on_increase(p, &mut removed);
                if self.model.insert(f.clone()) {
                    added.insert(f.clone());
                }
                self.supports.entry(f.clone()).or_default().asserted = true;
                self.resaturate_from(self.analysis.stratum_of(f.rel), &mut added, &mut derivs);
            }
            Update::DeleteFact(f) => {
                retract_checked(&mut self.program, f)?;
                self.analysis.note_retract(f);
                let p = self.analysis.rel(f.rel).expect("indexed");
                // Retract the trivial derivation; the fact survives iff a
                // remembered derivation pair remains (Example 3/4 benefit).
                let alive = match self.supports.get_mut(f) {
                    Some(sup) => {
                        sup.asserted = false;
                        sup.is_alive()
                    }
                    None => false,
                };
                if !alive {
                    self.model.remove(f);
                    self.supports.remove(f);
                    removed.insert(f.clone());
                }
                self.removal_on_decrease(p, None, &mut removed);
                self.resaturate_from(self.analysis.stratum_of(f.rel), &mut added, &mut derivs);
            }
            Update::InsertRule(r) => {
                let id = add_rule_checked(&mut self.program, r)?;
                let old = self.analysis.clone();
                if let Err(e) = self.rebuild_analysis() {
                    self.program.remove_rule(id);
                    self.analysis = old;
                    let MaintenanceError::Datalog(strata_datalog::DatalogError::Stratification(s)) =
                        e
                    else {
                        return Err(e);
                    };
                    return Err(MaintenanceError::WouldUnstratify(s));
                }
                let p = self.analysis.rel(r.head.rel).expect("indexed");
                self.removal_on_increase(p, &mut removed);
                self.resaturate_from(self.analysis.stratum_of(r.head.rel), &mut added, &mut derivs);
            }
            Update::DeleteRule(r) => {
                let id = find_rule_checked(&self.program, r)?;
                let head = r.head.rel;
                let p = self.analysis.rel(head).expect("indexed");
                let affected: Vec<Symbol> = self
                    .analysis
                    .deps()
                    .pos_inverse(p)
                    .iter()
                    .map(|i| self.analysis.index().rel(i))
                    .collect();
                self.removal_on_decrease(p, Some(head), &mut removed);
                self.program.remove_rule(id);
                self.rebuild_analysis().expect("rule deletion cannot unstratify");
                let start =
                    affected.iter().map(|&rel| self.analysis.stratum_of(rel)).min().unwrap_or(0);
                self.resaturate_from(start, &mut added, &mut derivs);
            }
        }
        Ok(self.finish(removed, added, derivs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_matches_ground_truth;
    use strata_datalog::Rule;

    fn engine(src: &str) -> DynamicMultiEngine {
        DynamicMultiEngine::new(Program::parse(src).unwrap()).unwrap()
    }

    fn render(db: &Database) -> String {
        db.sorted_facts().iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
    }

    /// Paper §4.3, Example 4 (MEET): with one support pair per derivation,
    /// inserting rejected(a) does **not** migrate accepted(a).
    #[test]
    fn meet_keeps_doubly_derived_fact() {
        let mut e = engine(
            "submitted(a). in_pc(chair). author(chair, a).
             accepted(X) :- submitted(X), !rejected(X).
             accepted(Y) :- author(X, Y), in_pc(X).",
        );
        let sup = e.support_of(&Fact::parse("accepted(a)").unwrap()).unwrap();
        assert_eq!(sup.pairs().len(), 2, "both derivations remembered");
        let stats = e.insert_fact(Fact::parse("rejected(a)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("accepted(a)"));
        assert_matches_ground_truth(&e);
        assert_eq!(stats.removed, 0, "no removal at all");
        assert_eq!(stats.migrated, 0, "multi supports avoid Example 4's migration");
        // One pair failed and was dropped; the author/in_pc pair remains.
        let sup = e.support_of(&Fact::parse("accepted(a)").unwrap()).unwrap();
        assert_eq!(sup.pairs().len(), 1);
    }

    /// Paper §4.2 Example 2 chain handled correctly.
    #[test]
    fn chain_insert_and_delete() {
        let mut e = engine("p1 :- !p0. p2 :- !p1. p3 :- !p2.");
        e.insert_fact(Fact::parse("p0").unwrap()).unwrap();
        assert_eq!(render(e.model()), "p0 p2");
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("p0").unwrap()).unwrap();
        assert_eq!(render(e.model()), "p1 p3");
        assert_matches_ground_truth(&e);
    }

    /// CONGRESS (Example 3) under multi supports: deleting the assertion of
    /// a doubly-supported fact keeps it via the remaining derivation.
    #[test]
    fn retraction_keeps_derivable_fact() {
        let mut e = engine(
            "submitted(1). accepted(1).
             accepted(X) :- submitted(X), !rejected(X).",
        );
        let stats = e.delete_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
        // Still derivable by the rule: stays, zero migration.
        assert!(e.model().contains_parsed("accepted(1)"));
        assert_eq!(stats.removed, 0);
        assert_eq!(stats.migrated, 0);
        assert_matches_ground_truth(&e);
        // Now insert rejected(1): the rule-derivation pair fails and the
        // fact (no longer asserted) leaves.
        e.insert_fact(Fact::parse("rejected(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("accepted(1)"));
        assert_matches_ground_truth(&e);
    }

    /// The pairing deviation (see module docs): a fact whose two derivations
    /// fail across *separate* updates must leave the model. The paper's
    /// unpaired sets-of-sets would keep it alive; pairs handle it.
    #[test]
    fn sequential_failures_across_updates_are_sound() {
        // f ← a ∧ ¬p   (pair: Pos {a, -p}, Neg {+p})
        // f ← b        (pair: Pos {b}, Neg ∅)
        let mut e = engine(
            "a(1). b(1).
             f(X) :- a(X), !p(X).
             f(X) :- b(X).",
        );
        assert!(e.model().contains_parsed("f(1)"));
        // Update 1: insert p(1) — the first derivation fails.
        e.insert_fact(Fact::parse("p(1)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("f(1)"));
        assert_matches_ground_truth(&e);
        // Update 2: delete b(1) — the second derivation fails too.
        e.delete_fact(Fact::parse("b(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("f(1)"), "stale one-sided elements must not keep f(1)");
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn pods_round_trip() {
        let mut e = engine(
            "submitted(1). submitted(2). submitted(3). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        );
        e.insert_fact(Fact::parse("accepted(1)").unwrap()).unwrap();
        assert_matches_ground_truth(&e);
        e.delete_fact(Fact::parse("accepted(2)").unwrap()).unwrap();
        assert_matches_ground_truth(&e);
        assert_eq!(render(e.model()).matches("rejected").count(), 2);
    }

    #[test]
    fn rule_updates() {
        let mut e = engine("e(1). e(2). f(2).");
        e.insert_rule(Rule::parse("p(X) :- e(X), !f(X).").unwrap()).unwrap();
        assert!(e.model().contains_parsed("p(1)"));
        assert_matches_ground_truth(&e);
        e.delete_rule(Rule::parse("p(X) :- e(X), !f(X).").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("p(1)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn rule_deletion_keeps_alternative_derivations() {
        let mut e = engine("e(1). f(1). p(X) :- e(X). p(X) :- f(X). q(X) :- p(X).");
        let stats = e.delete_rule(Rule::parse("p(X) :- e(X).").unwrap()).unwrap();
        assert!(e.model().contains_parsed("p(1)"));
        assert!(e.model().contains_parsed("q(1)"));
        assert_matches_ground_truth(&e);
        // p(1) migrates (pairs were cleared pessimistically), q(1) fails
        // because p decreased… both return via the f-derivation.
        assert!(stats.migrated >= 1);
    }

    #[test]
    fn transitive_multi_hop_supports() {
        let mut e = engine(
            "s(1). s(2). c(2).
             b(X) :- s(X), !c(X).
             a(X) :- b(X).",
        );
        assert!(e.model().contains_parsed("a(1)"));
        // Inserting c(1) must remove b(1) AND a(1) (a's support embeds b's
        // transitive dependency on c).
        e.insert_fact(Fact::parse("c(1)").unwrap()).unwrap();
        assert!(!e.model().contains_parsed("b(1)"));
        assert!(!e.model().contains_parsed("a(1)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn unstratifying_rule_rolled_back() {
        let mut e = engine("e(1). p(X) :- e(X), !q(X).");
        let before = e.model().clone();
        assert!(e.insert_rule(Rule::parse("q(X) :- e(X), !p(X).").unwrap()).is_err());
        assert_eq!(e.model(), &before);
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn minimize_off_still_correct() {
        let mut e = DynamicMultiEngine::with_config(
            Program::parse(
                "submitted(a). in_pc(chair). author(chair, a).
                 accepted(X) :- submitted(X), !rejected(X).
                 accepted(Y) :- author(X, Y), in_pc(X).",
            )
            .unwrap(),
            MultiConfig { minimize: false, max_pairs: 64 },
        )
        .unwrap();
        e.insert_fact(Fact::parse("rejected(a)").unwrap()).unwrap();
        assert!(e.model().contains_parsed("accepted(a)"));
        assert_matches_ground_truth(&e);
    }

    #[test]
    fn tight_pair_cap_costs_migration_not_correctness() {
        let mut e = DynamicMultiEngine::with_config(
            Program::parse(
                "submitted(a). in_pc(chair). author(chair, a).
                 accepted(X) :- submitted(X), !rejected(X).
                 accepted(Y) :- author(X, Y), in_pc(X).",
            )
            .unwrap(),
            MultiConfig { minimize: true, max_pairs: 1 },
        )
        .unwrap();
        e.insert_fact(Fact::parse("rejected(a)").unwrap()).unwrap();
        // Model still correct regardless of which pair the cap kept.
        assert!(e.model().contains_parsed("accepted(a)"));
        assert_matches_ground_truth(&e);
    }
}
