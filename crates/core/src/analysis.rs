//! Shared program analysis owned by each engine: the append-only relation
//! index, the stratification, and the static dependency sets.

use strata_datalog::deps::StaticDeps;
use strata_datalog::error::StratificationError;
use strata_datalog::graph::RelIndex;
use strata_datalog::model::{StratKind, Strata};
use strata_datalog::{Fact, Program, Symbol};

/// Everything an engine derives from the program text.
///
/// The relation index is **append-only** across rebuilds: engines store
/// relation indices inside per-fact supports (bitsets), so indices must
/// survive rule updates that add relations.
#[derive(Clone, Debug)]
pub struct Analysis {
    index: RelIndex,
    strata: Strata,
    deps: StaticDeps,
}

impl Analysis {
    /// Analyzes `program` from scratch.
    pub fn build(program: &Program, kind: StratKind) -> Result<Analysis, StratificationError> {
        Self::rebuild(program, kind, RelIndex::new())
    }

    /// Re-analyzes `program`, extending (never reordering) `index`.
    pub fn rebuild(
        program: &Program,
        kind: StratKind,
        mut index: RelIndex,
    ) -> Result<Analysis, StratificationError> {
        index.extend_with(program);
        let strata = Strata::build_with(program, kind, index.clone())?;
        let deps = StaticDeps::compute(strata.graph());
        Ok(Analysis { index, strata, deps })
    }

    /// The append-only relation index.
    pub fn index(&self) -> &RelIndex {
        &self.index
    }

    /// A clone of the index for rebuilding.
    pub fn index_clone(&self) -> RelIndex {
        self.index.clone()
    }

    /// The stratification and per-stratum rule/fact grouping.
    pub fn strata(&self) -> &Strata {
        &self.strata
    }

    /// The static `Pos`/`Neg` dependency sets.
    pub fn deps(&self) -> &StaticDeps {
        &self.deps
    }

    /// Number of indexed relations (the support bitset universe).
    pub fn universe(&self) -> usize {
        self.index.len()
    }

    /// Dense index of a relation, if known.
    pub fn rel(&self, sym: Symbol) -> Option<u32> {
        self.index.get(sym)
    }

    /// Stratum of a relation (relations unknown to the stratification, e.g.
    /// introduced by this very update, default to stratum 0).
    pub fn stratum_of(&self, sym: Symbol) -> usize {
        self.strata.stratum_of_rel(sym).unwrap_or(0)
    }

    /// Syncs the per-stratum fact grouping with a fact just asserted on the
    /// program. Engines must call this (or rebuild) after `assert_fact`:
    /// re-saturation re-injects asserted facts from the grouping, and a
    /// stale grouping resurrects retracted facts / loses inserted ones.
    pub fn note_assert(&mut self, f: &Fact) {
        self.strata.note_fact_asserted(f.clone());
    }

    /// Syncs the grouping with a fact just retracted from the program.
    pub fn note_retract(&mut self, f: &Fact) {
        self.strata.note_fact_retracted(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_preserves_indices() {
        let p1 = Program::parse("b(1). a(X) :- b(X).").unwrap();
        let a1 = Analysis::build(&p1, StratKind::Maximal).unwrap();
        let b_ix = a1.rel("b".into()).unwrap();
        let p2 = Program::parse("b(1). a(X) :- b(X). c(X) :- b(X), !a(X).").unwrap();
        let a2 = Analysis::rebuild(&p2, StratKind::Maximal, a1.index_clone()).unwrap();
        assert_eq!(a2.rel("b".into()), Some(b_ix));
        assert_eq!(a2.universe(), 3);
    }

    #[test]
    fn build_rejects_unstratified() {
        let p = Program::parse("p(X) :- e(X), !q(X). q(X) :- e(X), !p(X).").unwrap();
        assert!(Analysis::build(&p, StratKind::ByLevels).is_err());
    }

    #[test]
    fn stratum_of_unknown_relation_defaults_to_zero() {
        let p = Program::parse("a(1).").unwrap();
        let a = Analysis::build(&p, StratKind::ByLevels).unwrap();
        assert_eq!(a.stratum_of("zzz_unknown".into()), 0);
    }
}
