//! The strategy registry: the single seam mapping strategy **names** to
//! engine **constructors**.
//!
//! Every place that needs "an engine by name" — the `strata` REPL's
//! `:strategy` command, the bench harness, the experiment binaries, the
//! equivalence tests — goes through [`EngineRegistry`] instead of keeping
//! its own `match` over the six strategies. That keeps the strategy set
//! extensible in exactly one place: registering a new engine here makes it
//! reachable from the shell, the benches, and the differential tests at
//! once.
//!
//! ## Dyn dispatch vs. generics
//!
//! The concrete engine types ([`crate::strategy::CascadeEngine`] & co.) are
//! still exported and are the right choice when the strategy is fixed at
//! compile time or a non-default config is needed
//! (`CascadeEngine::with_config`). The registry is for the *runtime* choice:
//! it hands out [`EngineBox`] (`Box<dyn MaintenanceEngine + Send>`), which
//! itself implements [`MaintenanceEngine`], so registry-built engines drop
//! into any generic engine consumer (e.g.
//! [`crate::constraints::GuardedEngine`]) and can be moved onto worker
//! threads (the `strata-service` ingest layer).
//!
//! ```
//! use strata_core::registry::EngineRegistry;
//! use strata_core::MaintenanceEngine;
//! use strata_datalog::Program;
//!
//! let registry = EngineRegistry::standard();
//! let program = Program::parse(
//!     "submitted(1). rejected(X) :- submitted(X), !accepted(X).",
//! ).unwrap();
//! let mut engine = registry.build("cascade", program).unwrap();
//! assert!(engine.model().contains_parsed("rejected(1)"));
//! ```

use std::fmt;
use std::sync::Arc;

use strata_datalog::{Parallelism, Program};

use crate::durable::{DurableEngine, StorageSpec};
use crate::engine::{EngineBox, MaintenanceError};
use crate::strategy::{
    CascadeEngine, DynamicMultiEngine, DynamicSingleEngine, FactLevelEngine, RecomputeEngine,
    StaticEngine,
};

pub use crate::durable::EngineCtor;

/// Why [`EngineRegistry::build`] failed.
#[derive(Debug)]
pub enum RegistryError {
    /// No strategy is registered under this name. Carries the registered
    /// names so callers can render a helpful message.
    UnknownStrategy {
        /// The name that was requested.
        name: String,
        /// Every registered name, in registration order.
        known: Vec<&'static str>,
    },
    /// The constructor rejected the program (e.g. it is not stratified).
    Engine(MaintenanceError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownStrategy { name, known } => {
                write!(f, "unknown strategy `{name}` ({})", known.join(" | "))
            }
            RegistryError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<MaintenanceError> for RegistryError {
    fn from(e: MaintenanceError) -> RegistryError {
        RegistryError::Engine(e)
    }
}

/// Descriptive metadata for one registered strategy.
pub struct StrategyEntry {
    /// The registered name (`"cascade"`, …).
    pub name: &'static str,
    /// One-line description (paper section, support representation).
    pub summary: &'static str,
    /// Whether the engine maintains the model incrementally (false only
    /// for the recompute-from-scratch baseline).
    pub incremental: bool,
    /// Where engines built from this entry keep their state. Defaults to
    /// [`StorageSpec::Mem`]; set via [`EngineRegistry::set_storage`] to
    /// make every [`EngineRegistry::build`] of this strategy durable.
    pub storage: StorageSpec,
    /// Worker-count override applied (via
    /// [`crate::engine::MaintenanceEngine::set_parallelism`]) to every
    /// engine built from this entry. `None` leaves the constructor's own
    /// choice — `STRATA_THREADS`-aware for the `*-parallel` strategies —
    /// untouched. Set via [`EngineRegistry::set_parallelism`].
    pub parallelism: Option<Parallelism>,
    ctor: EngineCtor,
}

/// The name → constructor registry for maintenance strategies.
///
/// Entries keep their registration order, which for [`standard`] is the
/// paper's order of presentation (recompute baseline, then §4.1, §4.2,
/// §4.3, §5.1, §5.2).
///
/// [`standard`]: EngineRegistry::standard
pub struct EngineRegistry {
    entries: Vec<StrategyEntry>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> EngineRegistry {
        EngineRegistry { entries: Vec::new() }
    }

    /// The registry of the six built-in strategies, in paper order.
    pub fn standard() -> EngineRegistry {
        let mut r = EngineRegistry::new();
        r.register(
            "recompute",
            "baseline: recompute M(P') from scratch, no bookkeeping",
            false,
            |p| Ok(Box::new(RecomputeEngine::new(p)?)),
        );
        r.register("static", "§4.1: removal via the static Pos/Neg relation sets", true, |p| {
            Ok(Box::new(StaticEngine::new(p)?))
        });
        r.register("dynamic-single", "§4.2: one signed support pair per fact", true, |p| {
            Ok(Box::new(DynamicSingleEngine::new(p)?))
        });
        r.register(
            "dynamic-multi",
            "§4.3: a set of support pairs, one per derivation",
            true,
            |p| Ok(Box::new(DynamicMultiEngine::new(p)?)),
        );
        r.register("cascade", "§5.1: one-level rule pointers, strata cascaded", true, |p| {
            Ok(Box::new(CascadeEngine::new(p)?))
        });
        r.register(
            "fact-level",
            "§5.2: fact-level supports, zero migration, heavy bookkeeping",
            true,
            |p| Ok(Box::new(FactLevelEngine::new(p)?)),
        );
        // The parallel variants follow the paper's six: the same semantics,
        // with per-stratum saturation sharded across a worker pool
        // (STRATA_THREADS, or the CPU count). Results are bit-identical to
        // their sequential counterparts at any thread count.
        r.register(
            "cascade-parallel",
            "§5.1 cascade with per-stratum parallel saturation (STRATA_THREADS workers)",
            true,
            |p| Ok(Box::new(CascadeEngine::parallel(p, Parallelism::auto())?)),
        );
        r.register(
            "recompute-parallel",
            "recompute baseline with parallel saturation (STRATA_THREADS workers)",
            false,
            |p| Ok(Box::new(RecomputeEngine::parallel(p, Parallelism::auto())?)),
        );
        r
    }

    /// Registers a strategy. A re-registered name replaces the old entry in
    /// place (so callers can override a built-in with a configured variant).
    pub fn register(
        &mut self,
        name: &'static str,
        summary: &'static str,
        incremental: bool,
        ctor: impl Fn(Program) -> Result<EngineBox, MaintenanceError> + Send + Sync + 'static,
    ) {
        let entry = StrategyEntry {
            name,
            summary,
            incremental,
            storage: StorageSpec::Mem,
            parallelism: None,
            ctor: Arc::new(ctor),
        };
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// Sets the storage spec of a registered strategy (subsequent
    /// [`build`]s honor it). Returns `false` if the name is unknown.
    ///
    /// [`build`]: EngineRegistry::build
    pub fn set_storage(&mut self, name: &str, storage: StorageSpec) -> bool {
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(entry) => {
                entry.storage = storage;
                true
            }
            None => false,
        }
    }

    /// Sets the worker count of a registered strategy: every subsequent
    /// [`build`] applies it through the engine's `set_parallelism` hook.
    /// Returns `false` if the name is unknown. The knob never changes
    /// results — only how many threads saturation uses — so it composes
    /// freely with [`set_storage`].
    ///
    /// [`build`]: EngineRegistry::build
    /// [`set_storage`]: EngineRegistry::set_storage
    pub fn set_parallelism(&mut self, name: &str, parallelism: Parallelism) -> bool {
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(entry) => {
                entry.parallelism = Some(parallelism);
                true
            }
            None => false,
        }
    }

    /// A clone of the named strategy's constructor.
    pub fn ctor(&self, name: &str) -> Option<EngineCtor> {
        self.entries.iter().find(|e| e.name == name).map(|e| Arc::clone(&e.ctor))
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// The registered entries, in registration order.
    pub fn entries(&self) -> impl Iterator<Item = &StrategyEntry> + '_ {
        self.entries.iter()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Builds the named engine over `program`, honoring the entry's
    /// [`StorageSpec`] (in-memory by default; durable if configured).
    pub fn build(&self, name: &str, program: Program) -> Result<EngineBox, RegistryError> {
        let entry = self.entries.iter().find(|e| e.name == name).ok_or_else(|| {
            RegistryError::UnknownStrategy { name: name.to_string(), known: self.names() }
        })?;
        self.build_entry(entry, program, &entry.storage, None)
    }

    /// Builds the named engine with an explicit storage spec, overriding
    /// the entry's own. `Mem` yields the plain engine; `Wal(spec)` opens
    /// (or recovers) a [`DurableEngine`] per the spec — directory, fsync
    /// policy, checkpoint mode, replay mode, auto-compaction — seeded with
    /// `program` if the store is fresh.
    pub fn build_with_storage(
        &self,
        name: &str,
        program: Program,
        storage: &StorageSpec,
    ) -> Result<EngineBox, RegistryError> {
        self.build_with_storage_faults(name, program, storage, None)
    }

    /// [`build_with_storage`] with an armed fault injector threaded into
    /// the durable engine's WAL and snapshot I/O (ignored for `Mem`
    /// builds, which have no I/O to fail). The chaos harness and
    /// `strata-serve --fault-plan` build through this.
    ///
    /// [`build_with_storage`]: EngineRegistry::build_with_storage
    pub fn build_with_storage_faults(
        &self,
        name: &str,
        program: Program,
        storage: &StorageSpec,
        faults: Option<Arc<strata_store::FaultInjector>>,
    ) -> Result<EngineBox, RegistryError> {
        let entry = self.entries.iter().find(|e| e.name == name).ok_or_else(|| {
            RegistryError::UnknownStrategy { name: name.to_string(), known: self.names() }
        })?;
        self.build_entry(entry, program, storage, faults)
    }

    fn build_entry(
        &self,
        entry: &StrategyEntry,
        program: Program,
        storage: &StorageSpec,
        faults: Option<Arc<strata_store::FaultInjector>>,
    ) -> Result<EngineBox, RegistryError> {
        let mut engine: EngineBox = match storage {
            StorageSpec::Mem => (entry.ctor)(program)?,
            StorageSpec::Wal(spec) => Box::new(DurableEngine::open_spec(
                spec,
                entry.name,
                Arc::clone(&entry.ctor),
                program,
                faults,
            )?),
        };
        if let Some(par) = entry.parallelism {
            // Applied after construction (and after any WAL replay): the
            // knob only affects wall-clock time, never results, so late
            // application is sound.
            engine.set_parallelism(par);
        }
        Ok(engine)
    }

    /// Builds every registered engine over `program`, in registration
    /// order. Always in-memory: comparative harnesses would otherwise race
    /// every strategy onto the same store directory.
    ///
    /// # Panics
    /// If any constructor rejects the program — callers building *all*
    /// strategies are comparative harnesses that require a valid program.
    pub fn build_all(&self, program: &Program) -> Vec<EngineBox> {
        self.entries
            .iter()
            .map(|e| (e.ctor)(program.clone()).expect("program must be stratified"))
            .collect()
    }
}

impl Default for EngineRegistry {
    fn default() -> EngineRegistry {
        EngineRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Update;
    use strata_datalog::Fact;

    fn pods() -> Program {
        Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap()
    }

    #[test]
    fn standard_registers_strategies_in_paper_order() {
        let r = EngineRegistry::standard();
        assert_eq!(
            r.names(),
            vec![
                "recompute",
                "static",
                "dynamic-single",
                "dynamic-multi",
                "cascade",
                "fact-level",
                "cascade-parallel",
                "recompute-parallel",
            ]
        );
        assert!(r.entries().all(|e| !e.summary.is_empty()));
        assert_eq!(r.entries().filter(|e| !e.incremental).count(), 2);
    }

    #[test]
    fn every_name_round_trips_through_build() {
        let r = EngineRegistry::standard();
        for name in r.names() {
            let engine = r.build(name, pods()).unwrap();
            assert_eq!(engine.name(), name, "engine must report its registered name");
            assert!(engine.model().contains_parsed("rejected(1)"), "[{name}]");
        }
    }

    #[test]
    fn unknown_name_lists_the_known_ones() {
        let r = EngineRegistry::standard();
        let err = r.build("nonsense", pods()).unwrap_err();
        let RegistryError::UnknownStrategy { name, known } = &err else {
            panic!("expected UnknownStrategy, got {err}")
        };
        assert_eq!(name, "nonsense");
        assert_eq!(known.len(), 8);
        let msg = err.to_string();
        assert!(msg.contains("nonsense") && msg.contains("cascade"), "{msg}");
    }

    #[test]
    fn constructor_errors_surface_as_engine_errors() {
        let r = EngineRegistry::standard();
        // Recursion through negation: parsing succeeds (stratification is
        // the engines' concern), but every constructor must reject it.
        let bad = Program::parse("p(X) :- e(X), !q(X). q(X) :- e(X), !p(X). e(1).").unwrap();
        let err = r.build("cascade", bad).unwrap_err();
        assert!(matches!(err, RegistryError::Engine(_)), "{err}");
    }

    #[test]
    fn build_all_agrees_across_strategies() {
        let r = EngineRegistry::standard();
        let mut engines = r.build_all(&pods());
        assert_eq!(engines.len(), 8);
        let update = Update::InsertFact(Fact::parse("accepted(1)").unwrap());
        for e in &mut engines {
            e.apply(&update).unwrap();
        }
        let reference = engines[0].model().sorted_facts();
        for e in &engines[1..] {
            assert_eq!(e.model().sorted_facts(), reference, "[{}] diverged", e.name());
        }
    }

    #[test]
    fn storage_spec_defaults_to_mem_and_is_settable() {
        use crate::durable::StorageSpec;
        let mut r = EngineRegistry::standard();
        assert!(r.entries().all(|e| e.storage == StorageSpec::Mem));
        let dir =
            std::env::temp_dir().join(format!("strata_registry_storage_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(r.set_storage("cascade", StorageSpec::wal(&dir)));
        assert!(!r.set_storage("nonsense", StorageSpec::mem()));
        // A build now goes durable: state survives a rebuild from scratch.
        {
            let mut e = r.build("cascade", pods()).unwrap();
            e.apply(&Update::InsertFact(Fact::parse("accepted(1)").unwrap())).unwrap();
            assert!(e.checkpoint().unwrap(), "registry-built engine is durable");
        }
        let e = r.build("cascade", Program::new()).unwrap();
        assert!(e.model().contains_parsed("accepted(1)"), "recovered via registry");
        // Explicit override back to memory ignores the entry spec.
        let mut e = r.build_with_storage("cascade", pods(), &StorageSpec::mem()).unwrap();
        assert!(!e.checkpoint().unwrap(), "in-memory engine has nothing to checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ctor_hands_out_shared_constructors() {
        let r = EngineRegistry::standard();
        let ctor = r.ctor("static").unwrap();
        let engine = ctor(pods()).unwrap();
        assert_eq!(engine.name(), "static");
        assert!(r.ctor("nope").is_none());
    }

    #[test]
    fn register_replaces_in_place() {
        let mut r = EngineRegistry::standard();
        r.register("cascade", "configured variant", true, |p| Ok(Box::new(CascadeEngine::new(p)?)));
        assert_eq!(r.names().len(), 8, "replacement must not duplicate");
        let entry = r.entries().find(|e| e.name == "cascade").unwrap();
        assert_eq!(entry.summary, "configured variant");
        assert!(r.contains("cascade") && !r.contains("casc"));
    }

    #[test]
    fn parallel_strategies_agree_with_their_sequential_counterparts() {
        let r = EngineRegistry::standard();
        for (seq, par) in [("cascade", "cascade-parallel"), ("recompute", "recompute-parallel")] {
            let mut a = r.build(seq, pods()).unwrap();
            let mut b = r.build(par, pods()).unwrap();
            assert_eq!(b.name(), par);
            let update = Update::InsertFact(Fact::parse("accepted(1)").unwrap());
            let sa = a.apply(&update).unwrap();
            let sb = b.apply(&update).unwrap();
            assert_eq!(sa, sb, "[{par}] stats");
            assert_eq!(a.model().sorted_facts(), b.model().sorted_facts(), "[{par}] model");
            assert_eq!(a.support_dump(), b.support_dump(), "[{par}] supports");
        }
    }

    #[test]
    fn set_parallelism_applies_on_build() {
        let mut r = EngineRegistry::standard();
        assert!(r.entries().all(|e| e.parallelism.is_none()));
        assert!(r.set_parallelism("cascade-parallel", Parallelism::new(2)));
        assert!(!r.set_parallelism("nonsense", Parallelism::new(2)));
        // The configured build still agrees with the sequential engine.
        let mut a = r.build("cascade", pods()).unwrap();
        let mut b = r.build("cascade-parallel", pods()).unwrap();
        let update = Update::InsertFact(Fact::parse("submitted(7)").unwrap());
        assert_eq!(a.apply(&update).unwrap(), b.apply(&update).unwrap());
        assert_eq!(a.model().sorted_facts(), b.model().sorted_facts());
        // Sequential engines ignore the knob; parallel ones honor it.
        assert!(!r.build("static", pods()).unwrap().set_parallelism(Parallelism::new(4)));
        assert!(r
            .build("recompute-parallel", pods())
            .unwrap()
            .set_parallelism(Parallelism::new(4)));
    }
}
