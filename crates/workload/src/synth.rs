//! Scalable synthetic stratified databases.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use strata_datalog::Program;

/// A multi-stratum conference pipeline, a realistic enlargement of the
/// paper's running example:
///
/// ```text
/// conflicted(P)    :- author(A, P), pc_member(A).
/// eligible(P)      :- submitted(P), !withdrawn(P).
/// reviewable(P)    :- eligible(P), !conflicted(P).
/// accepted(P)      :- reviewable(P), strong(P).
/// rejected(P)      :- eligible(P), !accepted(P).
/// needs_chair(P)   :- eligible(P), conflicted(P).
/// ```
///
/// `papers` submissions, `pc` committee members; deterministic in `seed`.
pub fn conference(papers: usize, pc: usize, seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = String::new();
    for i in 1..=papers {
        src.push_str(&format!("submitted(p{i}). "));
        if rng.gen_bool(0.1) {
            src.push_str(&format!("withdrawn(p{i}). "));
        }
        if rng.gen_bool(0.4) {
            src.push_str(&format!("strong(p{i}). "));
        }
        // Each paper has 1–3 authors drawn from a pool twice the PC size.
        for _ in 0..rng.gen_range(1..=3) {
            let a = rng.gen_range(1..=(pc * 2).max(2));
            src.push_str(&format!("author(a{a}, p{i}). "));
        }
    }
    for i in 1..=pc {
        src.push_str(&format!("pc_member(a{i}). "));
    }
    src.push_str(
        "conflicted(P) :- author(A, P), pc_member(A).
         eligible(P) :- submitted(P), !withdrawn(P).
         reviewable(P) :- eligible(P), !conflicted(P).
         accepted(P) :- reviewable(P), strong(P).
         rejected(P) :- eligible(P), !accepted(P).
         needs_chair(P) :- eligible(P), conflicted(P).",
    );
    Program::parse(&src).expect("conference workload parses")
}

/// Reachability and its complement over a random sparse digraph:
///
/// ```text
/// path(X, Y) :- edge(X, Y).
/// path(X, Z) :- path(X, Y), edge(Y, Z).
/// unreachable(X, Y) :- node(X), node(Y), !path(X, Y).
/// ```
///
/// The complement makes insertions *shrink* `unreachable` — heavy
/// non-monotonic traffic. `O(n²)` model size: keep `nodes` modest.
pub fn tc_complement(nodes: usize, edges: usize, seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = String::new();
    for i in 0..nodes {
        src.push_str(&format!("node({i}). "));
    }
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        src.push_str(&format!("edge({a}, {b}). "));
    }
    src.push_str(
        "path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), edge(Y, Z).
         unreachable(X, Y) :- node(X), node(Y), !path(X, Y).",
    );
    Program::parse(&src).expect("tc_complement workload parses")
}

/// A bill-of-materials with stock exceptions:
///
/// ```text
/// contains(X, Y) :- uses(X, Y).
/// contains(X, Z) :- contains(X, Y), uses(Y, Z).
/// missing(X)     :- part(X), atomic(X), !in_stock(X).
/// blocked(X)     :- contains(X, Y), missing(Y).
/// buildable(X)   :- part(X), !blocked(X), !missing(X).
/// ```
///
/// A forest of assemblies `depth` levels deep and `width` children wide;
/// leaf parts are atomic and randomly stocked.
pub fn bom(depth: usize, width: usize, seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = String::new();
    let mut next_id = 0usize;
    let mut frontier = vec![{
        next_id += 1;
        0usize
    }];
    src.push_str("part(c0). ");
    for level in 0..depth {
        let mut new_frontier = Vec::new();
        for &parent in &frontier {
            for _ in 0..width {
                let id = next_id;
                next_id += 1;
                src.push_str(&format!("part(c{id}). uses(c{parent}, c{id}). "));
                if level + 1 == depth {
                    src.push_str(&format!("atomic(c{id}). "));
                    if rng.gen_bool(0.8) {
                        src.push_str(&format!("in_stock(c{id}). "));
                    }
                } else {
                    new_frontier.push(id);
                }
            }
        }
        frontier = new_frontier;
    }
    src.push_str(
        "contains(X, Y) :- uses(X, Y).
         contains(X, Z) :- contains(X, Y), uses(Y, Z).
         missing(X) :- part(X), atomic(X), !in_stock(X).
         blocked(X) :- contains(X, Y), missing(Y).
         buildable(X) :- part(X), !blocked(X), !missing(X).",
    );
    Program::parse(&src).expect("bom workload parses")
}

/// `k` independent conference pipelines with disjoint relation vocabularies
/// (`submitted_d0`, `eligible_d1`, …), as in a multi-tenant database.
///
/// Updates confined to one department leave the others' strata untouched —
/// the locality that support-based maintenance exploits (engines skip
/// strata with no dependency on the changed relations) and full
/// recomputation cannot.
pub fn departments(k: usize, papers_each: usize, seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = String::new();
    for d in 0..k {
        for i in 1..=papers_each {
            src.push_str(&format!("submitted_d{d}(p{i}). "));
            if rng.gen_bool(0.15) {
                src.push_str(&format!("withdrawn_d{d}(p{i}). "));
            }
            if rng.gen_bool(0.4) {
                src.push_str(&format!("strong_d{d}(p{i}). "));
            }
        }
        src.push_str(&format!(
            "eligible_d{d}(P) :- submitted_d{d}(P), !withdrawn_d{d}(P).
             accepted_d{d}(P) :- eligible_d{d}(P), strong_d{d}(P).
             rejected_d{d}(P) :- eligible_d{d}(P), !accepted_d{d}(P). "
        ));
    }
    Program::parse(&src).expect("departments workload parses")
}

/// Configuration for [`random_stratified`].
#[derive(Clone, Copy, Debug)]
pub struct RandomConfig {
    /// Number of extensional relations.
    pub edb_rels: usize,
    /// Number of intensional relations.
    pub idb_rels: usize,
    /// Rules per intensional relation.
    pub rules_per_rel: usize,
    /// Asserted facts per extensional relation.
    pub facts_per_rel: usize,
    /// Size of the constant domain.
    pub domain: usize,
    /// Probability that a body literal is negated (forced to reference a
    /// strictly lower level, keeping the program stratified).
    pub neg_prob: f64,
}

impl Default for RandomConfig {
    fn default() -> RandomConfig {
        RandomConfig {
            edb_rels: 4,
            idb_rels: 8,
            rules_per_rel: 2,
            facts_per_rel: 20,
            domain: 12,
            neg_prob: 0.35,
        }
    }
}

/// A random program that is stratified **by construction**: intensional
/// relation `idb_i` sits at level `i+1` (extensional relations at level 0);
/// positive body literals reference any strictly lower level or the relation
/// itself (direct recursion), negative literals any strictly lower level.
/// All relations are unary over a shared constant domain, which keeps models
/// finite and joins meaningful.
pub fn random_stratified(cfg: &RandomConfig, seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = String::new();
    for r in 0..cfg.edb_rels {
        for _ in 0..cfg.facts_per_rel {
            let c = rng.gen_range(0..cfg.domain);
            src.push_str(&format!("e{r}({c}). "));
        }
    }
    let rel_name = |level: usize, rng: &mut SmallRng, cfg: &RandomConfig| -> String {
        // A relation from a uniformly chosen level `< level`.
        let l = rng.gen_range(0..level);
        if l == 0 {
            format!("e{}", rng.gen_range(0..cfg.edb_rels))
        } else {
            format!("i{}", l - 1)
        }
    };
    for r in 0..cfg.idb_rels {
        let level = r + 1;
        for _ in 0..cfg.rules_per_rel {
            let mut body = vec![format!("{}(X)", rel_name(level, &mut rng, cfg))];
            let extra = rng.gen_range(0..=2);
            for _ in 0..extra {
                if rng.gen_bool(cfg.neg_prob) {
                    body.push(format!("!{}(X)", rel_name(level, &mut rng, cfg)));
                } else if rng.gen_bool(0.2) && r > 0 {
                    // Direct positive recursion within the level.
                    body.push(format!("i{r}(X)"));
                } else {
                    body.push(format!("{}(X)", rel_name(level, &mut rng, cfg)));
                }
            }
            src.push_str(&format!("i{r}(X) :- {}. ", body.join(", ")));
        }
    }
    Program::parse(&src).expect("random workload parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_datalog::model::StandardModel;

    #[test]
    fn conference_is_stratified_and_nonempty() {
        let p = conference(30, 5, 42);
        let m = StandardModel::compute(&p).unwrap();
        assert!(m.db().count("eligible".into()) > 0);
        assert!(m.db().count("rejected".into()) > 0);
        // accepted ∪ rejected ⊆ eligible and they are disjoint.
        for f in m.db().facts_of("accepted".into()) {
            let r = strata_datalog::Fact::new("rejected", f.args.clone());
            assert!(!m.db().contains(&r), "paper both accepted and rejected");
        }
    }

    #[test]
    fn conference_is_deterministic_in_seed() {
        let a = conference(20, 4, 7).to_string();
        let b = conference(20, 4, 7).to_string();
        assert_eq!(a, b);
        let c = conference(20, 4, 8).to_string();
        assert_ne!(a, c);
    }

    #[test]
    fn tc_complement_partitions_pairs() {
        let p = tc_complement(8, 12, 3);
        let m = StandardModel::compute(&p).unwrap();
        let paths = m.db().count("path".into());
        let unreachable = m.db().count("unreachable".into());
        assert_eq!(paths + unreachable, 8 * 8);
    }

    #[test]
    fn bom_buildable_respects_stock() {
        let p = bom(3, 2, 5);
        let m = StandardModel::compute(&p).unwrap();
        let parts = m.db().count("part".into());
        assert_eq!(parts, 1 + 2 + 4 + 8);
        // Every part is either buildable or blocked/missing.
        for f in m.db().facts_of("part".into()) {
            let b = strata_datalog::Fact::new("buildable", f.args.clone());
            let bl = strata_datalog::Fact::new("blocked", f.args.clone());
            let mi = strata_datalog::Fact::new("missing", f.args.clone());
            assert!(
                m.db().contains(&b) || m.db().contains(&bl) || m.db().contains(&mi),
                "part {f} in limbo"
            );
        }
    }

    #[test]
    fn departments_are_independent() {
        let p = departments(3, 10, 1);
        let m = StandardModel::compute(&p).unwrap();
        for d in 0..3 {
            let eligible = m.db().count(format!("eligible_d{d}").as_str().into());
            assert!(eligible > 0, "department {d} empty");
            // accepted ∪ rejected = eligible within each department.
            let acc = m.db().count(format!("accepted_d{d}").as_str().into());
            let rej = m.db().count(format!("rejected_d{d}").as_str().into());
            assert_eq!(acc + rej, eligible);
        }
    }

    #[test]
    fn random_programs_are_stratified() {
        for seed in 0..20 {
            let p = random_stratified(&RandomConfig::default(), seed);
            assert!(
                StandardModel::compute(&p).is_ok(),
                "seed {seed} produced a non-stratified program"
            );
        }
    }

    #[test]
    fn random_program_determinism() {
        let cfg = RandomConfig::default();
        assert_eq!(
            random_stratified(&cfg, 11).to_string(),
            random_stratified(&cfg, 11).to_string()
        );
    }
}
