//! Randomized update scripts.
//!
//! A script is a sequence of [`Update`]s valid against the evolving
//! program: deletions always target a currently asserted fact, insertions
//! draw fresh or re-inserted facts over the program's extensional relations
//! and constant domain. Scripts are deterministic in their seed so every
//! engine replays the identical trace.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;
use strata_core::Update;
use strata_datalog::{Fact, Program, Symbol, Value};

/// Configuration for [`random_fact_script`].
#[derive(Clone, Copy, Debug)]
pub struct ScriptConfig {
    /// Number of updates to generate.
    pub len: usize,
    /// Probability that a step is an insertion (vs. a deletion).
    pub insert_prob: f64,
}

impl Default for ScriptConfig {
    fn default() -> ScriptConfig {
        ScriptConfig { len: 50, insert_prob: 0.5 }
    }
}

/// Generates a valid fact-update script for `program`.
///
/// Only relations that have asserted facts participate (the paper restricts
/// deletions to the extensional part; we insert over the same relations so
/// scripts stay balanced). Constants are drawn from the values already
/// appearing in the program's facts.
pub fn random_fact_script(program: &Program, cfg: &ScriptConfig, seed: u64) -> Vec<Update> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut asserted: Vec<Fact> = program.facts().cloned().collect();
    asserted.sort();
    let mut asserted_set: FxHashSet<Fact> = asserted.iter().cloned().collect();

    // Relations with asserted facts, with their arities, and the domain.
    let mut rels: Vec<(Symbol, usize)> = Vec::new();
    let mut seen = FxHashSet::default();
    let mut domain: Vec<Value> = Vec::new();
    let mut dom_seen = FxHashSet::default();
    for f in &asserted {
        if seen.insert(f.rel) {
            rels.push((f.rel, f.arity()));
        }
        for &v in f.args.iter() {
            if dom_seen.insert(v) {
                domain.push(v);
            }
        }
    }
    rels.sort_by_key(|(r, _)| r.as_str());
    domain.sort();
    if rels.is_empty() || domain.is_empty() {
        return Vec::new();
    }

    let mut script = Vec::with_capacity(cfg.len);
    for _ in 0..cfg.len {
        let do_insert = asserted.is_empty() || rng.gen_bool(cfg.insert_prob);
        if do_insert {
            // Try a few times to find a fact not currently asserted.
            let mut fact = None;
            for _ in 0..16 {
                let &(rel, arity) = rels.choose(&mut rng).expect("rels non-empty");
                let args: Box<[Value]> =
                    (0..arity).map(|_| *domain.choose(&mut rng).expect("domain")).collect();
                let f = Fact { rel, args };
                if !asserted_set.contains(&f) {
                    fact = Some(f);
                    break;
                }
            }
            let Some(f) = fact else { continue };
            asserted_set.insert(f.clone());
            asserted.push(f.clone());
            script.push(Update::InsertFact(f));
        } else {
            let i = rng.gen_range(0..asserted.len());
            let f = asserted.swap_remove(i);
            asserted_set.remove(&f);
            script.push(Update::DeleteFact(f));
        }
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        Program::parse(
            "e(1). e(2). e(3). g(1, 2). g(2, 3).
             p(X) :- e(X), !q(X). q(X) :- g(X, Y), e(Y).",
        )
        .unwrap()
    }

    #[test]
    fn scripts_are_deterministic() {
        let p = program();
        let cfg = ScriptConfig::default();
        let a = random_fact_script(&p, &cfg, 9);
        let b = random_fact_script(&p, &cfg, 9);
        assert_eq!(a, b);
        let c = random_fact_script(&p, &cfg, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn deletions_always_target_asserted_facts() {
        // Replay the script against a shadow assertion set: every delete
        // must hit, every insert must be fresh.
        let p = program();
        let script = random_fact_script(&p, &ScriptConfig { len: 200, insert_prob: 0.4 }, 123);
        let mut live: FxHashSet<Fact> = p.facts().cloned().collect();
        for u in &script {
            match u {
                Update::InsertFact(f) => assert!(live.insert(f.clone()), "stale insert {f}"),
                Update::DeleteFact(f) => assert!(live.remove(f), "invalid delete {f}"),
                _ => panic!("fact scripts contain only fact updates"),
            }
        }
    }

    #[test]
    fn script_length_respected() {
        let p = program();
        let s = random_fact_script(&p, &ScriptConfig { len: 37, insert_prob: 0.5 }, 1);
        // Insert collisions may skip a step, but most steps materialize.
        assert!(s.len() >= 30 && s.len() <= 37, "got {}", s.len());
    }

    #[test]
    fn empty_program_yields_empty_script() {
        let p = Program::parse("p(X) :- q(X).").unwrap();
        assert!(random_fact_script(&p, &ScriptConfig::default(), 0).is_empty());
    }
}
