//! # strata-workload
//!
//! Workload generators for the stratamaint reproduction:
//!
//! * [`paper`] — executable versions of every worked example in Apt & Pugin
//!   (PODS '87): the PODS database of §3, CONF (Example 1), the negation
//!   chain (Example 2), CONGRESS (Example 3), MEET (Example 4), and the
//!   §5.1 cascade demo.
//! * [`synth`] — scalable stratified families (conference pipeline,
//!   reachability complement, bill-of-materials, random stratified
//!   programs) used by the migration/latency experiments.
//! * [`script`] — randomized update scripts (insert/delete traces) over a
//!   program's asserted facts.

pub mod paper;
pub mod script;
pub mod synth;
