//! The paper's worked examples as executable databases.

use strata_datalog::Program;

/// §3 — the PODS database:
/// `submitted(1..l)`, `accepted(n)` for the first `k` papers,
/// `rejected(X) :- submitted(X), !accepted(X)`.
///
/// # Panics
/// If `k > l` (cannot accept more papers than were submitted).
pub fn pods(k: usize, l: usize) -> Program {
    assert!(k <= l, "cannot accept {k} of {l} submissions");
    let mut src = String::new();
    for i in 1..=l {
        src.push_str(&format!("submitted({i}). "));
    }
    for i in 1..=k {
        src.push_str(&format!("accepted({i}). "));
    }
    src.push_str("rejected(X) :- submitted(X), !accepted(X).");
    Program::parse(&src).expect("pods workload parses")
}

/// §4.1 Example 1 — CONF: `submitted(1..l)`, `late(l+1)`, an asserted
/// `accepted(l+1)` and the rule `accepted(X) :- submitted(X), !rejected(X)`.
pub fn conf(l: usize) -> Program {
    let mut src = String::new();
    for i in 1..=l {
        src.push_str(&format!("submitted({i}). "));
    }
    src.push_str(&format!("late({}). accepted({}). ", l + 1, l + 1));
    src.push_str("accepted(X) :- submitted(X), !rejected(X).");
    Program::parse(&src).expect("conf workload parses")
}

/// §4.2 Example 2 generalized — the negation chain
/// `p1 :- !p0. p2 :- !p1. … pn :- !p(n-1).` with model `{p1, p3, …}`.
///
/// # Panics
/// If `n == 0`.
pub fn chain(n: usize) -> Program {
    assert!(n > 0, "chain needs at least one rule");
    let mut src = String::new();
    for i in 1..=n {
        src.push_str(&format!("p{i} :- !p{}. ", i - 1));
    }
    Program::parse(&src).expect("chain workload parses")
}

/// §4.2 Example 3 — CONGRESS: `submitted(1..l)` with both
/// `accepted(X) :- submitted(X), !rejected(X)` and the extra, smaller-support
/// derivation `accepted(l) :- submitted(l)`.
pub fn congress(l: usize) -> Program {
    let mut src = String::new();
    for i in 1..=l {
        src.push_str(&format!("submitted({i}). "));
    }
    src.push_str("accepted(X) :- submitted(X), !rejected(X). ");
    src.push_str(&format!("accepted({l}) :- submitted({l})."));
    Program::parse(&src).expect("congress workload parses")
}

/// §4.2 Example 4 — MEET: submissions, a program committee, and authorship;
/// a paper is accepted if not rejected, or if a program-committee member
/// authored it. `author(name2, a)` makes `accepted(a)` doubly derivable.
pub fn meet(l: usize, committee: usize) -> Program {
    let mut src = String::new();
    for i in 1..=l {
        src.push_str(&format!("submitted(paper{i}). "));
    }
    for i in 1..=committee {
        src.push_str(&format!("in_program_committee(name{i}). "));
    }
    // Every member authored one paper (name i wrote paper i) so those
    // papers have two derivations of acceptance.
    for i in 1..=committee.min(l) {
        src.push_str(&format!("author(name{i}, paper{i}). "));
    }
    src.push_str("accepted(X) :- submitted(X), !rejected(X). ");
    src.push_str("accepted(Y) :- author(X, Y), in_program_committee(X).");
    Program::parse(&src).expect("meet workload parses")
}

/// §5.1 — the cascade demo `{r :- p. q :- r. q :- !p.}` with `M(P) = {q}`.
pub fn cascade_demo() -> Program {
    Program::parse("r :- p. q :- r. q :- !p.").expect("cascade demo parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_datalog::model::StandardModel;

    #[test]
    fn pods_model_shape() {
        let m = StandardModel::compute(&pods(2, 5)).unwrap();
        // 5 submitted + 2 accepted + 3 rejected.
        assert_eq!(m.db().len(), 10);
        assert!(m.db().contains_parsed("rejected(5)"));
        assert!(!m.db().contains_parsed("rejected(1)"));
    }

    #[test]
    fn conf_model_contains_all_accepted() {
        let m = StandardModel::compute(&conf(3)).unwrap();
        for i in 1..=4 {
            assert!(m.db().contains_parsed(&format!("accepted({i})")));
        }
        assert!(m.db().contains_parsed("late(4)"));
    }

    #[test]
    fn chain_model_alternates() {
        let m = StandardModel::compute(&chain(6)).unwrap();
        for i in 1..=6 {
            let f = format!("p{i}");
            assert_eq!(m.db().contains_parsed(&f), i % 2 == 1, "at {f}");
        }
    }

    #[test]
    fn congress_accepts_everything_initially() {
        let m = StandardModel::compute(&congress(4)).unwrap();
        for i in 1..=4 {
            assert!(m.db().contains_parsed(&format!("accepted({i})")));
        }
    }

    #[test]
    fn meet_accepts_all_submissions() {
        let m = StandardModel::compute(&meet(5, 2)).unwrap();
        for i in 1..=5 {
            assert!(m.db().contains_parsed(&format!("accepted(paper{i})")));
        }
    }

    #[test]
    fn cascade_demo_model_is_q() {
        let m = StandardModel::compute(&cascade_demo()).unwrap();
        assert_eq!(m.db().len(), 1);
        assert!(m.db().contains_parsed("q"));
    }

    #[test]
    #[should_panic(expected = "cannot accept")]
    fn pods_rejects_bad_parameters() {
        pods(6, 5);
    }
}
