//! The ingest service: one worker thread owning the engine, many clients.
//!
//! [`Service::start`] moves a registry-built engine (any strategy, durable
//! or in-memory) behind a shared mutex and spawns the worker. The worker
//! drains the [`IngestQueue`] group by group:
//!
//! * a **fact group** goes through the [`Coalescer`]: per-request oracle
//!   decisions plus a net batch, committed via one
//!   [`MaintenanceEngine::apply_all`] — for a durable engine that is one
//!   WAL transaction and one fsync for the whole group (**group commit**);
//! * a **rule barrier** is pre-checked against stream arities and then
//!   applied directly through the engine (stratification is the engine's
//!   judgment);
//! * a **flush barrier** simply acknowledges once everything before it has
//!   been decided.
//!
//! ## The read path: published snapshots, not the engine mutex
//!
//! After every engine transaction — and **before** delivering any of that
//! group's outcomes — the worker freezes the committed model into a
//! [`VersionedSnapshot`] (copy-on-publish: unchanged relations are
//! `Arc`-shared with the previous snapshot) and publishes it atomically.
//! Readers ([`Service::snapshot`], [`Service::snapshot_at`], the TCP
//! front-end's `query`/`stats`) take one `Arc` clone and never touch the
//! engine mutex, so a reader is never blocked behind an in-flight group
//! commit. [`Service::with_engine`] remains for administrative access that
//! genuinely needs the live engine; it locks the mutex as before.
//!
//! ## Supervision: the worker heals instead of dying
//!
//! The worker processes every group under `catch_unwind`. A panic or a
//! storage-level commit failure fails **only the in-flight group** — each
//! of its requests resolves with a typed, retryable rejection
//! ([`MaintenanceError::Panicked`] / [`MaintenanceError::Storage`]) — and
//! then the supervisor *heals*: it rebuilds the engine from durable state
//! via the [`EngineRebuild`] closure (bounded attempts with exponential
//! backoff, each verified by an end-to-end **write probe** — an empty WAL
//! transaction that exercises the fsync path), swaps it in, and publishes
//! a fresh snapshot version. If every attempt fails, the service degrades
//! to **read-only mode**: snapshot reads and stats keep serving, flushes
//! still ack, updates are rejected with [`MaintenanceError::ReadOnly`],
//! and the supervisor re-probes storage every
//! [`SupervisorConfig::probe_interval`] — a probe that succeeds re-arms
//! writes. Without a rebuild closure ([`Service::start`]) a failure goes
//! straight to read-only.
//!
//! ## Idempotent retries: the dedup window
//!
//! [`Service::submit_dedup`] keys a submission by `(client, seq)` and
//! remembers the last [`IngestConfig::dedup_window`] handles per client: a
//! retry of an already-decided request **replays** the recorded outcome
//! (never re-applying an acked update), a retry of an in-flight request
//! shares its handle, and only a request the service itself rejected with
//! a retryable error is re-executed.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rustc_hash::FxHashMap;
use strata_core::engine::normalize;
use strata_core::{
    DurabilityStats, EngineBox, FaultInjector, FaultPoint, MaintenanceEngine, MaintenanceError,
    Update,
};
use strata_datalog::ModelSnapshot;

use crate::coalesce::{Coalescer, Decision};
use crate::queue::{Drained, Group, IngestQueue, Op, Outcome, Request, SubmitHandle};
use crate::tenant::WorkerBudget;
use crate::IngestConfig;

/// Registry handles for the worker's group pipeline and the supervisor,
/// registered once and shared by every service in the process.
struct WorkerObs {
    commit_us: Arc<strata_obs::Histogram>,
    coalesce_us: Arc<strata_obs::Histogram>,
    apply_us: Arc<strata_obs::Histogram>,
    publish_us: Arc<strata_obs::Histogram>,
    wait_us: Arc<strata_obs::Histogram>,
    group_size: Arc<strata_obs::Histogram>,
    restarts: Arc<strata_obs::Counter>,
    heal_attempts: Arc<strata_obs::Counter>,
    backoff_us: Arc<strata_obs::Histogram>,
}

fn worker_obs() -> &'static WorkerObs {
    static OBS: std::sync::OnceLock<WorkerObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let r = strata_obs::global();
        WorkerObs {
            commit_us: r.histogram("strata_group_commit_us"),
            coalesce_us: r.histogram("strata_group_coalesce_us"),
            apply_us: r.histogram("strata_group_apply_us"),
            publish_us: r.histogram("strata_snapshot_publish_us"),
            wait_us: r.histogram("strata_queue_wait_us"),
            group_size: r.histogram("strata_group_size"),
            restarts: r.counter("strata_supervisor_restarts_total"),
            heal_attempts: r.counter("strata_supervisor_heal_attempts_total"),
            backoff_us: r.histogram("strata_supervisor_backoff_us"),
        }
    })
}

/// Opens the trace span for a drained group and records its queue-side
/// histograms (per-request enqueue→cut wait, group size).
fn begin_group_span(worker: u64, ordinal: u64, kind: strata_obs::GroupKind, requests: &[Request]) {
    let obs = worker_obs();
    let mut traces = Vec::with_capacity(requests.len());
    let mut enqueue_us = u64::MAX;
    for r in requests {
        traces.push(r.trace);
        enqueue_us = enqueue_us.min(strata_obs::trace::instant_us(r.at));
        obs.wait_us.record(r.at.elapsed().as_micros() as u64);
    }
    obs.group_size.record(requests.len() as u64);
    strata_obs::trace::begin_group(worker, ordinal, kind, traces, enqueue_us.min(u64::MAX - 1));
}

/// Seals the active span and feeds the per-stage latency histograms.
fn finish_group_span(version: Option<u64>, committed: bool) {
    if let Some(span) = strata_obs::trace::finish_group(version, committed) {
        let obs = worker_obs();
        obs.commit_us.record(span.commit_us());
        obs.coalesce_us.record(span.coalesce_us - span.cut_us);
        obs.apply_us.record(span.apply_us - span.coalesce_us);
        obs.publish_us.record(span.publish_us - span.fsync_us);
    }
}

/// Monotonic counters the worker maintains; snapshot via [`Service::stats`].
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    /// Groups drained (fact groups and barriers alike) — the `group`
    /// ordinal delivered in [`Outcome::Accepted`].
    groups: AtomicU64,
    /// `apply_all` transactions actually issued (fact groups whose net
    /// batch was non-empty, plus rule barriers).
    commits: AtomicU64,
    /// Net updates carried by those transactions.
    committed_updates: AtomicU64,
    /// Accepted updates that coalesced away before reaching the engine.
    coalesced: AtomicU64,
    flushes: AtomicU64,
    /// Snapshot reads served ([`Service::snapshot`] / [`Service::snapshot_at`]).
    snapshot_reads: AtomicU64,
    /// Successful heals: engine rebuilds the supervisor swapped in after a
    /// worker panic or storage failure (including read-only re-arms).
    worker_restarts: AtomicU64,
    /// Duplicate `(client, seq)` submissions answered from the dedup
    /// window instead of re-executing.
    deduped: AtomicU64,
    /// Whether the service is currently degraded to read-only mode.
    read_only: AtomicBool,
}

/// One published commit: the committed model frozen at a version.
///
/// Obtained from [`Service::snapshot`] (latest) or [`Service::snapshot_at`]
/// (read-your-writes); queries evaluate against [`Self::model`] with no
/// engine access. Version 0 is the state at service start (for a durable
/// engine, the recovered state); every subsequent engine transaction bumps
/// it by one.
#[derive(Debug)]
pub struct VersionedSnapshot {
    /// Commit version this snapshot reflects.
    pub version: u64,
    /// The committed model, frozen. Unchanged relations are shared with the
    /// predecessor snapshot, so holding several versions is cheap.
    pub model: ModelSnapshot,
    /// Durability counters as of this commit (storage-backed engines).
    pub durability: Option<DurabilityStats>,
}

/// The atomic publish cell: the worker swaps in each new snapshot; readers
/// clone the `Arc` out. The `Condvar` wakes `@version` waiters.
#[derive(Debug)]
struct SnapshotCell {
    latest: Mutex<Arc<VersionedSnapshot>>,
    advanced: Condvar,
}

impl SnapshotCell {
    fn new(initial: VersionedSnapshot) -> SnapshotCell {
        SnapshotCell { latest: Mutex::new(Arc::new(initial)), advanced: Condvar::new() }
    }

    /// Reader side: the latest published snapshot (one lock + `Arc` clone;
    /// the lock is never held across a commit).
    fn latest(&self) -> Arc<VersionedSnapshot> {
        Arc::clone(&self.latest.lock().expect("snapshot cell poisoned"))
    }

    /// Worker side: publishes `snap` as the new latest and wakes waiters.
    fn publish(&self, snap: VersionedSnapshot) {
        let mut latest = self.latest.lock().expect("snapshot cell poisoned");
        debug_assert!(snap.version >= latest.version, "versions advance monotonically");
        *latest = Arc::new(snap);
        self.advanced.notify_all();
        drop(latest);
    }

    /// Re-publishes the latest snapshot with refreshed durability counters
    /// — same model, same version. Used after an administrative checkpoint,
    /// which changes the durable surface without committing anything, so
    /// no waiter is woken.
    fn refresh_durability(&self, durability: Option<DurabilityStats>) {
        let mut latest = self.latest.lock().expect("snapshot cell poisoned");
        *latest = Arc::new(VersionedSnapshot {
            version: latest.version,
            model: latest.model.clone(),
            durability,
        });
    }

    /// Blocks until the published version reaches `version`, bounded by
    /// `wait`. `Err` carries the version that was published at timeout.
    fn wait_for(&self, version: u64, wait: Duration) -> Result<Arc<VersionedSnapshot>, u64> {
        let deadline = Instant::now() + wait;
        let mut latest = self.latest.lock().expect("snapshot cell poisoned");
        while latest.version < version {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(latest.version);
            }
            let (guard, _timeout) =
                self.advanced.wait_timeout(latest, left).expect("snapshot cell poisoned");
            latest = guard;
        }
        Ok(Arc::clone(&latest))
    }
}

/// A point-in-time view of the service, for dashboards and the `stats`
/// protocol verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests submitted (updates only; flushes are counted separately).
    pub submitted: u64,
    /// Requests accepted (applied or coalesced away).
    pub accepted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Groups drained from the queue.
    pub groups: u64,
    /// Engine transactions issued (`apply_all` calls + rule applies).
    pub commits: u64,
    /// Net updates those transactions carried.
    pub committed_updates: u64,
    /// Accepted updates that never reached the engine (coalesced).
    pub coalesced: u64,
    /// Flush barriers acknowledged.
    pub flushes: u64,
    /// Requests pending in the queue right now.
    pub pending: usize,
    /// Submits that blocked on the `max_pending` backpressure bound
    /// (cumulative).
    pub blocked: u64,
    /// Commit version of the currently published snapshot.
    pub snapshot_version: u64,
    /// Snapshot reads served off the published snapshot (no engine lock).
    pub snapshot_reads: u64,
    /// Facts in the published committed model.
    pub model_facts: usize,
    /// Successful supervisor heals (engine rebuilds swapped in after a
    /// panic or storage failure, including read-only re-arms).
    pub worker_restarts: u64,
    /// Duplicate `(client, seq)` submissions replayed from the dedup
    /// window instead of re-executed.
    pub deduped: u64,
    /// Whether the service is currently in read-only degradation: submits
    /// reject with [`MaintenanceError::ReadOnly`] while snapshot reads,
    /// stats, and flush acks keep serving.
    pub read_only: bool,
    /// Durability counters as of the published snapshot, when the engine is
    /// storage-backed. Under group commit `durability.wal_txns` grows with
    /// `commits`, not `accepted` — the whole point.
    pub durability: Option<DurabilityStats>,
}

/// Restart policy of the self-healing worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Consecutive rebuild attempts after one failure before the service
    /// degrades to read-only mode.
    pub max_restarts: u32,
    /// Sleep before the second rebuild attempt; doubles on each further
    /// attempt (exponential backoff).
    pub backoff: Duration,
    /// How often read-only mode re-probes storage; a successful probe
    /// swaps a rebuilt engine in and re-arms writes.
    pub probe_interval: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_restarts: 3,
            backoff: Duration::from_millis(10),
            probe_interval: Duration::from_millis(250),
        }
    }
}

/// Rebuilds a fresh engine from durable state after a worker failure —
/// typically a closure re-opening the same store through the registry, so
/// recovery replays the WAL. Every committed (acked) update is in the WAL,
/// so the rebuilt engine is exactly the acked history.
pub type EngineRebuild = Arc<dyn Fn() -> Result<EngineBox, MaintenanceError> + Send + Sync>;

/// Maximum clients tracked in the dedup table; the oldest client's window
/// is evicted FIFO beyond this, bounding memory against client-id churn.
const MAX_DEDUP_CLIENTS: usize = 1024;

/// One client's recent `(seq → handle)` submissions, FIFO-bounded at
/// [`IngestConfig::dedup_window`].
#[derive(Debug, Default)]
struct ClientWindow {
    seqs: FxHashMap<u64, SubmitHandle>,
    order: VecDeque<u64>,
}

/// The idempotency table behind [`Service::submit_dedup`].
#[derive(Debug, Default)]
struct DedupTable {
    clients: FxHashMap<String, ClientWindow>,
    /// Client arrival order, for FIFO eviction at [`MAX_DEDUP_CLIENTS`].
    order: VecDeque<String>,
}

impl DedupTable {
    fn lookup(&self, client: &str, seq: u64) -> Option<SubmitHandle> {
        self.clients.get(client).and_then(|w| w.seqs.get(&seq)).cloned()
    }

    fn record(&mut self, client: &str, seq: u64, handle: SubmitHandle, window: usize) {
        if !self.clients.contains_key(client) {
            while self.clients.len() >= MAX_DEDUP_CLIENTS {
                match self.order.pop_front() {
                    Some(evict) => {
                        self.clients.remove(&evict);
                    }
                    None => break,
                }
            }
            self.order.push_back(client.to_string());
        }
        let w = self.clients.entry(client.to_string()).or_default();
        if w.seqs.insert(seq, handle).is_none() {
            w.order.push_back(seq);
            while w.order.len() > window {
                match w.order.pop_front() {
                    Some(old) => {
                        w.seqs.remove(&old);
                    }
                    None => break,
                }
            }
        }
    }
}

/// Locks the engine mutex, recovering from poisoning: the worker may have
/// panicked (and been caught by the supervisor) while holding it, and
/// every panic window leaves the engine either untouched or about to be
/// replaced by a rebuild — waiters must not cascade the panic.
fn lock_engine(engine: &Mutex<EngineBox>) -> MutexGuard<'_, EngineBox> {
    engine.lock().unwrap_or_else(|p| p.into_inner())
}

/// The concurrent ingest service around one maintained database.
pub struct Service {
    queue: Arc<IngestQueue>,
    engine: Arc<Mutex<EngineBox>>,
    counters: Arc<Counters>,
    snapshots: Arc<SnapshotCell>,
    dedup: Mutex<DedupTable>,
    worker: Option<JoinHandle<()>>,
    /// Process-unique worker id stamped on every trace span this service
    /// seals — group ordinals restart at 1 per service, so concurrent
    /// services (tests, embedded uses) need this to tell spans apart.
    worker_id: u64,
}

impl Service {
    /// Starts the service over `engine` and spawns the worker thread.
    ///
    /// No rebuild source: a worker panic or storage failure degrades the
    /// service straight to read-only mode (reads and flush acks keep
    /// serving; submits reject with [`MaintenanceError::ReadOnly`]). Use
    /// [`Service::start_supervised`] to make failures heal instead.
    pub fn start(engine: EngineBox, cfg: IngestConfig) -> Service {
        Service::start_supervised(engine, cfg, SupervisorConfig::default(), None, None)
    }

    /// Starts the service with a self-healing worker: after a panic or a
    /// storage-level failure the supervisor rebuilds the engine through
    /// `rebuild` (bounded attempts, exponential backoff, write-probed),
    /// swaps it in, and publishes a fresh snapshot version. `faults` arms
    /// the worker's injectable panic points (tests, `--fault-plan`).
    pub fn start_supervised(
        engine: EngineBox,
        cfg: IngestConfig,
        supervisor: SupervisorConfig,
        rebuild: Option<EngineRebuild>,
        faults: Option<Arc<FaultInjector>>,
    ) -> Service {
        Service::start_budgeted(engine, cfg, supervisor, rebuild, faults, None)
    }

    /// [`Service::start_supervised`] with a shared [`WorkerBudget`]: the
    /// worker thread still exists per service, but it only *processes
    /// groups* while holding a budget permit, so N tenants sharing one
    /// budget never run more than `budget.limit()` engine commits
    /// concurrently. Idle workers (blocked in `next_group`) hold no permit.
    pub fn start_budgeted(
        engine: EngineBox,
        cfg: IngestConfig,
        supervisor: SupervisorConfig,
        rebuild: Option<EngineRebuild>,
        faults: Option<Arc<FaultInjector>>,
        budget: Option<Arc<WorkerBudget>>,
    ) -> Service {
        let queue = Arc::new(IngestQueue::new(cfg));
        // Version 0 is published before the worker exists, so readers have
        // a committed model from the first instant — for a durable engine,
        // the recovered state.
        let initial = VersionedSnapshot {
            version: 0,
            model: engine.model().snapshot(None),
            durability: engine.durability(),
        };
        let snapshots = Arc::new(SnapshotCell::new(initial));
        let engine = Arc::new(Mutex::new(engine));
        let counters = Arc::new(Counters::default());
        let worker_id = strata_obs::trace::next_worker_id();
        let worker = {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let counters = Arc::clone(&counters);
            let snapshots = Arc::clone(&snapshots);
            std::thread::Builder::new()
                .name("strata-ingest".into())
                .spawn(move || {
                    worker_loop(
                        &queue,
                        &engine,
                        &counters,
                        &snapshots,
                        supervisor,
                        rebuild.as_ref(),
                        faults.as_ref(),
                        budget.as_ref(),
                        worker_id,
                    )
                })
                .expect("spawn ingest worker")
        };
        Service {
            queue,
            engine,
            counters,
            snapshots,
            dedup: Mutex::new(DedupTable::default()),
            worker: Some(worker),
            worker_id,
        }
    }

    /// The process-unique id stamped as `worker=` on this service's trace
    /// spans ([`strata_obs::GroupSpan::worker`]) — filter on it when more
    /// than one service runs in the process.
    pub fn worker_ordinal(&self) -> u64 {
        self.worker_id
    }

    /// Pushes the service-level gauges into the global metrics registry so
    /// a `metrics` render agrees with [`Service::stats`] by construction.
    /// Called by the wire front-end and the REPL just before rendering;
    /// the authoritative values stay in [`ServiceStats`].
    pub fn fill_registry(&self) {
        let stats = self.stats();
        let r = strata_obs::global();
        r.gauge("strata_service_worker_restarts").set(stats.worker_restarts);
        r.gauge("strata_service_read_only").set(u64::from(stats.read_only));
        r.gauge("strata_service_blocked").set(stats.blocked);
        r.gauge("strata_service_snapshot_reads").set(stats.snapshot_reads);
        r.gauge("strata_queue_depth").set(stats.pending as u64);
        if let Some(d) = &stats.durability {
            r.gauge("strata_recovery_ms").set(d.recovery_ms);
            r.gauge("strata_snapshot_chain_len").set(d.snapshot_chain_len);
            r.gauge("strata_replay_bulk")
                .set(u64::from(d.replay_mode == strata_core::ReplayMode::Bulk));
        }
    }

    /// Submits one update; returns immediately (blocking only on
    /// backpressure) with the completion handle.
    pub fn submit(&self, update: Update) -> SubmitHandle {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue.submit(update)
    }

    /// Idempotent submit: keyed by `(client, seq)` against the dedup
    /// window, so a client may safely retry an ambiguous failure (I/O
    /// error, [`MaintenanceError::Panicked`], …) without ever
    /// double-applying an acked update.
    ///
    /// * first sighting — executed normally, handle recorded;
    /// * retry of an **in-flight** request — shares the original handle;
    /// * retry of a **decided** request — replays the recorded outcome,
    ///   except that a decision the service itself marked retryable
    ///   ([`MaintenanceError::is_retryable`]) is re-executed: that is what
    ///   the client was told to do.
    ///
    /// The window holds the last [`IngestConfig::dedup_window`] sequence
    /// numbers per client; a retry older than that re-executes (for fact
    /// updates this stays safe — inserts and deletes are idempotent on the
    /// belief state).
    pub fn submit_dedup(&self, client: &str, seq: u64, update: Update) -> SubmitHandle {
        let window = self.queue.config().dedup_window.max(1);
        let mut table = self.dedup.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(handle) = table.lookup(client, seq) {
            match handle.try_get() {
                // The service told the client to retry this one: re-execute
                // and replace the recorded handle below.
                Some(Outcome::Rejected(e)) if e.is_retryable() => {}
                // In-flight or decided: never re-apply.
                _ => {
                    self.counters.deduped.fetch_add(1, Ordering::Relaxed);
                    return handle;
                }
            }
        }
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        // The table lock is held across the (possibly backpressured)
        // submit so a concurrent retry of the same (client, seq) cannot
        // slip past the window and double-apply.
        let handle = self.queue.submit(update);
        table.record(client, seq, handle.clone(), window);
        handle
    }

    /// Submits and waits for the decision — the synchronous convenience.
    pub fn apply(&self, update: Update) -> Outcome {
        self.submit(update).wait()
    }

    /// Blocks until every request submitted before this call has been
    /// decided (and, for a durable engine, fsynced).
    pub fn flush(&self) {
        self.queue.submit_flush().wait();
    }

    /// Submits a flush barrier without waiting; the returned handle
    /// resolves — with the current commit version — once every earlier
    /// request has been decided. The pipelined front-end uses this to keep
    /// flushes in flight alongside other requests.
    pub fn submit_flush(&self) -> SubmitHandle {
        self.queue.submit_flush()
    }

    /// Runs `f` against the engine between group commits. Readers see a
    /// committed state; writers must go through [`Service::submit`].
    ///
    /// This **blocks behind in-flight group commits** — it is the
    /// administrative path (checkpointing, shutdown, diagnostics). Queries
    /// and stats should read a published snapshot instead
    /// ([`Service::snapshot`]), which never touches the engine mutex.
    pub fn with_engine<R>(&self, f: impl FnOnce(&dyn MaintenanceEngine) -> R) -> R {
        let engine = lock_engine(&self.engine);
        f(engine.as_ref())
    }

    /// [`Service::with_engine`] with mutable access — for administrative
    /// operations like [`MaintenanceEngine::checkpoint`] at graceful
    /// shutdown. The engine mutex serializes this against the worker, so
    /// it can never observe (or create) a half-applied group.
    pub fn with_engine_mut<R>(&self, f: impl FnOnce(&mut dyn MaintenanceEngine) -> R) -> R {
        let mut engine = lock_engine(&self.engine);
        f(engine.as_mut())
    }

    /// Checkpoints the durable store now (snapshot + empty the WAL),
    /// honoring the engine's configured snapshot mode — the `compact`
    /// verb's implementation. Serializes behind in-flight group commits
    /// via the engine mutex. `Ok(Some(seq))` is the transaction sequence
    /// the snapshot chain now covers through; `Ok(None)` means the engine
    /// is in-memory and had nothing to checkpoint.
    pub fn compact(&self) -> Result<Option<u64>, MaintenanceError> {
        self.with_engine_mut(|e| {
            if !e.checkpoint()? {
                return Ok(None);
            }
            let durability = e.durability();
            let seq = durability.as_ref().map(|d| d.snapshot_seq).unwrap_or(0);
            // Still under the engine lock (the same lock order the worker
            // uses), re-publish the latest snapshot — same model, same
            // version — with the post-checkpoint durability counters, so
            // `stats` reflects the compaction without waiting for the next
            // commit to publish.
            self.snapshots.refresh_durability(durability);
            Ok(Some(seq))
        })
    }

    /// The latest published snapshot: one `Arc` clone, no engine access.
    /// Reads here are never blocked by an in-flight commit.
    pub fn snapshot(&self) -> Arc<VersionedSnapshot> {
        self.counters.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        self.snapshots.latest()
    }

    /// Read-your-writes: blocks until the published snapshot reaches
    /// `version` (the token delivered in [`Outcome::Accepted`]), bounded by
    /// [`IngestConfig::read_wait`]. `Err` carries the version that was
    /// published when the wait gave up.
    pub fn snapshot_at(&self, version: u64) -> Result<Arc<VersionedSnapshot>, u64> {
        self.counters.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        self.snapshots.wait_for(version, self.queue.config().read_wait)
    }

    /// A point-in-time stats snapshot — served entirely off the published
    /// snapshot and the counters; never touches the engine mutex.
    pub fn stats(&self) -> ServiceStats {
        let snap = self.snapshots.latest();
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            groups: self.counters.groups.load(Ordering::Relaxed),
            commits: self.counters.commits.load(Ordering::Relaxed),
            committed_updates: self.counters.committed_updates.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            pending: self.queue.pending(),
            blocked: self.queue.blocked(),
            snapshot_version: snap.version,
            snapshot_reads: self.counters.snapshot_reads.load(Ordering::Relaxed),
            model_facts: snap.model.len(),
            worker_restarts: self.counters.worker_restarts.load(Ordering::Relaxed),
            deduped: self.counters.deduped.load(Ordering::Relaxed),
            read_only: self.counters.read_only.load(Ordering::SeqCst),
            durability: snap.durability,
        }
    }

    /// The queue's configured watermarks.
    pub fn config(&self) -> IngestConfig {
        *self.queue.config()
    }

    /// Drains outstanding requests, stops the worker, and hands the engine
    /// back (e.g. to close a durable store cleanly).
    pub fn shutdown(mut self) -> EngineBox {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        let engine = Arc::try_unwrap(std::mem::replace(
            &mut self.engine,
            Arc::new(Mutex::new(null_engine())),
        ))
        .unwrap_or_else(|_| panic!("engine still shared after worker join"));
        engine.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Placeholder swapped into a [`Service`] being shut down so the real
/// engine can be moved out. Never runs: `shutdown` consumes the service.
fn null_engine() -> EngineBox {
    struct Null(strata_datalog::Program, strata_datalog::Database);
    impl MaintenanceEngine for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn program(&self) -> &strata_datalog::Program {
            &self.0
        }
        fn model(&self) -> &strata_datalog::Database {
            &self.1
        }
        fn support_bytes(&self) -> usize {
            0
        }
        fn apply(&mut self, _: &Update) -> Result<strata_core::UpdateStats, MaintenanceError> {
            Err(MaintenanceError::Shutdown)
        }
    }
    Box::new(Null(strata_datalog::Program::new(), strata_datalog::Database::new()))
}

/// The worker: drain, decide, group-commit, **publish**, fulfill — under
/// supervision: every group runs inside `catch_unwind`, and a panic or
/// storage failure fails only that group before the supervisor heals (or
/// degrades to read-only). Exits when the queue is closed and empty.
///
/// The publish-before-fulfill order is the read-your-writes linchpin: by
/// the time any producer observes its [`Outcome::Accepted`], the snapshot
/// carrying that version is already visible to every reader.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    queue: &IngestQueue,
    engine: &Mutex<EngineBox>,
    counters: &Counters,
    snapshots: &SnapshotCell,
    sup: SupervisorConfig,
    rebuild: Option<&EngineRebuild>,
    faults: Option<&Arc<FaultInjector>>,
    budget: Option<&Arc<WorkerBudget>>,
    worker_id: u64,
) {
    // If the worker dies — only a panic outside the supervised group
    // window can cause that now — producers must not hang forever on
    // their completion handles: close the queue and drop everything still
    // pending on the way out (dropping an undecided request rejects its
    // handle with `Shutdown`, and the in-flight group's requests unwind
    // the same way). On a normal exit the queue is already closed and
    // drained, so the guard is a no-op.
    struct Bailout<'a>(&'a IngestQueue);
    impl Drop for Bailout<'_> {
        fn drop(&mut self) {
            self.0.close();
            drop(self.0.drain_all());
        }
    }
    let _bailout = Bailout(queue);
    let mut coalescer = Coalescer::new();
    // Commit version: advanced only when an engine transaction actually
    // happens, so the version sequence is dense over *commits* and a
    // coalesced-to-nothing group does not force a republish.
    let mut version = snapshots.latest().version;
    while let Some(group) = queue.next_group() {
        // The permit is acquired only once there is work (idle workers
        // consume no budget) and released before any heal/read-only
        // backoff, so a wedged tenant cannot starve its peers.
        let permit = budget.map(|b| b.acquire());
        let ordinal = counters.groups.fetch_add(1, Ordering::Relaxed) + 1;
        let result = catch_unwind(AssertUnwindSafe(|| {
            process_group(
                &group,
                ordinal,
                &mut version,
                engine,
                &mut coalescer,
                counters,
                snapshots,
                faults,
                worker_id,
            )
        }));
        let failure = match result {
            Ok(Ok(())) => {
                // The group is committed and its outcomes delivered; give
                // the engine's auto-compaction policy a chance to fold the
                // WAL into a checkpoint. Failure here is non-fatal — the
                // WAL is intact and the next attempt may succeed — so it
                // is logged, never healed.
                if let Err(e) = lock_engine(engine).auto_checkpoint() {
                    strata_obs::trace::event(
                        strata_obs::EventKind::StorageFault,
                        format!("worker={worker_id} auto-checkpoint failed: {e}"),
                    );
                }
                None
            }
            // Storage-level commit failure: the in-flight group was
            // already rejected (typed `Storage`) by the commit path.
            Ok(Err(e)) => {
                strata_obs::trace::event(
                    strata_obs::EventKind::StorageFault,
                    format!("worker={worker_id} {e}"),
                );
                Some(e)
            }
            Err(payload) => {
                // The worker panicked mid-group. Requests are *borrowed*
                // by the supervised window, so the undecided ones are
                // still ours to fail — with the panic message, typed and
                // retryable. Anything already acked stays acked (and the
                // publish behind it stays published).
                let msg = panic_message(payload.as_ref());
                // A panic may unwind with an open span; seal it failed so
                // the ring never carries a stale half-group forward.
                finish_group_span(None, false);
                strata_obs::trace::event(
                    strata_obs::EventKind::PanicCaught,
                    format!("worker={worker_id} {msg}"),
                );
                reject_undecided(&group, &MaintenanceError::Panicked(msg.clone()), counters);
                Some(MaintenanceError::Panicked(msg))
            }
        };
        drop(group);
        drop(permit);
        if failure.is_some() {
            // Heal: bounded rebuild attempts with backoff; on success the
            // rebuilt engine (recovered from the WAL — exactly the acked
            // history) is swapped in and a fresh version published. The
            // coalescer restarts too: its stream-arity memory must match
            // the recovered program, not the failed in-memory one.
            if !heal(engine, snapshots, &mut version, &mut coalescer, counters, sup, rebuild) {
                // Persistent failure: serve what we can. Returns when a
                // probe re-arms writes; `false` means the queue closed.
                if !read_only_loop(
                    queue,
                    engine,
                    snapshots,
                    &mut version,
                    &mut coalescer,
                    counters,
                    sup,
                    rebuild,
                ) {
                    return;
                }
            }
        }
    }
}

/// Best-effort panic payload rendering for the typed `Panicked` error.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Fails every still-undecided request of `group` with `error` (the
/// supervisor's panic path — acked requests keep their acks).
fn reject_undecided(group: &Group, error: &MaintenanceError, counters: &Counters) {
    let requests: &[Request] = match group {
        Group::Facts(requests) => requests,
        Group::Barrier(request) => std::slice::from_ref(request),
    };
    for request in requests {
        if request.handle.try_get().is_none() {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            request.handle.fulfill_if_undecided(Outcome::Rejected(error.clone()));
        }
    }
}

/// Panics at an armed worker fault point (the injectable crash surface).
fn fire_panic(faults: Option<&Arc<FaultInjector>>, point: FaultPoint) {
    if let Some(injector) = faults {
        if injector.fires(point).is_some() {
            panic!("injected fault: worker panic at {point}");
        }
    }
}

/// Dispatches one drained group. `Err` means an infrastructure failure the
/// supervisor must heal from (the group itself has already been rejected);
/// semantic rejections are normal decisions and return `Ok`.
#[allow(clippy::too_many_arguments)]
fn process_group(
    group: &Group,
    ordinal: u64,
    version: &mut u64,
    engine: &Mutex<EngineBox>,
    coalescer: &mut Coalescer,
    counters: &Counters,
    snapshots: &SnapshotCell,
    faults: Option<&Arc<FaultInjector>>,
    worker_id: u64,
) -> Result<(), MaintenanceError> {
    match group {
        Group::Facts(requests) => commit_fact_group(
            requests, ordinal, version, engine, coalescer, counters, snapshots, faults, worker_id,
        ),
        Group::Barrier(request) => match &request.op {
            Op::Flush => {
                // A flush commits nothing (no span): the published snapshot
                // is already current, so the ack just carries its version.
                counters.flushes.fetch_add(1, Ordering::Relaxed);
                request.handle.fulfill(Outcome::Accepted { group: ordinal, version: *version });
                Ok(())
            }
            Op::Update(update) => commit_rule_barrier(
                request, update, ordinal, version, engine, coalescer, counters, snapshots,
                worker_id,
            ),
        },
    }
}

/// Bounded-backoff rebuild loop; `true` once a probed engine is live.
fn heal(
    engine: &Mutex<EngineBox>,
    snapshots: &SnapshotCell,
    version: &mut u64,
    coalescer: &mut Coalescer,
    counters: &Counters,
    sup: SupervisorConfig,
    rebuild: Option<&EngineRebuild>,
) -> bool {
    let Some(rebuild) = rebuild else { return false };
    let mut backoff = sup.backoff;
    for attempt in 0..sup.max_restarts {
        if attempt > 0 {
            worker_obs().backoff_us.record(backoff.as_micros() as u64);
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
        worker_obs().heal_attempts.inc();
        strata_obs::trace::event(
            strata_obs::EventKind::HealAttempt,
            format!("attempt={} of {}", attempt + 1, sup.max_restarts),
        );
        if try_heal_once(engine, snapshots, version, coalescer, counters, rebuild) {
            return true;
        }
    }
    false
}

/// One rebuild attempt: reconstruct the engine from durable state, verify
/// writability end to end, swap it in, publish a fresh snapshot version.
///
/// The **write probe** is the important half: `apply_all(&[])` is an empty
/// batch, but a durable engine still logs and fsyncs one WAL transaction
/// for it — so a storage fault that only strikes at sync time (the sticky
/// fsync-failure case) is caught *here*, instead of re-arming writes and
/// failing the next real group in an endless flap.
fn try_heal_once(
    engine: &Mutex<EngineBox>,
    snapshots: &SnapshotCell,
    version: &mut u64,
    coalescer: &mut Coalescer,
    counters: &Counters,
    rebuild: &EngineRebuild,
) -> bool {
    let Ok(mut fresh) = rebuild() else { return false };
    if fresh.apply_all(&[]).is_err() {
        return false;
    }
    {
        let mut guard = lock_engine(engine);
        *guard = fresh;
        *version += 1;
        publish(snapshots, &guard, *version);
    }
    counters.worker_restarts.fetch_add(1, Ordering::Relaxed);
    worker_obs().restarts.inc();
    strata_obs::trace::event(strata_obs::EventKind::Healed, format!("version={}", *version));
    *coalescer = Coalescer::new();
    true
}

/// Read-only degradation: snapshot reads and stats never come through the
/// worker and keep serving untouched; this loop keeps the *queue* live —
/// updates reject with the typed [`MaintenanceError::ReadOnly`], flushes
/// still ack (everything before them is decided by construction) — and
/// re-probes storage every [`SupervisorConfig::probe_interval`]. Returns
/// `true` when a probe heals the engine (writes re-arm), `false` when the
/// queue closed (worker exit).
#[allow(clippy::too_many_arguments)]
fn read_only_loop(
    queue: &IngestQueue,
    engine: &Mutex<EngineBox>,
    snapshots: &SnapshotCell,
    version: &mut u64,
    coalescer: &mut Coalescer,
    counters: &Counters,
    sup: SupervisorConfig,
    rebuild: Option<&EngineRebuild>,
) -> bool {
    counters.read_only.store(true, Ordering::SeqCst);
    strata_obs::trace::event(strata_obs::EventKind::ReadOnlyEnter, String::new());
    loop {
        match queue.next_group_timeout(sup.probe_interval) {
            Drained::Closed => return false,
            Drained::TimedOut => {
                if let Some(rebuild) = rebuild {
                    worker_obs().heal_attempts.inc();
                    strata_obs::trace::event(
                        strata_obs::EventKind::HealAttempt,
                        "probe after read-only wait".to_string(),
                    );
                    if try_heal_once(engine, snapshots, version, coalescer, counters, rebuild) {
                        counters.read_only.store(false, Ordering::SeqCst);
                        strata_obs::trace::event(
                            strata_obs::EventKind::ReadOnlyExit,
                            format!("version={}", *version),
                        );
                        return true;
                    }
                }
            }
            Drained::Group(group) => {
                let ordinal = counters.groups.fetch_add(1, Ordering::Relaxed) + 1;
                match group {
                    Group::Facts(requests) => {
                        counters.rejected.fetch_add(requests.len() as u64, Ordering::Relaxed);
                        for request in &requests {
                            request.handle.fulfill(Outcome::Rejected(MaintenanceError::ReadOnly));
                        }
                    }
                    Group::Barrier(request) => match &request.op {
                        Op::Flush => {
                            counters.flushes.fetch_add(1, Ordering::Relaxed);
                            request
                                .handle
                                .fulfill(Outcome::Accepted { group: ordinal, version: *version });
                        }
                        Op::Update(_) => {
                            counters.rejected.fetch_add(1, Ordering::Relaxed);
                            request.handle.fulfill(Outcome::Rejected(MaintenanceError::ReadOnly));
                        }
                    },
                }
            }
        }
    }
}

/// Freezes the engine's model at `version` and publishes it. Called with
/// the engine lock held — the worker is the only mutator, and publishing
/// before the lock drops means no later commit can race ahead of this one.
fn publish(snapshots: &SnapshotCell, engine: &EngineBox, version: u64) {
    let prev = snapshots.latest();
    snapshots.publish(VersionedSnapshot {
        version,
        model: engine.model().snapshot(Some(&prev.model)),
        durability: engine.durability(),
    });
}

#[allow(clippy::too_many_arguments)]
fn commit_fact_group(
    requests: &[Request],
    ordinal: u64,
    version: &mut u64,
    engine: &Mutex<EngineBox>,
    coalescer: &mut Coalescer,
    counters: &Counters,
    snapshots: &SnapshotCell,
    faults: Option<&Arc<FaultInjector>>,
    worker_id: u64,
) -> Result<(), MaintenanceError> {
    begin_group_span(worker_id, ordinal, strata_obs::GroupKind::Facts, requests);
    let updates = requests.iter().map(|r| match &r.op {
        Op::Update(u) => u,
        Op::Flush => unreachable!("flushes are barriers, never grouped"),
    });
    let mut engine = lock_engine(engine);
    let plan = coalescer.plan_group(engine.program(), updates);
    strata_obs::trace::stage(strata_obs::Stage::Coalesce);
    // Injected crash before the engine sees the group: nothing applied,
    // nothing published — every request must resolve `Panicked`.
    fire_panic(faults, FaultPoint::WorkerPreApply);
    let result =
        if plan.batch.is_empty() { Ok(()) } else { engine.apply_all(&plan.batch).map(|_| ()) };
    // First-write-wins: a durable engine already stamped Apply (pre-WAL)
    // and Fsync from inside `apply_all`; this stamp only lands for
    // in-memory engines, where apply and "fsync" coincide.
    strata_obs::trace::stage(strata_obs::Stage::Apply);
    if result.is_ok() && !plan.batch.is_empty() {
        // Publish before the lock drops and before any outcome is
        // delivered: an acknowledged write is always already readable.
        *version += 1;
        publish(snapshots, &engine, *version);
    }
    strata_obs::trace::stage(strata_obs::Stage::Publish);
    // Injected crash in the ambiguous window: committed (durable, even
    // published) but nothing acked — the case idempotent retries exist
    // for. The panic unwinds with the engine lock held, poisoning it; the
    // supervisor's poison-tolerant locking absorbs that.
    fire_panic(faults, FaultPoint::WorkerPostApply);
    drop(engine); // decisions are delivered outside the engine lock
                  // Seal before delivering outcomes: anyone who observes an ack can
                  // already find the group's span in the trace ring. `committed` means
                  // the group decided normally — a fully-coalesced (empty-batch) group
                  // counts, its version just repeats the one already published.
    match &result {
        Ok(()) => finish_group_span(Some(*version), true),
        Err(_) => finish_group_span(None, false),
    }
    match result {
        Ok(()) => {
            if !plan.batch.is_empty() {
                counters.commits.fetch_add(1, Ordering::Relaxed);
                counters.committed_updates.fetch_add(plan.batch.len() as u64, Ordering::Relaxed);
            }
            counters.coalesced.fetch_add(plan.coalesced as u64, Ordering::Relaxed);
            for (i, (request, decision)) in requests.iter().zip(&plan.decisions).enumerate() {
                // Injected crash halfway through delivery: some acked,
                // the rest resolve `Panicked` via the supervisor.
                if i == requests.len() / 2 {
                    fire_panic(faults, FaultPoint::WorkerMidGroup);
                }
                match decision {
                    Decision::Accepted => {
                        counters.accepted.fetch_add(1, Ordering::Relaxed);
                        request
                            .handle
                            .fulfill(Outcome::Accepted { group: ordinal, version: *version });
                    }
                    Decision::Rejected(e) => {
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        request.handle.fulfill(Outcome::Rejected(e.clone()));
                    }
                }
            }
            Ok(())
        }
        Err(e) => {
            // The coalescer guarantees the net batch is valid, so this is
            // a storage-level failure: the engine rolled the group back,
            // and every request in it — including the ones the oracle
            // would have accepted — is reported rejected with the cause.
            // The oracle history this group would have created never
            // happened, so its first-time arity recordings unwind too.
            // The returned error sends the supervisor into its heal path.
            coalescer.forget_relations(&plan.new_relations);
            counters.rejected.fetch_add(requests.len() as u64, Ordering::Relaxed);
            let cause =
                MaintenanceError::Storage(format!("group commit failed, group rolled back: {e}"));
            for request in requests {
                request.handle.fulfill(Outcome::Rejected(cause.clone()));
            }
            Err(cause)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn commit_rule_barrier(
    request: &Request,
    update: &Update,
    ordinal: u64,
    version: &mut u64,
    engine: &Mutex<EngineBox>,
    coalescer: &mut Coalescer,
    counters: &Counters,
    snapshots: &SnapshotCell,
    worker_id: u64,
) -> Result<(), MaintenanceError> {
    begin_group_span(
        worker_id,
        ordinal,
        strata_obs::GroupKind::Rules,
        std::slice::from_ref(request),
    );
    let mut engine = lock_engine(engine);
    // Pre-check insertions against stream-recorded arities the engine may
    // not know (facts that coalesced away); deletions have no arity
    // effects and go straight through.
    let precheck = match normalize(update) {
        Update::InsertRule(rule) => coalescer.precheck_rule(engine.program(), &rule),
        _ => Ok(()),
    };
    strata_obs::trace::stage(strata_obs::Stage::Coalesce);
    let (outcome, failure) = match precheck.and_then(|()| engine.apply(update).map(|_| ())) {
        Ok(()) => {
            strata_obs::trace::stage(strata_obs::Stage::Apply);
            counters.accepted.fetch_add(1, Ordering::Relaxed);
            counters.commits.fetch_add(1, Ordering::Relaxed);
            counters.committed_updates.fetch_add(1, Ordering::Relaxed);
            *version += 1;
            publish(snapshots, &engine, *version);
            strata_obs::trace::stage(strata_obs::Stage::Publish);
            (Outcome::Accepted { group: ordinal, version: *version }, Ok(()))
        }
        Err(e) => {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            // A semantic rejection (unstratifiable, arity, …) is a normal
            // decision; only a storage-level failure needs the supervisor.
            let failure = match &e {
                MaintenanceError::Storage(_) => Err(e.clone()),
                _ => Ok(()),
            };
            (Outcome::Rejected(e), failure)
        }
    };
    drop(engine);
    // A semantic rejection is still a completed group — the request was
    // decided; only a storage failure marks the span uncommitted.
    match &failure {
        Ok(()) => finish_group_span(Some(*version), outcome.is_accepted()),
        Err(_) => finish_group_span(None, false),
    }
    request.handle.fulfill(outcome);
    failure
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use strata_core::registry::EngineRegistry;
    use strata_datalog::{Fact, Program, Rule};

    fn ins(s: &str) -> Update {
        Update::InsertFact(Fact::parse(s).unwrap())
    }

    fn del(s: &str) -> Update {
        Update::DeleteFact(Fact::parse(s).unwrap())
    }

    fn pods_service(cfg: IngestConfig) -> Service {
        let program = Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap();
        let engine = EngineRegistry::standard().build("cascade", program).unwrap();
        Service::start(engine, cfg)
    }

    #[test]
    fn accepts_and_rejects_like_the_oracle() {
        let service = pods_service(IngestConfig::default());
        assert!(service.apply(ins("accepted(1)")).is_accepted());
        let Outcome::Rejected(e) = service.apply(del("ghost(1)")) else {
            panic!("unasserted delete must reject")
        };
        assert!(matches!(e, MaintenanceError::NotAsserted(_)));
        service.flush();
        assert!(service.with_engine(|e| !e.model().contains_parsed("rejected(1)")));
        let stats = service.stats();
        assert_eq!((stats.accepted, stats.rejected), (1, 1));
        assert_eq!(stats.flushes, 1);
    }

    #[test]
    fn rule_updates_apply_through_the_engine() {
        let service = pods_service(IngestConfig::default());
        let rule = Rule::parse("flagged(X) :- rejected(X).").unwrap();
        assert!(service.apply(Update::InsertRule(rule)).is_accepted());
        assert!(service.with_engine(|e| e.model().contains_parsed("flagged(1)")));
        // Recursion through negation is the engine's rejection.
        let bad = Rule::parse("accepted(X) :- submitted(X), !rejected(X).").unwrap();
        let Outcome::Rejected(e) = service.apply(Update::InsertRule(bad)) else {
            panic!("unstratifiable rule must reject")
        };
        assert!(matches!(e, MaintenanceError::WouldUnstratify(_)), "{e}");
    }

    #[test]
    fn a_full_group_commits_as_one_transaction() {
        let service = pods_service(IngestConfig {
            max_group: 8,
            max_delay: Duration::from_millis(500),
            max_pending: 64,
            ..IngestConfig::default()
        });
        let handles: Vec<_> =
            (10..18).map(|i| service.submit(ins(&format!("submitted({i})")))).collect();
        for h in &handles {
            assert!(h.wait().is_accepted());
        }
        let stats = service.stats();
        assert_eq!(stats.commits, 1, "8 inserts, one watermark-cut group, one apply_all");
        assert_eq!(stats.committed_updates, 8);
        let engine = service.shutdown();
        assert!(engine.model().contains_parsed("rejected(17)"));
    }

    #[test]
    fn coalescing_is_visible_in_stats() {
        let service = pods_service(IngestConfig {
            max_group: 4,
            max_delay: Duration::from_millis(500),
            max_pending: 64,
            ..IngestConfig::default()
        });
        let hs = [
            service.submit(ins("accepted(1)")),
            service.submit(del("accepted(1)")),
            service.submit(ins("submitted(2)")), // duplicate of a seed fact
            service.submit(ins("submitted(9)")),
        ];
        for h in &hs {
            assert!(h.wait().is_accepted());
        }
        let stats = service.stats();
        assert_eq!(stats.coalesced, 3, "insert/delete pair + duplicate");
        assert_eq!(stats.committed_updates, 1, "only submitted(9) reached the engine");
    }

    #[test]
    fn engine_mutex_poisoning_does_not_kill_the_worker() {
        let service = pods_service(IngestConfig::default());
        // Poison the shared engine mutex — the historical worker-death
        // cause. The engine state itself is intact (the panic was in a
        // read-only closure), and poison-tolerant locking means the worker
        // keeps serving instead of dying.
        let poison = catch_unwind(AssertUnwindSafe(|| {
            service.with_engine(|_| panic!("deliberate engine poisoning"));
        }));
        assert!(poison.is_err());
        assert!(service.apply(ins("submitted(9)")).is_accepted());
        assert!(service.with_engine(|e| e.model().contains_parsed("rejected(9)")));
    }

    /// A rebuild closure for in-memory engines: a fresh engine from the
    /// seed program (durable engines rebuild from the WAL instead — the
    /// chaos suite covers that).
    fn mem_rebuild(src: &str) -> crate::service::EngineRebuild {
        let src = src.to_string();
        Arc::new(move || {
            let program = Program::parse(&src).expect("seed parses");
            EngineRegistry::standard()
                .build("cascade", program)
                .map_err(|e| MaintenanceError::Storage(e.to_string()))
        })
    }

    const PODS_SEED: &str = "submitted(1). submitted(2). accepted(2).
                             rejected(X) :- submitted(X), !accepted(X).";

    fn supervised_service(
        rebuild: Option<crate::service::EngineRebuild>,
        faults: Option<Arc<FaultInjector>>,
        sup: SupervisorConfig,
    ) -> Service {
        let program = Program::parse(PODS_SEED).unwrap();
        let engine = EngineRegistry::standard().build("cascade", program).unwrap();
        Service::start_supervised(engine, IngestConfig::default(), sup, rebuild, faults)
    }

    #[test]
    fn injected_panic_fails_only_the_group_and_heals() {
        let plan = strata_core::FaultPlan::once(strata_core::FaultPoint::WorkerPreApply, 1);
        let faults = Arc::new(plan.arm());
        let service = supervised_service(
            Some(mem_rebuild(PODS_SEED)),
            Some(Arc::clone(&faults)),
            SupervisorConfig { backoff: Duration::from_millis(1), ..Default::default() },
        );
        // First group hits the armed pre-apply panic: typed, retryable.
        let Outcome::Rejected(e) = service.apply(ins("accepted(1)")) else {
            panic!("the faulted group must reject")
        };
        assert!(matches!(e, MaintenanceError::Panicked(_)), "{e}");
        assert!(e.is_retryable());
        // The supervisor healed: the very next submit commits normally.
        assert!(service.apply(ins("accepted(1)")).is_accepted());
        let stats = service.stats();
        assert_eq!(stats.worker_restarts, 1);
        assert!(!stats.read_only);
        assert!(service.snapshot().model.contains_parsed("accepted(1)"));
    }

    #[test]
    fn sticky_panic_flaps_heal_but_submits_always_resolve() {
        // Sticky panic point *with* a working rebuild: every group panics,
        // every heal succeeds, and the service flaps — the guarantee under
        // that worst case is liveness of the control surface: every submit
        // resolves with a typed retryable error, nothing ever hangs, and
        // disarming the fault restores normal service.
        let plan = strata_core::FaultPlan::sticky(strata_core::FaultPoint::WorkerPreApply, 1);
        let faults = Arc::new(plan.arm());
        let sup = SupervisorConfig {
            max_restarts: 2,
            backoff: Duration::from_millis(1),
            probe_interval: Duration::from_millis(10),
        };
        let service =
            supervised_service(Some(mem_rebuild(PODS_SEED)), Some(Arc::clone(&faults)), sup);
        let Outcome::Rejected(e) = service.apply(ins("accepted(1)")) else {
            panic!("the faulted group must reject")
        };
        assert!(matches!(e, MaintenanceError::Panicked(_)), "{e}");
        for _ in 0..3 {
            let Outcome::Rejected(e) = service.apply(ins("accepted(1)")) else {
                panic!("faulted groups keep rejecting while the fault is armed")
            };
            assert!(e.is_retryable(), "{e}");
        }
        // Disarm and retry: the service is live again (healed or probed
        // back out of read-only within the interval).
        faults.clear();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match service.apply(ins("accepted(1)")) {
                Outcome::Accepted { .. } => break,
                Outcome::Rejected(e) if e.is_retryable() && Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Outcome::Rejected(e) => panic!("service never recovered: {e}"),
            }
        }
        assert!(service.stats().worker_restarts >= 1);
        assert!(service.snapshot().model.contains_parsed("accepted(1)"));
    }

    #[test]
    fn no_rebuild_failure_goes_read_only_but_reads_survive() {
        // No rebuild closure: a worker panic cannot heal, so the service
        // degrades to read-only mode permanently.
        let plan = strata_core::FaultPlan::once(strata_core::FaultPoint::WorkerMidGroup, 1);
        let faults = Arc::new(plan.arm());
        let sup = SupervisorConfig {
            max_restarts: 1,
            backoff: Duration::from_millis(1),
            probe_interval: Duration::from_millis(10),
        };
        let service = supervised_service(None, Some(faults), sup);
        let pre = service.snapshot();
        let Outcome::Rejected(e) = service.apply(ins("accepted(1)")) else {
            panic!("the faulted group must reject")
        };
        assert!(matches!(e, MaintenanceError::Panicked(_)), "{e}");
        // Read-only: submits reject with the typed marker...
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match service.apply(ins("accepted(1)")) {
                Outcome::Rejected(MaintenanceError::ReadOnly) => break,
                Outcome::Rejected(e) if Instant::now() < deadline => {
                    assert!(e.is_retryable(), "{e}");
                    std::thread::sleep(Duration::from_millis(2));
                }
                other => panic!("expected read-only rejection, got {other:?}"),
            }
        }
        assert!(service.stats().read_only);
        // ...while snapshot reads and flush acks keep serving. The
        // mid-group panic struck *after* the commit and publish, so the
        // published snapshot already carries the group's effect (the
        // unacked-but-committed window retries exist for).
        assert!(service.snapshot().model.contains_parsed("accepted(1)"));
        assert!(!service.snapshot().model.contains_parsed("rejected(1)"));
        assert!(service.snapshot().version >= pre.version);
        service.flush();
        assert!(service.stats().flushes >= 1);
    }

    #[test]
    fn dedup_replays_acked_outcomes_instead_of_reapplying() {
        let service = pods_service(IngestConfig::default());
        let first = service.submit_dedup("alice", 1, ins("submitted(9)")).wait();
        let Outcome::Accepted { version, .. } = first else { panic!("insert must accept") };
        // Identical retry: replayed, not re-executed — same outcome object,
        // no new commit.
        let commits_before = service.stats().commits;
        let retry = service.submit_dedup("alice", 1, ins("submitted(9)")).wait();
        assert_eq!(retry, first);
        assert_eq!(service.stats().commits, commits_before, "a replay must not commit");
        assert_eq!(service.stats().deduped, 1);
        // A different seq from the same client executes normally.
        let next = service.submit_dedup("alice", 2, ins("submitted(10)")).wait();
        let Outcome::Accepted { version: v2, .. } = next else { panic!("insert must accept") };
        assert!(v2 >= version);
        // A different client with the same seq is independent.
        assert!(service.submit_dedup("bob", 1, ins("submitted(11)")).wait().is_accepted());
        assert_eq!(service.stats().deduped, 1);
    }

    #[test]
    fn dedup_replays_semantic_rejections_and_window_evicts() {
        let cfg = IngestConfig { dedup_window: 2, ..IngestConfig::default() };
        let service = pods_service(cfg);
        // A semantic (non-retryable) rejection is replayed on retry, not
        // re-executed: the decision is deterministic.
        let r1 = service.submit_dedup("c", 1, del("ghost(1)")).wait();
        assert!(matches!(r1, Outcome::Rejected(MaintenanceError::NotAsserted(_))));
        let r2 = service.submit_dedup("c", 1, del("ghost(1)")).wait();
        assert_eq!(r2, r1);
        assert_eq!(service.stats().deduped, 1);
        // Window of 2: seqs 2 and 3 evict seq 1; its retry re-executes
        // (visible as a fresh decision, not a dedup hit).
        service.submit_dedup("c", 2, ins("submitted(20)")).wait();
        service.submit_dedup("c", 3, ins("submitted(21)")).wait();
        let deduped_before = service.stats().deduped;
        let again = service.submit_dedup("c", 1, del("ghost(1)")).wait();
        assert!(matches!(again, Outcome::Rejected(MaintenanceError::NotAsserted(_))));
        assert_eq!(service.stats().deduped, deduped_before, "evicted seq re-executes");
    }

    #[test]
    fn snapshot_version_zero_is_published_at_start() {
        let service = pods_service(IngestConfig::default());
        let snap = service.snapshot();
        assert_eq!(snap.version, 0);
        assert!(snap.model.contains_parsed("rejected(1)"), "seed model is published");
        assert_eq!(service.stats().snapshot_version, 0);
    }

    #[test]
    fn acked_writes_are_already_readable() {
        let service = pods_service(IngestConfig::default());
        let Outcome::Accepted { version, .. } = service.apply(ins("accepted(1)")) else {
            panic!("insert must accept")
        };
        assert!(version > 0);
        // Publish-before-ack: the *latest* snapshot must already carry the
        // write — no flush, no wait.
        let snap = service.snapshot();
        assert!(snap.version >= version);
        assert!(!snap.model.contains_parsed("rejected(1)"));
        // And the pinned read resolves immediately.
        let pinned = service.snapshot_at(version).expect("version already published");
        assert!(pinned.model.contains_parsed("accepted(1)"));
    }

    #[test]
    fn coalesced_noops_carry_the_current_version() {
        let service = pods_service(IngestConfig::default());
        let Outcome::Accepted { version: v1, .. } = service.apply(ins("accepted(1)")) else {
            panic!("insert must accept")
        };
        // A duplicate insert coalesces away: no commit, same version.
        let Outcome::Accepted { version: v2, .. } = service.apply(ins("accepted(1)")) else {
            panic!("duplicate insert must accept as a no-op")
        };
        assert_eq!(v2, v1, "a no-op group must not bump the commit version");
    }

    #[test]
    fn snapshot_at_future_version_times_out() {
        let service = pods_service(IngestConfig {
            read_wait: Duration::from_millis(30),
            ..IngestConfig::default()
        });
        let published = service.snapshot().version;
        match service.snapshot_at(published + 10) {
            Err(at) => assert_eq!(at, published),
            Ok(_) => panic!("a never-committed version must time out"),
        }
    }

    #[test]
    fn rule_barriers_publish_too() {
        let service = pods_service(IngestConfig::default());
        let rule = Rule::parse("flagged(X) :- rejected(X).").unwrap();
        let Outcome::Accepted { version, .. } = service.apply(Update::InsertRule(rule)) else {
            panic!("rule insert must accept")
        };
        let snap = service.snapshot_at(version).expect("published before ack");
        assert!(snap.model.contains_parsed("flagged(1)"));
    }

    #[test]
    fn stats_and_snapshots_never_touch_the_engine_mutex() {
        let service = pods_service(IngestConfig::default());
        service.apply(ins("accepted(1)"));
        // Hold the engine mutex hostage on another thread; reads must still
        // complete. (with_engine would deadlock here — that is the point.)
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            let svc = &service;
            s.spawn(move || {
                svc.with_engine(|_| {
                    rx.recv().expect("release signal");
                });
            });
            std::thread::sleep(Duration::from_millis(20)); // let the holder in
            let snap = service.snapshot();
            assert!(snap.model.contains_parsed("accepted(1)"));
            let stats = service.stats();
            assert_eq!(stats.snapshot_version, snap.version);
            assert!(stats.snapshot_reads >= 1);
            tx.send(()).expect("holder alive");
        });
    }

    #[test]
    fn shutdown_returns_the_engine_and_later_submits_reject() {
        let service = pods_service(IngestConfig::default());
        service.apply(ins("submitted(5)"));
        let stats_before = service.stats();
        assert_eq!(stats_before.model_facts, 4 + 2 /* rejected(1), rejected(5) */);
        let engine = service.shutdown();
        assert_eq!(engine.name(), "cascade");
        assert!(engine.model().contains_parsed("rejected(5)"));
    }
}
