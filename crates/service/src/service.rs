//! The ingest service: one worker thread owning the engine, many clients.
//!
//! [`Service::start`] moves a registry-built engine (any strategy, durable
//! or in-memory) behind a shared mutex and spawns the worker. The worker
//! drains the [`IngestQueue`] group by group:
//!
//! * a **fact group** goes through the [`Coalescer`]: per-request oracle
//!   decisions plus a net batch, committed via one
//!   [`MaintenanceEngine::apply_all`] — for a durable engine that is one
//!   WAL transaction and one fsync for the whole group (**group commit**);
//! * a **rule barrier** is pre-checked against stream arities and then
//!   applied directly through the engine (stratification is the engine's
//!   judgment);
//! * a **flush barrier** simply acknowledges once everything before it has
//!   been decided.
//!
//! ## The read path: published snapshots, not the engine mutex
//!
//! After every engine transaction — and **before** delivering any of that
//! group's outcomes — the worker freezes the committed model into a
//! [`VersionedSnapshot`] (copy-on-publish: unchanged relations are
//! `Arc`-shared with the previous snapshot) and publishes it atomically.
//! Readers ([`Service::snapshot`], [`Service::snapshot_at`], the TCP
//! front-end's `query`/`stats`) take one `Arc` clone and never touch the
//! engine mutex, so a reader is never blocked behind an in-flight group
//! commit. [`Service::with_engine`] remains for administrative access that
//! genuinely needs the live engine; it locks the mutex as before.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use strata_core::engine::normalize;
use strata_core::{DurabilityStats, EngineBox, MaintenanceEngine, MaintenanceError, Update};
use strata_datalog::ModelSnapshot;

use crate::coalesce::{Coalescer, Decision};
use crate::queue::{Group, IngestQueue, Op, Outcome, Request, SubmitHandle};
use crate::IngestConfig;

/// Monotonic counters the worker maintains; snapshot via [`Service::stats`].
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    /// Groups drained (fact groups and barriers alike) — the `group`
    /// ordinal delivered in [`Outcome::Accepted`].
    groups: AtomicU64,
    /// `apply_all` transactions actually issued (fact groups whose net
    /// batch was non-empty, plus rule barriers).
    commits: AtomicU64,
    /// Net updates carried by those transactions.
    committed_updates: AtomicU64,
    /// Accepted updates that coalesced away before reaching the engine.
    coalesced: AtomicU64,
    flushes: AtomicU64,
    /// Snapshot reads served ([`Service::snapshot`] / [`Service::snapshot_at`]).
    snapshot_reads: AtomicU64,
}

/// One published commit: the committed model frozen at a version.
///
/// Obtained from [`Service::snapshot`] (latest) or [`Service::snapshot_at`]
/// (read-your-writes); queries evaluate against [`Self::model`] with no
/// engine access. Version 0 is the state at service start (for a durable
/// engine, the recovered state); every subsequent engine transaction bumps
/// it by one.
#[derive(Debug)]
pub struct VersionedSnapshot {
    /// Commit version this snapshot reflects.
    pub version: u64,
    /// The committed model, frozen. Unchanged relations are shared with the
    /// predecessor snapshot, so holding several versions is cheap.
    pub model: ModelSnapshot,
    /// Durability counters as of this commit (storage-backed engines).
    pub durability: Option<DurabilityStats>,
}

/// The atomic publish cell: the worker swaps in each new snapshot; readers
/// clone the `Arc` out. The `Condvar` wakes `@version` waiters.
#[derive(Debug)]
struct SnapshotCell {
    latest: Mutex<Arc<VersionedSnapshot>>,
    advanced: Condvar,
}

impl SnapshotCell {
    fn new(initial: VersionedSnapshot) -> SnapshotCell {
        SnapshotCell { latest: Mutex::new(Arc::new(initial)), advanced: Condvar::new() }
    }

    /// Reader side: the latest published snapshot (one lock + `Arc` clone;
    /// the lock is never held across a commit).
    fn latest(&self) -> Arc<VersionedSnapshot> {
        Arc::clone(&self.latest.lock().expect("snapshot cell poisoned"))
    }

    /// Worker side: publishes `snap` as the new latest and wakes waiters.
    fn publish(&self, snap: VersionedSnapshot) {
        let mut latest = self.latest.lock().expect("snapshot cell poisoned");
        debug_assert!(snap.version >= latest.version, "versions advance monotonically");
        *latest = Arc::new(snap);
        self.advanced.notify_all();
        drop(latest);
    }

    /// Blocks until the published version reaches `version`, bounded by
    /// `wait`. `Err` carries the version that was published at timeout.
    fn wait_for(&self, version: u64, wait: Duration) -> Result<Arc<VersionedSnapshot>, u64> {
        let deadline = Instant::now() + wait;
        let mut latest = self.latest.lock().expect("snapshot cell poisoned");
        while latest.version < version {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(latest.version);
            }
            let (guard, _timeout) =
                self.advanced.wait_timeout(latest, left).expect("snapshot cell poisoned");
            latest = guard;
        }
        Ok(Arc::clone(&latest))
    }
}

/// A point-in-time view of the service, for dashboards and the `stats`
/// protocol verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests submitted (updates only; flushes are counted separately).
    pub submitted: u64,
    /// Requests accepted (applied or coalesced away).
    pub accepted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Groups drained from the queue.
    pub groups: u64,
    /// Engine transactions issued (`apply_all` calls + rule applies).
    pub commits: u64,
    /// Net updates those transactions carried.
    pub committed_updates: u64,
    /// Accepted updates that never reached the engine (coalesced).
    pub coalesced: u64,
    /// Flush barriers acknowledged.
    pub flushes: u64,
    /// Requests pending in the queue right now.
    pub pending: usize,
    /// Submits that blocked on the `max_pending` backpressure bound
    /// (cumulative).
    pub blocked: u64,
    /// Commit version of the currently published snapshot.
    pub snapshot_version: u64,
    /// Snapshot reads served off the published snapshot (no engine lock).
    pub snapshot_reads: u64,
    /// Facts in the published committed model.
    pub model_facts: usize,
    /// Durability counters as of the published snapshot, when the engine is
    /// storage-backed. Under group commit `durability.wal_txns` grows with
    /// `commits`, not `accepted` — the whole point.
    pub durability: Option<DurabilityStats>,
}

/// The concurrent ingest service around one maintained database.
pub struct Service {
    queue: Arc<IngestQueue>,
    engine: Arc<Mutex<EngineBox>>,
    counters: Arc<Counters>,
    snapshots: Arc<SnapshotCell>,
    worker: Option<JoinHandle<()>>,
}

impl Service {
    /// Starts the service over `engine` and spawns the worker thread.
    pub fn start(engine: EngineBox, cfg: IngestConfig) -> Service {
        let queue = Arc::new(IngestQueue::new(cfg));
        // Version 0 is published before the worker exists, so readers have
        // a committed model from the first instant — for a durable engine,
        // the recovered state.
        let initial = VersionedSnapshot {
            version: 0,
            model: engine.model().snapshot(None),
            durability: engine.durability(),
        };
        let snapshots = Arc::new(SnapshotCell::new(initial));
        let engine = Arc::new(Mutex::new(engine));
        let counters = Arc::new(Counters::default());
        let worker = {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let counters = Arc::clone(&counters);
            let snapshots = Arc::clone(&snapshots);
            std::thread::Builder::new()
                .name("strata-ingest".into())
                .spawn(move || worker_loop(&queue, &engine, &counters, &snapshots))
                .expect("spawn ingest worker")
        };
        Service { queue, engine, counters, snapshots, worker: Some(worker) }
    }

    /// Submits one update; returns immediately (blocking only on
    /// backpressure) with the completion handle.
    pub fn submit(&self, update: Update) -> SubmitHandle {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue.submit(update)
    }

    /// Submits and waits for the decision — the synchronous convenience.
    pub fn apply(&self, update: Update) -> Outcome {
        self.submit(update).wait()
    }

    /// Blocks until every request submitted before this call has been
    /// decided (and, for a durable engine, fsynced).
    pub fn flush(&self) {
        self.queue.submit_flush().wait();
    }

    /// Submits a flush barrier without waiting; the returned handle
    /// resolves — with the current commit version — once every earlier
    /// request has been decided. The pipelined front-end uses this to keep
    /// flushes in flight alongside other requests.
    pub fn submit_flush(&self) -> SubmitHandle {
        self.queue.submit_flush()
    }

    /// Runs `f` against the engine between group commits. Readers see a
    /// committed state; writers must go through [`Service::submit`].
    ///
    /// This **blocks behind in-flight group commits** — it is the
    /// administrative path (checkpointing, shutdown, diagnostics). Queries
    /// and stats should read a published snapshot instead
    /// ([`Service::snapshot`]), which never touches the engine mutex.
    pub fn with_engine<R>(&self, f: impl FnOnce(&dyn MaintenanceEngine) -> R) -> R {
        let engine = self.engine.lock().expect("engine poisoned");
        f(engine.as_ref())
    }

    /// The latest published snapshot: one `Arc` clone, no engine access.
    /// Reads here are never blocked by an in-flight commit.
    pub fn snapshot(&self) -> Arc<VersionedSnapshot> {
        self.counters.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        self.snapshots.latest()
    }

    /// Read-your-writes: blocks until the published snapshot reaches
    /// `version` (the token delivered in [`Outcome::Accepted`]), bounded by
    /// [`IngestConfig::read_wait`]. `Err` carries the version that was
    /// published when the wait gave up.
    pub fn snapshot_at(&self, version: u64) -> Result<Arc<VersionedSnapshot>, u64> {
        self.counters.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        self.snapshots.wait_for(version, self.queue.config().read_wait)
    }

    /// A point-in-time stats snapshot — served entirely off the published
    /// snapshot and the counters; never touches the engine mutex.
    pub fn stats(&self) -> ServiceStats {
        let snap = self.snapshots.latest();
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            groups: self.counters.groups.load(Ordering::Relaxed),
            commits: self.counters.commits.load(Ordering::Relaxed),
            committed_updates: self.counters.committed_updates.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            pending: self.queue.pending(),
            blocked: self.queue.blocked(),
            snapshot_version: snap.version,
            snapshot_reads: self.counters.snapshot_reads.load(Ordering::Relaxed),
            model_facts: snap.model.len(),
            durability: snap.durability,
        }
    }

    /// The queue's configured watermarks.
    pub fn config(&self) -> IngestConfig {
        *self.queue.config()
    }

    /// Drains outstanding requests, stops the worker, and hands the engine
    /// back (e.g. to close a durable store cleanly).
    pub fn shutdown(mut self) -> EngineBox {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        let engine = Arc::try_unwrap(std::mem::replace(
            &mut self.engine,
            Arc::new(Mutex::new(null_engine())),
        ))
        .unwrap_or_else(|_| panic!("engine still shared after worker join"));
        engine.into_inner().expect("engine poisoned")
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Placeholder swapped into a [`Service`] being shut down so the real
/// engine can be moved out. Never runs: `shutdown` consumes the service.
fn null_engine() -> EngineBox {
    struct Null(strata_datalog::Program, strata_datalog::Database);
    impl MaintenanceEngine for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn program(&self) -> &strata_datalog::Program {
            &self.0
        }
        fn model(&self) -> &strata_datalog::Database {
            &self.1
        }
        fn support_bytes(&self) -> usize {
            0
        }
        fn apply(&mut self, _: &Update) -> Result<strata_core::UpdateStats, MaintenanceError> {
            Err(MaintenanceError::Storage("service is shut down".into()))
        }
    }
    Box::new(Null(strata_datalog::Program::new(), strata_datalog::Database::new()))
}

/// The worker: drain, decide, group-commit, **publish**, fulfill. Exits
/// when the queue is closed and empty.
///
/// The publish-before-fulfill order is the read-your-writes linchpin: by
/// the time any producer observes its [`Outcome::Accepted`], the snapshot
/// carrying that version is already visible to every reader.
fn worker_loop(
    queue: &IngestQueue,
    engine: &Mutex<EngineBox>,
    counters: &Counters,
    snapshots: &SnapshotCell,
) {
    // If the worker dies early — a poisoned engine mutex is the realistic
    // case — producers must not hang forever on their completion handles:
    // close the queue and drop everything still pending on the way out
    // (dropping an undecided request rejects its handle, and the
    // in-flight group's requests unwind the same way). On a normal exit
    // the queue is already closed and drained, so the guard is a no-op.
    struct Bailout<'a>(&'a IngestQueue);
    impl Drop for Bailout<'_> {
        fn drop(&mut self) {
            self.0.close();
            drop(self.0.drain_all());
        }
    }
    let _bailout = Bailout(queue);
    let mut coalescer = Coalescer::new();
    // Commit version: advanced only when an engine transaction actually
    // happens, so the version sequence is dense over *commits* and a
    // coalesced-to-nothing group does not force a republish.
    let mut version = snapshots.latest().version;
    while let Some(group) = queue.next_group() {
        let ordinal = counters.groups.fetch_add(1, Ordering::Relaxed) + 1;
        match group {
            Group::Facts(requests) => {
                commit_fact_group(
                    &requests,
                    ordinal,
                    &mut version,
                    engine,
                    &mut coalescer,
                    counters,
                    snapshots,
                );
            }
            Group::Barrier(request) => match &request.op {
                Op::Flush => {
                    // A flush commits nothing: the published snapshot is
                    // already current, so the ack just carries its version.
                    counters.flushes.fetch_add(1, Ordering::Relaxed);
                    request.handle.fulfill(Outcome::Accepted { group: ordinal, version });
                }
                Op::Update(update) => {
                    commit_rule_barrier(
                        &request,
                        update,
                        ordinal,
                        &mut version,
                        engine,
                        &mut coalescer,
                        counters,
                        snapshots,
                    );
                }
            },
        }
    }
}

/// Freezes the engine's model at `version` and publishes it. Called with
/// the engine lock held — the worker is the only mutator, and publishing
/// before the lock drops means no later commit can race ahead of this one.
fn publish(snapshots: &SnapshotCell, engine: &EngineBox, version: u64) {
    let prev = snapshots.latest();
    snapshots.publish(VersionedSnapshot {
        version,
        model: engine.model().snapshot(Some(&prev.model)),
        durability: engine.durability(),
    });
}

#[allow(clippy::too_many_arguments)]
fn commit_fact_group(
    requests: &[Request],
    ordinal: u64,
    version: &mut u64,
    engine: &Mutex<EngineBox>,
    coalescer: &mut Coalescer,
    counters: &Counters,
    snapshots: &SnapshotCell,
) {
    let updates = requests.iter().map(|r| match &r.op {
        Op::Update(u) => u,
        Op::Flush => unreachable!("flushes are barriers, never grouped"),
    });
    let mut engine = engine.lock().expect("engine poisoned");
    let plan = coalescer.plan_group(engine.program(), updates);
    let result =
        if plan.batch.is_empty() { Ok(()) } else { engine.apply_all(&plan.batch).map(|_| ()) };
    if result.is_ok() && !plan.batch.is_empty() {
        // Publish before the lock drops and before any outcome is
        // delivered: an acknowledged write is always already readable.
        *version += 1;
        publish(snapshots, &engine, *version);
    }
    drop(engine); // decisions are delivered outside the engine lock
    match result {
        Ok(()) => {
            if !plan.batch.is_empty() {
                counters.commits.fetch_add(1, Ordering::Relaxed);
                counters.committed_updates.fetch_add(plan.batch.len() as u64, Ordering::Relaxed);
            }
            counters.coalesced.fetch_add(plan.coalesced as u64, Ordering::Relaxed);
            for (request, decision) in requests.iter().zip(&plan.decisions) {
                match decision {
                    Decision::Accepted => {
                        counters.accepted.fetch_add(1, Ordering::Relaxed);
                        request
                            .handle
                            .fulfill(Outcome::Accepted { group: ordinal, version: *version });
                    }
                    Decision::Rejected(e) => {
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        request.handle.fulfill(Outcome::Rejected(e.clone()));
                    }
                }
            }
        }
        Err(e) => {
            // The coalescer guarantees the net batch is valid, so this is
            // a storage-level failure: the engine rolled the group back,
            // and every request in it — including the ones the oracle
            // would have accepted — is reported rejected with the cause.
            // The oracle history this group would have created never
            // happened, so its first-time arity recordings unwind too.
            coalescer.forget_relations(&plan.new_relations);
            counters.rejected.fetch_add(requests.len() as u64, Ordering::Relaxed);
            for request in requests {
                request.handle.fulfill(Outcome::Rejected(MaintenanceError::Storage(format!(
                    "group commit failed, group rolled back: {e}"
                ))));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn commit_rule_barrier(
    request: &Request,
    update: &Update,
    ordinal: u64,
    version: &mut u64,
    engine: &Mutex<EngineBox>,
    coalescer: &mut Coalescer,
    counters: &Counters,
    snapshots: &SnapshotCell,
) {
    let mut engine = engine.lock().expect("engine poisoned");
    // Pre-check insertions against stream-recorded arities the engine may
    // not know (facts that coalesced away); deletions have no arity
    // effects and go straight through.
    let precheck = match normalize(update) {
        Update::InsertRule(rule) => coalescer.precheck_rule(engine.program(), &rule),
        _ => Ok(()),
    };
    let outcome = match precheck.and_then(|()| engine.apply(update).map(|_| ())) {
        Ok(()) => {
            counters.accepted.fetch_add(1, Ordering::Relaxed);
            counters.commits.fetch_add(1, Ordering::Relaxed);
            counters.committed_updates.fetch_add(1, Ordering::Relaxed);
            *version += 1;
            publish(snapshots, &engine, *version);
            Outcome::Accepted { group: ordinal, version: *version }
        }
        Err(e) => {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            Outcome::Rejected(e)
        }
    };
    drop(engine);
    request.handle.fulfill(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use strata_core::registry::EngineRegistry;
    use strata_datalog::{Fact, Program, Rule};

    fn ins(s: &str) -> Update {
        Update::InsertFact(Fact::parse(s).unwrap())
    }

    fn del(s: &str) -> Update {
        Update::DeleteFact(Fact::parse(s).unwrap())
    }

    fn pods_service(cfg: IngestConfig) -> Service {
        let program = Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap();
        let engine = EngineRegistry::standard().build("cascade", program).unwrap();
        Service::start(engine, cfg)
    }

    #[test]
    fn accepts_and_rejects_like_the_oracle() {
        let service = pods_service(IngestConfig::default());
        assert!(service.apply(ins("accepted(1)")).is_accepted());
        let Outcome::Rejected(e) = service.apply(del("ghost(1)")) else {
            panic!("unasserted delete must reject")
        };
        assert!(matches!(e, MaintenanceError::NotAsserted(_)));
        service.flush();
        assert!(service.with_engine(|e| !e.model().contains_parsed("rejected(1)")));
        let stats = service.stats();
        assert_eq!((stats.accepted, stats.rejected), (1, 1));
        assert_eq!(stats.flushes, 1);
    }

    #[test]
    fn rule_updates_apply_through_the_engine() {
        let service = pods_service(IngestConfig::default());
        let rule = Rule::parse("flagged(X) :- rejected(X).").unwrap();
        assert!(service.apply(Update::InsertRule(rule)).is_accepted());
        assert!(service.with_engine(|e| e.model().contains_parsed("flagged(1)")));
        // Recursion through negation is the engine's rejection.
        let bad = Rule::parse("accepted(X) :- submitted(X), !rejected(X).").unwrap();
        let Outcome::Rejected(e) = service.apply(Update::InsertRule(bad)) else {
            panic!("unstratifiable rule must reject")
        };
        assert!(matches!(e, MaintenanceError::WouldUnstratify(_)), "{e}");
    }

    #[test]
    fn a_full_group_commits_as_one_transaction() {
        let service = pods_service(IngestConfig {
            max_group: 8,
            max_delay: Duration::from_millis(500),
            max_pending: 64,
            ..IngestConfig::default()
        });
        let handles: Vec<_> =
            (10..18).map(|i| service.submit(ins(&format!("submitted({i})")))).collect();
        for h in &handles {
            assert!(h.wait().is_accepted());
        }
        let stats = service.stats();
        assert_eq!(stats.commits, 1, "8 inserts, one watermark-cut group, one apply_all");
        assert_eq!(stats.committed_updates, 8);
        let engine = service.shutdown();
        assert!(engine.model().contains_parsed("rejected(17)"));
    }

    #[test]
    fn coalescing_is_visible_in_stats() {
        let service = pods_service(IngestConfig {
            max_group: 4,
            max_delay: Duration::from_millis(500),
            max_pending: 64,
            ..IngestConfig::default()
        });
        let hs = [
            service.submit(ins("accepted(1)")),
            service.submit(del("accepted(1)")),
            service.submit(ins("submitted(2)")), // duplicate of a seed fact
            service.submit(ins("submitted(9)")),
        ];
        for h in &hs {
            assert!(h.wait().is_accepted());
        }
        let stats = service.stats();
        assert_eq!(stats.coalesced, 3, "insert/delete pair + duplicate");
        assert_eq!(stats.committed_updates, 1, "only submitted(9) reached the engine");
    }

    #[test]
    fn worker_death_rejects_pending_instead_of_hanging() {
        let service = pods_service(IngestConfig::default());
        // Poison the shared engine mutex: the realistic worker-death cause.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.with_engine(|_| panic!("deliberate engine poisoning"));
        }));
        assert!(poison.is_err());
        // The worker dies on its next group; every handle must resolve
        // with a rejection rather than blocking its producer forever.
        let h = service.submit(ins("submitted(9)"));
        assert!(matches!(h.wait(), Outcome::Rejected(MaintenanceError::Storage(_))));
        // The bailout closed the queue: later submits reject immediately.
        assert!(matches!(
            service.apply(ins("submitted(10)")),
            Outcome::Rejected(MaintenanceError::Storage(_))
        ));
    }

    #[test]
    fn snapshot_version_zero_is_published_at_start() {
        let service = pods_service(IngestConfig::default());
        let snap = service.snapshot();
        assert_eq!(snap.version, 0);
        assert!(snap.model.contains_parsed("rejected(1)"), "seed model is published");
        assert_eq!(service.stats().snapshot_version, 0);
    }

    #[test]
    fn acked_writes_are_already_readable() {
        let service = pods_service(IngestConfig::default());
        let Outcome::Accepted { version, .. } = service.apply(ins("accepted(1)")) else {
            panic!("insert must accept")
        };
        assert!(version > 0);
        // Publish-before-ack: the *latest* snapshot must already carry the
        // write — no flush, no wait.
        let snap = service.snapshot();
        assert!(snap.version >= version);
        assert!(!snap.model.contains_parsed("rejected(1)"));
        // And the pinned read resolves immediately.
        let pinned = service.snapshot_at(version).expect("version already published");
        assert!(pinned.model.contains_parsed("accepted(1)"));
    }

    #[test]
    fn coalesced_noops_carry_the_current_version() {
        let service = pods_service(IngestConfig::default());
        let Outcome::Accepted { version: v1, .. } = service.apply(ins("accepted(1)")) else {
            panic!("insert must accept")
        };
        // A duplicate insert coalesces away: no commit, same version.
        let Outcome::Accepted { version: v2, .. } = service.apply(ins("accepted(1)")) else {
            panic!("duplicate insert must accept as a no-op")
        };
        assert_eq!(v2, v1, "a no-op group must not bump the commit version");
    }

    #[test]
    fn snapshot_at_future_version_times_out() {
        let service = pods_service(IngestConfig {
            read_wait: Duration::from_millis(30),
            ..IngestConfig::default()
        });
        let published = service.snapshot().version;
        match service.snapshot_at(published + 10) {
            Err(at) => assert_eq!(at, published),
            Ok(_) => panic!("a never-committed version must time out"),
        }
    }

    #[test]
    fn rule_barriers_publish_too() {
        let service = pods_service(IngestConfig::default());
        let rule = Rule::parse("flagged(X) :- rejected(X).").unwrap();
        let Outcome::Accepted { version, .. } = service.apply(Update::InsertRule(rule)) else {
            panic!("rule insert must accept")
        };
        let snap = service.snapshot_at(version).expect("published before ack");
        assert!(snap.model.contains_parsed("flagged(1)"));
    }

    #[test]
    fn stats_and_snapshots_never_touch_the_engine_mutex() {
        let service = pods_service(IngestConfig::default());
        service.apply(ins("accepted(1)"));
        // Hold the engine mutex hostage on another thread; reads must still
        // complete. (with_engine would deadlock here — that is the point.)
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            let svc = &service;
            s.spawn(move || {
                svc.with_engine(|_| {
                    rx.recv().expect("release signal");
                });
            });
            std::thread::sleep(Duration::from_millis(20)); // let the holder in
            let snap = service.snapshot();
            assert!(snap.model.contains_parsed("accepted(1)"));
            let stats = service.stats();
            assert_eq!(stats.snapshot_version, snap.version);
            assert!(stats.snapshot_reads >= 1);
            tx.send(()).expect("holder alive");
        });
    }

    #[test]
    fn shutdown_returns_the_engine_and_later_submits_reject() {
        let service = pods_service(IngestConfig::default());
        service.apply(ins("submitted(5)"));
        let stats_before = service.stats();
        assert_eq!(stats_before.model_facts, 4 + 2 /* rejected(1), rejected(5) */);
        let engine = service.shutdown();
        assert_eq!(engine.name(), "cascade");
        assert!(engine.model().contains_parsed("rejected(5)"));
    }
}
