//! The ingest service: one worker thread owning the engine, many clients.
//!
//! [`Service::start`] moves a registry-built engine (any strategy, durable
//! or in-memory) behind a shared mutex and spawns the worker. The worker
//! drains the [`IngestQueue`] group by group:
//!
//! * a **fact group** goes through the [`Coalescer`]: per-request oracle
//!   decisions plus a net batch, committed via one
//!   [`MaintenanceEngine::apply_all`] — for a durable engine that is one
//!   WAL transaction and one fsync for the whole group (**group commit**);
//! * a **rule barrier** is pre-checked against stream arities and then
//!   applied directly through the engine (stratification is the engine's
//!   judgment);
//! * a **flush barrier** simply acknowledges once everything before it has
//!   been decided.
//!
//! Readers ([`Service::with_engine`], the TCP front-end's `query`/`stats`)
//! lock the same mutex briefly between group commits; the worker is the
//! only writer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use strata_core::engine::normalize;
use strata_core::{DurabilityStats, EngineBox, MaintenanceEngine, MaintenanceError, Update};

use crate::coalesce::{Coalescer, Decision};
use crate::queue::{Group, IngestQueue, Op, Outcome, Request, SubmitHandle};
use crate::IngestConfig;

/// Monotonic counters the worker maintains; snapshot via [`Service::stats`].
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    /// Groups drained (fact groups and barriers alike) — the `group`
    /// ordinal delivered in [`Outcome::Accepted`].
    groups: AtomicU64,
    /// `apply_all` transactions actually issued (fact groups whose net
    /// batch was non-empty, plus rule barriers).
    commits: AtomicU64,
    /// Net updates carried by those transactions.
    committed_updates: AtomicU64,
    /// Accepted updates that coalesced away before reaching the engine.
    coalesced: AtomicU64,
    flushes: AtomicU64,
}

/// A point-in-time view of the service, for dashboards and the `stats`
/// protocol verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests submitted (updates only; flushes are counted separately).
    pub submitted: u64,
    /// Requests accepted (applied or coalesced away).
    pub accepted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Groups drained from the queue.
    pub groups: u64,
    /// Engine transactions issued (`apply_all` calls + rule applies).
    pub commits: u64,
    /// Net updates those transactions carried.
    pub committed_updates: u64,
    /// Accepted updates that never reached the engine (coalesced).
    pub coalesced: u64,
    /// Flush barriers acknowledged.
    pub flushes: u64,
    /// Requests pending in the queue right now.
    pub pending: usize,
    /// Facts in the maintained model right now.
    pub model_facts: usize,
    /// Durability counters, when the engine is storage-backed. Under group
    /// commit `durability.wal_txns` grows with `commits`, not `accepted` —
    /// the whole point.
    pub durability: Option<DurabilityStats>,
}

/// The concurrent ingest service around one maintained database.
pub struct Service {
    queue: Arc<IngestQueue>,
    engine: Arc<Mutex<EngineBox>>,
    counters: Arc<Counters>,
    worker: Option<JoinHandle<()>>,
}

impl Service {
    /// Starts the service over `engine` and spawns the worker thread.
    pub fn start(engine: EngineBox, cfg: IngestConfig) -> Service {
        let queue = Arc::new(IngestQueue::new(cfg));
        let engine = Arc::new(Mutex::new(engine));
        let counters = Arc::new(Counters::default());
        let worker = {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("strata-ingest".into())
                .spawn(move || worker_loop(&queue, &engine, &counters))
                .expect("spawn ingest worker")
        };
        Service { queue, engine, counters, worker: Some(worker) }
    }

    /// Submits one update; returns immediately (blocking only on
    /// backpressure) with the completion handle.
    pub fn submit(&self, update: Update) -> SubmitHandle {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue.submit(update)
    }

    /// Submits and waits for the decision — the synchronous convenience.
    pub fn apply(&self, update: Update) -> Outcome {
        self.submit(update).wait()
    }

    /// Blocks until every request submitted before this call has been
    /// decided (and, for a durable engine, fsynced).
    pub fn flush(&self) {
        self.queue.submit_flush().wait();
    }

    /// Runs `f` against the engine between group commits. Readers see a
    /// committed state; writers must go through [`Service::submit`].
    pub fn with_engine<R>(&self, f: impl FnOnce(&dyn MaintenanceEngine) -> R) -> R {
        let engine = self.engine.lock().expect("engine poisoned");
        f(engine.as_ref())
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServiceStats {
        let (model_facts, durability) = self.with_engine(|e| (e.model().len(), e.durability()));
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            groups: self.counters.groups.load(Ordering::Relaxed),
            commits: self.counters.commits.load(Ordering::Relaxed),
            committed_updates: self.counters.committed_updates.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            pending: self.queue.pending(),
            model_facts,
            durability,
        }
    }

    /// The queue's configured watermarks.
    pub fn config(&self) -> IngestConfig {
        *self.queue.config()
    }

    /// Drains outstanding requests, stops the worker, and hands the engine
    /// back (e.g. to close a durable store cleanly).
    pub fn shutdown(mut self) -> EngineBox {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        let engine = Arc::try_unwrap(std::mem::replace(
            &mut self.engine,
            Arc::new(Mutex::new(null_engine())),
        ))
        .unwrap_or_else(|_| panic!("engine still shared after worker join"));
        engine.into_inner().expect("engine poisoned")
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Placeholder swapped into a [`Service`] being shut down so the real
/// engine can be moved out. Never runs: `shutdown` consumes the service.
fn null_engine() -> EngineBox {
    struct Null(strata_datalog::Program, strata_datalog::Database);
    impl MaintenanceEngine for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn program(&self) -> &strata_datalog::Program {
            &self.0
        }
        fn model(&self) -> &strata_datalog::Database {
            &self.1
        }
        fn support_bytes(&self) -> usize {
            0
        }
        fn apply(&mut self, _: &Update) -> Result<strata_core::UpdateStats, MaintenanceError> {
            Err(MaintenanceError::Storage("service is shut down".into()))
        }
    }
    Box::new(Null(strata_datalog::Program::new(), strata_datalog::Database::new()))
}

/// The worker: drain, decide, group-commit, fulfill. Exits when the queue
/// is closed and empty.
fn worker_loop(queue: &IngestQueue, engine: &Mutex<EngineBox>, counters: &Counters) {
    // If the worker dies early — a poisoned engine mutex is the realistic
    // case — producers must not hang forever on their completion handles:
    // close the queue and drop everything still pending on the way out
    // (dropping an undecided request rejects its handle, and the
    // in-flight group's requests unwind the same way). On a normal exit
    // the queue is already closed and drained, so the guard is a no-op.
    struct Bailout<'a>(&'a IngestQueue);
    impl Drop for Bailout<'_> {
        fn drop(&mut self) {
            self.0.close();
            drop(self.0.drain_all());
        }
    }
    let _bailout = Bailout(queue);
    let mut coalescer = Coalescer::new();
    while let Some(group) = queue.next_group() {
        let ordinal = counters.groups.fetch_add(1, Ordering::Relaxed) + 1;
        match group {
            Group::Facts(requests) => {
                commit_fact_group(&requests, ordinal, engine, &mut coalescer, counters);
            }
            Group::Barrier(request) => match &request.op {
                Op::Flush => {
                    counters.flushes.fetch_add(1, Ordering::Relaxed);
                    request.handle.fulfill(Outcome::Accepted { group: ordinal });
                }
                Op::Update(update) => {
                    commit_rule_barrier(
                        &request,
                        update,
                        ordinal,
                        engine,
                        &mut coalescer,
                        counters,
                    );
                }
            },
        }
    }
}

fn commit_fact_group(
    requests: &[Request],
    ordinal: u64,
    engine: &Mutex<EngineBox>,
    coalescer: &mut Coalescer,
    counters: &Counters,
) {
    let updates = requests.iter().map(|r| match &r.op {
        Op::Update(u) => u,
        Op::Flush => unreachable!("flushes are barriers, never grouped"),
    });
    let mut engine = engine.lock().expect("engine poisoned");
    let plan = coalescer.plan_group(engine.program(), updates);
    let result =
        if plan.batch.is_empty() { Ok(()) } else { engine.apply_all(&plan.batch).map(|_| ()) };
    drop(engine); // decisions are delivered outside the engine lock
    match result {
        Ok(()) => {
            if !plan.batch.is_empty() {
                counters.commits.fetch_add(1, Ordering::Relaxed);
                counters.committed_updates.fetch_add(plan.batch.len() as u64, Ordering::Relaxed);
            }
            counters.coalesced.fetch_add(plan.coalesced as u64, Ordering::Relaxed);
            for (request, decision) in requests.iter().zip(&plan.decisions) {
                match decision {
                    Decision::Accepted => {
                        counters.accepted.fetch_add(1, Ordering::Relaxed);
                        request.handle.fulfill(Outcome::Accepted { group: ordinal });
                    }
                    Decision::Rejected(e) => {
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        request.handle.fulfill(Outcome::Rejected(e.clone()));
                    }
                }
            }
        }
        Err(e) => {
            // The coalescer guarantees the net batch is valid, so this is
            // a storage-level failure: the engine rolled the group back,
            // and every request in it — including the ones the oracle
            // would have accepted — is reported rejected with the cause.
            // The oracle history this group would have created never
            // happened, so its first-time arity recordings unwind too.
            coalescer.forget_relations(&plan.new_relations);
            counters.rejected.fetch_add(requests.len() as u64, Ordering::Relaxed);
            for request in requests {
                request.handle.fulfill(Outcome::Rejected(MaintenanceError::Storage(format!(
                    "group commit failed, group rolled back: {e}"
                ))));
            }
        }
    }
}

fn commit_rule_barrier(
    request: &Request,
    update: &Update,
    ordinal: u64,
    engine: &Mutex<EngineBox>,
    coalescer: &mut Coalescer,
    counters: &Counters,
) {
    let mut engine = engine.lock().expect("engine poisoned");
    // Pre-check insertions against stream-recorded arities the engine may
    // not know (facts that coalesced away); deletions have no arity
    // effects and go straight through.
    let precheck = match normalize(update) {
        Update::InsertRule(rule) => coalescer.precheck_rule(engine.program(), &rule),
        _ => Ok(()),
    };
    let outcome = match precheck.and_then(|()| engine.apply(update).map(|_| ())) {
        Ok(()) => {
            counters.accepted.fetch_add(1, Ordering::Relaxed);
            counters.commits.fetch_add(1, Ordering::Relaxed);
            counters.committed_updates.fetch_add(1, Ordering::Relaxed);
            Outcome::Accepted { group: ordinal }
        }
        Err(e) => {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            Outcome::Rejected(e)
        }
    };
    drop(engine);
    request.handle.fulfill(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use strata_core::registry::EngineRegistry;
    use strata_datalog::{Fact, Program, Rule};

    fn ins(s: &str) -> Update {
        Update::InsertFact(Fact::parse(s).unwrap())
    }

    fn del(s: &str) -> Update {
        Update::DeleteFact(Fact::parse(s).unwrap())
    }

    fn pods_service(cfg: IngestConfig) -> Service {
        let program = Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap();
        let engine = EngineRegistry::standard().build("cascade", program).unwrap();
        Service::start(engine, cfg)
    }

    #[test]
    fn accepts_and_rejects_like_the_oracle() {
        let service = pods_service(IngestConfig::default());
        assert!(service.apply(ins("accepted(1)")).is_accepted());
        let Outcome::Rejected(e) = service.apply(del("ghost(1)")) else {
            panic!("unasserted delete must reject")
        };
        assert!(matches!(e, MaintenanceError::NotAsserted(_)));
        service.flush();
        assert!(service.with_engine(|e| !e.model().contains_parsed("rejected(1)")));
        let stats = service.stats();
        assert_eq!((stats.accepted, stats.rejected), (1, 1));
        assert_eq!(stats.flushes, 1);
    }

    #[test]
    fn rule_updates_apply_through_the_engine() {
        let service = pods_service(IngestConfig::default());
        let rule = Rule::parse("flagged(X) :- rejected(X).").unwrap();
        assert!(service.apply(Update::InsertRule(rule)).is_accepted());
        assert!(service.with_engine(|e| e.model().contains_parsed("flagged(1)")));
        // Recursion through negation is the engine's rejection.
        let bad = Rule::parse("accepted(X) :- submitted(X), !rejected(X).").unwrap();
        let Outcome::Rejected(e) = service.apply(Update::InsertRule(bad)) else {
            panic!("unstratifiable rule must reject")
        };
        assert!(matches!(e, MaintenanceError::WouldUnstratify(_)), "{e}");
    }

    #[test]
    fn a_full_group_commits_as_one_transaction() {
        let service = pods_service(IngestConfig {
            max_group: 8,
            max_delay: Duration::from_millis(500),
            max_pending: 64,
        });
        let handles: Vec<_> =
            (10..18).map(|i| service.submit(ins(&format!("submitted({i})")))).collect();
        for h in &handles {
            assert!(h.wait().is_accepted());
        }
        let stats = service.stats();
        assert_eq!(stats.commits, 1, "8 inserts, one watermark-cut group, one apply_all");
        assert_eq!(stats.committed_updates, 8);
        let engine = service.shutdown();
        assert!(engine.model().contains_parsed("rejected(17)"));
    }

    #[test]
    fn coalescing_is_visible_in_stats() {
        let service = pods_service(IngestConfig {
            max_group: 4,
            max_delay: Duration::from_millis(500),
            max_pending: 64,
        });
        let hs = [
            service.submit(ins("accepted(1)")),
            service.submit(del("accepted(1)")),
            service.submit(ins("submitted(2)")), // duplicate of a seed fact
            service.submit(ins("submitted(9)")),
        ];
        for h in &hs {
            assert!(h.wait().is_accepted());
        }
        let stats = service.stats();
        assert_eq!(stats.coalesced, 3, "insert/delete pair + duplicate");
        assert_eq!(stats.committed_updates, 1, "only submitted(9) reached the engine");
    }

    #[test]
    fn worker_death_rejects_pending_instead_of_hanging() {
        let service = pods_service(IngestConfig::default());
        // Poison the shared engine mutex: the realistic worker-death cause.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.with_engine(|_| panic!("deliberate engine poisoning"));
        }));
        assert!(poison.is_err());
        // The worker dies on its next group; every handle must resolve
        // with a rejection rather than blocking its producer forever.
        let h = service.submit(ins("submitted(9)"));
        assert!(matches!(h.wait(), Outcome::Rejected(MaintenanceError::Storage(_))));
        // The bailout closed the queue: later submits reject immediately.
        assert!(matches!(
            service.apply(ins("submitted(10)")),
            Outcome::Rejected(MaintenanceError::Storage(_))
        ));
    }

    #[test]
    fn shutdown_returns_the_engine_and_later_submits_reject() {
        let service = pods_service(IngestConfig::default());
        service.apply(ins("submitted(5)"));
        let stats_before = service.stats();
        assert_eq!(stats_before.model_facts, 4 + 2 /* rejected(1), rejected(5) */);
        let engine = service.shutdown();
        assert_eq!(engine.name(), "cascade");
        assert!(engine.model().contains_parsed("rejected(5)"));
    }
}
