//! The multi-producer ingest queue with completion handles.
//!
//! Producers [`submit`] tagged updates from any thread; the single service
//! worker [`next_group`]s them back out in arrival order, cut into groups
//! at the [`IngestConfig`] watermarks:
//!
//! * **count** — a group is cut as soon as `max_group` requests are
//!   pending;
//! * **latency** — a partial group is cut once its oldest request has
//!   waited `max_delay`;
//! * **barrier** — a rule update or a flush cuts the group early and is
//!   handed over alone (rule updates need the engine's stratification
//!   judgment; flushes mark a point whose predecessors must all be
//!   decided).
//!
//! Backpressure: `submit` blocks while `max_pending` requests are queued,
//! so producers can never outrun the worker without bound.
//!
//! Every request carries a [`SubmitHandle`] the producer can block on;
//! the worker fulfills it with the request's [`Outcome`] once its group
//! is committed (or it is rejected).
//!
//! [`submit`]: IngestQueue::submit
//! [`next_group`]: IngestQueue::next_group

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use strata_core::{MaintenanceError, Update};

use crate::IngestConfig;

/// The service's verdict on one submitted request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Accepted and applied (or coalesced away as a no-op) with the given
    /// group — the drain ordinal, 1-based. For a durable engine the
    /// request is on disk when this outcome is delivered.
    Accepted {
        /// Drain ordinal of the group that carried the request.
        group: u64,
        /// Commit version whose published snapshot includes this request's
        /// effect. Snapshots are published **before** outcomes are
        /// delivered, so `query @version` against this token always
        /// observes the write (read-your-writes). A request that coalesced
        /// to a no-op carries the current version — its (absent) effect is
        /// equally visible there.
        version: u64,
    },
    /// Rejected; the database is unchanged by this request. Carries the
    /// same error the per-update oracle would have raised.
    Rejected(MaintenanceError),
}

impl Outcome {
    /// Whether this is [`Outcome::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, Outcome::Accepted { .. })
    }
}

/// One-shot decision slot shared between a producer and the worker.
#[derive(Debug, Default)]
struct Completion {
    slot: Mutex<Option<Outcome>>,
    ready: Condvar,
}

/// A producer's handle on one submitted request.
#[derive(Clone, Debug)]
pub struct SubmitHandle(Arc<Completion>);

impl SubmitHandle {
    fn new() -> SubmitHandle {
        SubmitHandle(Arc::new(Completion::default()))
    }

    /// Blocks until the service has decided this request.
    pub fn wait(&self) -> Outcome {
        let mut slot = self.0.slot.lock().unwrap_or_else(|p| p.into_inner());
        while slot.is_none() {
            slot = self.0.ready.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
        slot.clone().expect("checked above")
    }

    /// The decision, if already made.
    pub fn try_get(&self) -> Option<Outcome> {
        self.0.slot.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Worker side: delivers the decision and wakes the producer.
    pub(crate) fn fulfill(&self, outcome: Outcome) {
        let mut slot = self.0.slot.lock().unwrap_or_else(|p| p.into_inner());
        debug_assert!(slot.is_none(), "a request is decided exactly once");
        *slot = Some(outcome);
        self.0.ready.notify_all();
    }

    /// Delivers `outcome` only if no decision was made yet (the
    /// supervisor's panic-recovery path and the worker-death path;
    /// poison-tolerant so an unwinding thread can still release its
    /// waiters).
    pub(crate) fn fulfill_if_undecided(&self, outcome: Outcome) {
        let mut slot = self.0.slot.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(outcome);
            self.0.ready.notify_all();
        }
    }
}

/// What a pending entry asks for.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// Apply this update.
    Update(Update),
    /// Decide everything before this point, then acknowledge.
    Flush,
}

/// One queued request.
#[derive(Debug)]
pub(crate) struct Request {
    pub(crate) op: Op,
    pub(crate) handle: SubmitHandle,
    /// Enqueue time — the start of the request's pipeline trace.
    pub(crate) at: Instant,
    /// Process-unique trace id, assigned at enqueue and carried into the
    /// group span the worker seals for this request's group.
    pub(crate) trace: strata_obs::TraceId,
}

impl Drop for Request {
    fn drop(&mut self) {
        // A request dropped without a decision — the worker unwound
        // mid-group, or a dying worker drained the queue — must not leave
        // its producer blocked on the handle forever.
        self.handle.fulfill_if_undecided(Outcome::Rejected(MaintenanceError::Shutdown));
    }
}

/// What one drain handed the worker.
#[derive(Debug)]
pub(crate) enum Group {
    /// A fact-update group, in arrival order, ready for the coalescer.
    Facts(Vec<Request>),
    /// A barrier: a rule update or a flush, traveling alone.
    Barrier(Request),
}

/// Result of a bounded drain ([`IngestQueue::next_group_timeout`]) — the
/// read-only worker's loop shape: hand requests over promptly (to reject
/// or to ack flushes), or wake at the probe interval with nothing.
#[derive(Debug)]
pub(crate) enum Drained {
    /// Requests arrived; same grouping as [`IngestQueue::next_group`] but
    /// cut immediately (no watermark wait — the caller is not committing).
    Group(Group),
    /// Closed and empty: the worker's exit signal.
    Closed,
    /// Nothing arrived within the bound.
    TimedOut,
}

#[derive(Debug, Default)]
struct State {
    pending: VecDeque<Request>,
    closed: bool,
}

/// The shared multi-producer / single-consumer coalescing queue.
#[derive(Debug)]
pub struct IngestQueue {
    cfg: IngestConfig,
    state: Mutex<State>,
    /// Producers wait here for backpressure headroom.
    space: Condvar,
    /// The worker waits here for requests (or a watermark deadline).
    work: Condvar,
    /// Submits that hit the `max_pending` backpressure bound and had to
    /// block (cumulative — the observability signal for an undersized
    /// worker or oversized producers).
    blocked: AtomicU64,
    /// Registry handles mirroring the queue state into `strata_obs`
    /// (`strata_queue_depth`, `strata_queue_blocked_total`).
    obs_depth: Arc<strata_obs::Gauge>,
    obs_blocked: Arc<strata_obs::Counter>,
}

/// Whether the update is a barrier (a genuine rule update; fact-clause
/// rules normalize to fact updates and group normally). Allocation-free —
/// this runs on every queue-scan step of the hot ingest path, so it
/// classifies without materializing the normalized clone.
fn is_barrier(update: &Update) -> bool {
    match update {
        Update::InsertRule(r) | Update::DeleteRule(r) => !r.is_fact_clause(),
        Update::InsertFact(_) | Update::DeleteFact(_) => false,
    }
}

impl IngestQueue {
    /// An empty queue with the given watermarks.
    pub fn new(cfg: IngestConfig) -> IngestQueue {
        let registry = strata_obs::global();
        IngestQueue {
            cfg,
            state: Mutex::new(State::default()),
            space: Condvar::new(),
            work: Condvar::new(),
            blocked: AtomicU64::new(0),
            obs_depth: registry.gauge("strata_queue_depth"),
            obs_blocked: registry.counter("strata_queue_blocked_total"),
        }
    }

    /// The configured watermarks.
    pub fn config(&self) -> &IngestConfig {
        &self.cfg
    }

    /// Requests currently pending (not yet drained).
    pub fn pending(&self) -> usize {
        self.state.lock().expect("queue poisoned").pending.len()
    }

    /// How many submits have blocked on the `max_pending` backpressure
    /// bound so far (cumulative).
    pub fn blocked(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }

    /// Enqueues one update, blocking while the queue is at its
    /// backpressure bound. Returns the completion handle. Submitting to a
    /// closed queue resolves the handle immediately with a storage
    /// rejection.
    pub fn submit(&self, update: Update) -> SubmitHandle {
        self.push(Op::Update(update))
    }

    /// Enqueues a flush barrier: its handle resolves once every earlier
    /// request has been decided.
    pub fn submit_flush(&self) -> SubmitHandle {
        self.push(Op::Flush)
    }

    fn push(&self, op: Op) -> SubmitHandle {
        let handle = SubmitHandle::new();
        let mut state = self.state.lock().expect("queue poisoned");
        if !state.closed && state.pending.len() >= self.cfg.max_pending {
            self.blocked.fetch_add(1, Ordering::Relaxed);
            self.obs_blocked.inc();
        }
        while !state.closed && state.pending.len() >= self.cfg.max_pending {
            state = self.space.wait(state).expect("queue poisoned");
        }
        if state.closed {
            drop(state);
            handle.fulfill(Outcome::Rejected(MaintenanceError::Shutdown));
            return handle;
        }
        state.pending.push_back(Request {
            op,
            handle: handle.clone(),
            at: Instant::now(),
            trace: strata_obs::trace::next_trace_id(),
        });
        self.obs_depth.set(state.pending.len() as u64);
        self.work.notify_one();
        handle
    }

    /// Closes the queue: future submits reject immediately; requests
    /// already pending will still be drained and decided.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        self.work.notify_all();
        self.space.notify_all();
    }

    /// Worker bail-out: takes every pending request without blocking, so
    /// a dying worker can reject them instead of leaving their producers
    /// blocked on completion handles forever.
    pub(crate) fn drain_all(&self) -> Vec<Request> {
        let mut state = self.state.lock().expect("queue poisoned");
        let drained: Vec<Request> = state.pending.drain(..).collect();
        self.obs_depth.set(0);
        self.space.notify_all();
        drained
    }

    /// Worker side: blocks until a group is due (count watermark, latency
    /// watermark, barrier, or queue closure) and drains it. Returns `None`
    /// once the queue is closed **and** empty — the worker's exit signal.
    pub(crate) fn next_group(&self) -> Option<Group> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.pending.is_empty() {
                if state.closed {
                    return None;
                }
                state = self.work.wait(state).expect("queue poisoned");
                continue;
            }
            let front_is_barrier = match &state.pending.front().expect("checked non-empty").op {
                Op::Flush => true,
                Op::Update(u) => is_barrier(u),
            };
            if front_is_barrier {
                let req = state.pending.pop_front().expect("checked non-empty");
                self.obs_depth.set(state.pending.len() as u64);
                self.space.notify_all();
                return Some(Group::Barrier(req));
            }
            // Contiguous fact-update prefix, capped at the count watermark.
            let cap = self.cfg.max_group.max(1);
            let prefix = state
                .pending
                .iter()
                .take(cap)
                .take_while(|r| matches!(&r.op, Op::Update(u) if !is_barrier(u)))
                .count();
            let full = prefix >= cap;
            // A barrier (rule/flush) waiting right behind the prefix cuts
            // the group now: the barrier needs everything before it
            // decided, and delaying the prefix would only delay both.
            let barrier_behind = prefix < state.pending.len();
            let oldest = state.pending.front().expect("checked non-empty").at;
            let age = oldest.elapsed();
            if full || barrier_behind || state.closed || age >= self.cfg.max_delay {
                let group: Vec<Request> = state.pending.drain(..prefix).collect();
                self.obs_depth.set(state.pending.len() as u64);
                self.space.notify_all();
                return Some(Group::Facts(group));
            }
            // Partial group with time left: sleep until the latency
            // watermark (or a new submit) and re-examine.
            let wait = self.cfg.max_delay - age;
            let (s, _timeout) = self.work.wait_timeout(state, wait).expect("queue poisoned");
            state = s;
        }
    }

    /// Bounded drain for the read-only worker: hands over whatever is
    /// pending immediately (front barrier alone, else the contiguous fact
    /// prefix) without waiting for the group watermarks — the caller is
    /// rejecting or acking, not amortizing an fsync — and otherwise wakes
    /// at the deadline so the caller can probe storage.
    pub(crate) fn next_group_timeout(&self, wait: std::time::Duration) -> Drained {
        let deadline = Instant::now() + wait;
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(front) = state.pending.front() {
                let front_is_barrier = match &front.op {
                    Op::Flush => true,
                    Op::Update(u) => is_barrier(u),
                };
                if front_is_barrier {
                    let req = state.pending.pop_front().expect("checked non-empty");
                    self.obs_depth.set(state.pending.len() as u64);
                    self.space.notify_all();
                    return Drained::Group(Group::Barrier(req));
                }
                let prefix = state
                    .pending
                    .iter()
                    .take_while(|r| matches!(&r.op, Op::Update(u) if !is_barrier(u)))
                    .count();
                let group: Vec<Request> = state.pending.drain(..prefix).collect();
                self.obs_depth.set(state.pending.len() as u64);
                self.space.notify_all();
                return Drained::Group(Group::Facts(group));
            }
            if state.closed {
                return Drained::Closed;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Drained::TimedOut;
            }
            let (s, _timeout) = self.work.wait_timeout(state, left).expect("queue poisoned");
            state = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use strata_datalog::{Fact, Rule};

    fn ins(s: &str) -> Update {
        Update::InsertFact(Fact::parse(s).unwrap())
    }

    fn cfg(max_group: usize, delay_ms: u64, max_pending: usize) -> IngestConfig {
        IngestConfig {
            max_group,
            max_delay: Duration::from_millis(delay_ms),
            max_pending,
            ..IngestConfig::default()
        }
    }

    #[test]
    fn count_watermark_cuts_full_groups() {
        let q = IngestQueue::new(cfg(3, 10_000, 100));
        for i in 0..7 {
            q.submit(ins(&format!("p({i})")));
        }
        let Some(Group::Facts(g1)) = q.next_group() else { panic!("expected facts") };
        assert_eq!(g1.len(), 3);
        let Some(Group::Facts(g2)) = q.next_group() else { panic!("expected facts") };
        assert_eq!(g2.len(), 3);
        assert_eq!(q.pending(), 1);
        // The last partial group waits for the latency watermark — closing
        // releases it immediately instead.
        q.close();
        let Some(Group::Facts(g3)) = q.next_group() else { panic!("expected facts") };
        assert_eq!(g3.len(), 1);
        assert!(q.next_group().is_none(), "closed and empty");
    }

    #[test]
    fn latency_watermark_releases_partial_groups() {
        let q = IngestQueue::new(cfg(1000, 15, 100));
        q.submit(ins("p(1)"));
        let t0 = Instant::now();
        let Some(Group::Facts(g)) = q.next_group() else { panic!("expected facts") };
        assert_eq!(g.len(), 1);
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(10), "cut early: {waited:?}");
    }

    #[test]
    fn rule_updates_are_barriers() {
        let q = IngestQueue::new(cfg(100, 10_000, 100));
        q.submit(ins("p(1)"));
        q.submit(Update::InsertRule(Rule::parse("a(X) :- p(X).").unwrap()));
        q.submit(ins("p(2)"));
        q.close();
        let Some(Group::Facts(g)) = q.next_group() else { panic!("expected facts") };
        assert_eq!(g.len(), 1, "group cut before the rule barrier");
        let Some(Group::Barrier(r)) = q.next_group() else { panic!("expected barrier") };
        assert!(matches!(r.op, Op::Update(Update::InsertRule(_))));
        let Some(Group::Facts(g)) = q.next_group() else { panic!("expected facts") };
        assert_eq!(g.len(), 1);
        assert!(q.next_group().is_none());
    }

    #[test]
    fn fact_clause_rules_group_like_facts() {
        let q = IngestQueue::new(cfg(100, 10_000, 100));
        q.submit(ins("p(1)"));
        q.submit(Update::InsertRule(Rule::parse("p(2).").unwrap()));
        q.close();
        let Some(Group::Facts(g)) = q.next_group() else { panic!("expected facts") };
        assert_eq!(g.len(), 2, "a fact-clause rule is not a barrier");
    }

    #[test]
    fn flush_is_a_barrier_and_handles_resolve() {
        let q = IngestQueue::new(cfg(100, 10_000, 100));
        let h1 = q.submit(ins("p(1)"));
        let hf = q.submit_flush();
        assert!(h1.try_get().is_none() && hf.try_get().is_none());
        let Some(Group::Facts(g)) = q.next_group() else { panic!("expected facts") };
        for r in &g {
            r.handle.fulfill(Outcome::Accepted { group: 1, version: 1 });
        }
        let Some(Group::Barrier(r)) = q.next_group() else { panic!("expected barrier") };
        assert!(matches!(r.op, Op::Flush));
        r.handle.fulfill(Outcome::Accepted { group: 1, version: 1 });
        assert!(h1.wait().is_accepted());
        assert!(hf.wait().is_accepted());
    }

    #[test]
    fn submit_after_close_rejects_immediately() {
        let q = IngestQueue::new(cfg(10, 10, 10));
        q.close();
        let h = q.submit(ins("p(1)"));
        assert!(matches!(h.wait(), Outcome::Rejected(MaintenanceError::Shutdown)));
    }

    #[test]
    fn timeout_drain_cuts_immediately_or_times_out() {
        let q = IngestQueue::new(cfg(1000, 10_000, 100));
        // Nothing pending: the bounded drain wakes empty-handed at the
        // deadline instead of sleeping out the (huge) latency watermark.
        let t0 = Instant::now();
        assert!(matches!(q.next_group_timeout(Duration::from_millis(10)), Drained::TimedOut));
        assert!(t0.elapsed() < Duration::from_millis(500));
        // Pending requests come back immediately — no watermark wait.
        q.submit(ins("p(1)"));
        q.submit(ins("p(2)"));
        let Drained::Group(Group::Facts(g)) = q.next_group_timeout(Duration::from_secs(5)) else {
            panic!("expected an immediate fact group")
        };
        assert_eq!(g.len(), 2);
        for r in &g {
            r.handle.fulfill(Outcome::Rejected(MaintenanceError::ReadOnly));
        }
        q.close();
        assert!(matches!(q.next_group_timeout(Duration::from_millis(1)), Drained::Closed));
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let q = Arc::new(IngestQueue::new(cfg(2, 10_000, 2)));
        q.submit(ins("p(1)"));
        q.submit(ins("p(2)"));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            q2.submit(ins("p(3)")); // blocks until the worker drains
            "submitted"
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!producer.is_finished(), "submit must block at max_pending");
        let Some(Group::Facts(g)) = q.next_group() else { panic!("expected facts") };
        assert_eq!(g.len(), 2);
        assert_eq!(producer.join().unwrap(), "submitted");
        assert_eq!(q.pending(), 1);
        assert_eq!(q.blocked(), 1, "one producer hit the backpressure bound");
    }
}
