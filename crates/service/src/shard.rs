//! Intra-database sharding: stratum-partitioned parallel commit.
//!
//! The paper's update algorithms are *local* to the sub-program a change
//! touches: a fact update of relation `r` can only create or destroy
//! derivations inside the connected component of `r` in the rule
//! dependency graph ([`DepGraph::components`]). Relations in different
//! components never interact, so a database splits into one engine — one
//! WAL, one group-commit worker — per component cluster, and fact updates
//! route to their component's shard with no cross-shard coordination at
//! all. The union of the shard models is the oracle model, and every
//! per-update decision equals the single-worker decision, because a
//! decision depends only on the update's own relation stream.
//!
//! Rule updates are the one global operation: they rewire the dependency
//! graph, so they act as a **barrier** — every shard is flushed (phase
//! one), the rule is decided against the merged program by a scratch
//! replica of the same strategy (exact error parity with the oracle), and
//! the database is re-partitioned into a fresh *epoch* of shard stores
//! (phase two). Durably, the new epoch is built and checkpointed
//! completely before the [`ShardManifest`] flips to it — the flip is the
//! commit point, and a crash on either side of it recovers a consistent
//! epoch (`strata_store::manifest` has the layout).
//!
//! ## Version tokens
//!
//! A sharded database encodes routing into the versions it hands out:
//! `(epoch << 48) | (shard_version << 8) | shard`. A `query @token` waits
//! on the shard that carried the write — exactly read-your-writes. A
//! token from an older epoch is satisfied by the current snapshot
//! unconditionally: the barrier that bumped the epoch flushed every shard
//! first, so anything an old token could name is already visible. A
//! database opened unsharded (`shards == 1`, no manifest) keeps raw
//! versions for its whole life — the wire surface stays byte-identical to
//! the unsharded server.
//!
//! ## The router arity book
//!
//! One sliver of oracle state lives above the shards: the stream arity
//! overlay. The oracle's coalescer remembers the arity of every relation
//! it ever saw — including relations of *rejected* rules, which reach no
//! shard. The router keeps that book itself (shards > 1 only): seeded
//! from the union program, first-touch recorded on inserts, and fed by
//! rule prechecks exactly like `Coalescer::precheck_rule`. Like the
//! oracle's overlay, it is in-memory state: it resets on reopen to the
//! recovered program's arities (the same contract as the coalescer reset
//! on heal). Unlike the oracle's, it is not unwound when an injected
//! storage fault rolls a group back — a divergence observable only under
//! fault injection.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use rustc_hash::{FxHashMap, FxHasher};
use strata_core::engine::normalize;
use strata_core::registry::EngineRegistry;
use strata_core::{
    DurabilityStats, EngineBox, FaultInjector, MaintenanceError, ReplayMode, ShardManifest,
    StorageSpec, SupportDump, Update, WalSpec,
};
use strata_datalog::{DatalogError, DepGraph, Fact, Program, RelSource, Relation, Rule, Symbol};

use crate::queue::{Outcome, SubmitHandle};
use crate::service::{EngineRebuild, Service, ServiceStats, SupervisorConfig, VersionedSnapshot};
use crate::tenant::WorkerBudget;
use crate::IngestConfig;

/// Hard cap on shards per database: the shard id must fit the low byte of
/// an encoded version token.
pub const MAX_SHARDS: u32 = 256;

const EPOCH_SHIFT: u32 = 48;
const VERSION_SHIFT: u32 = 8;
const VERSION_MASK: u64 = (1 << 40) - 1;
const SHARD_MASK: u64 = 0xff;

/// The stratum partition: which shard owns each rule-connected relation.
///
/// Connected components of the (undirected) dependency relation are dealt
/// round-robin over the shards in deterministic name order; relations
/// outside every component — purely extensional, mentioned by no rule —
/// are hash-routed by name. The plan is a pure function of
/// `(program rules, shard count)`: reopening a store recomputes the same
/// plan its updates were routed by, because rules only change at epoch
/// barriers.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    assign: FxHashMap<Symbol, u32>,
    shards: u32,
}

impl ShardPlan {
    /// Computes the plan for `program` over `target` shards (clamped to
    /// `1..=`[`MAX_SHARDS`]).
    pub fn compute(program: &Program, target: u32) -> ShardPlan {
        let target = target.clamp(1, MAX_SHARDS);
        let mut assign = FxHashMap::default();
        if target > 1 {
            let graph = DepGraph::build(program);
            let mut next = 0u32;
            for comp in graph.components() {
                let connected = comp.len() > 1
                    || comp.iter().any(|&v| {
                        graph.arcs_from(v).next().is_some() || graph.arcs_into(v).next().is_some()
                    });
                if !connected {
                    continue; // fact-only relation: hash-routed
                }
                let shard = next % target;
                next += 1;
                for &v in &comp {
                    assign.insert(graph.rel_index().rel(v), shard);
                }
            }
        }
        ShardPlan { assign, shards: target }
    }

    /// Number of shards this plan routes over.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `rel`: its component's shard if any rule touches
    /// it, else a deterministic hash of its name.
    pub fn shard_of(&self, rel: Symbol) -> u32 {
        if self.shards == 1 {
            return 0;
        }
        if let Some(&k) = self.assign.get(&rel) {
            return k;
        }
        let mut h = FxHasher::default();
        rel.as_str().hash(&mut h);
        (h.finish() % u64::from(self.shards)) as u32
    }

    /// Splits `program` into one sub-program per shard along the plan.
    /// Every rule lands with its head (its whole body shares the head's
    /// component), every fact with its relation.
    pub fn partition(&self, program: &Program) -> Vec<Program> {
        let mut parts = vec![Program::new(); self.shards as usize];
        for (_, rule) in program.rules() {
            parts[self.shard_of(rule.head.rel) as usize]
                .add_rule(rule.clone())
                .expect("partition of a consistent program cannot fail");
        }
        for fact in program.facts() {
            parts[self.shard_of(fact.rel) as usize]
                .assert_fact(fact.clone())
                .expect("partition of a consistent program cannot fail");
        }
        parts
    }
}

/// How to open a [`ShardedDb`]: strategy, shard target, and the service
/// knobs handed to every per-shard worker.
#[derive(Clone)]
pub struct DbOptions {
    /// Registered strategy name (`EngineRegistry::standard`).
    pub strategy: String,
    /// Shard target. `1` (the default) is the unsharded oracle path:
    /// flat storage layout, raw version tokens, rule updates through the
    /// worker queue — byte-identical to a plain [`Service`].
    pub shards: u32,
    /// Group-cutting knobs for each shard's ingest queue.
    pub cfg: IngestConfig,
    /// Restart policy for each shard's supervised worker.
    pub sup: SupervisorConfig,
    /// Fault injector threaded into every shard's storage and worker.
    pub faults: Option<Arc<FaultInjector>>,
    /// Shared budget bounding concurrently *active* shard workers.
    pub budget: Option<Arc<WorkerBudget>>,
}

impl DbOptions {
    /// Defaults: one shard, default queue and supervisor knobs, no
    /// faults, no budget.
    pub fn new(strategy: &str) -> DbOptions {
        DbOptions {
            strategy: strategy.to_string(),
            shards: 1,
            cfg: IngestConfig::default(),
            sup: SupervisorConfig::default(),
            faults: None,
            budget: None,
        }
    }
}

/// The live routing state, swapped wholesale at every epoch barrier.
struct Router {
    shards: Vec<Service>,
    plan: ShardPlan,
    epoch: u64,
    /// The router arity book (module docs); consulted only with > 1
    /// shard. Fact submits mutate it under the router *read* lock, hence
    /// the inner mutex.
    book: Mutex<FxHashMap<Symbol, usize>>,
}

/// Router-decided request counters, merged into [`ShardedDb::stats`] on
/// top of the per-shard sums: arity-gate rejections and rule barriers
/// never reach a shard queue.
#[derive(Default)]
struct RouterCounters {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    barriers: AtomicU64,
}

/// A maintained stratified database, split across per-component shards.
///
/// With one shard this is a thin wrapper over one [`Service`] with
/// identical observable behavior; with more, fact updates route to
/// per-shard group-commit workers and rule updates are epoch barriers.
pub struct ShardedDb {
    inner: RwLock<Router>,
    counters: RouterCounters,
    strategy: String,
    target: u32,
    storage: StorageSpec,
    cfg: IngestConfig,
    sup: SupervisorConfig,
    faults: Option<Arc<FaultInjector>>,
    budget: Option<Arc<WorkerBudget>>,
    /// Opened unsharded with no pre-existing manifest: the store (if any)
    /// lives flat in the root, versions stay raw for the database's whole
    /// life, and rule updates flow through the single worker's queue. A
    /// database that has ever been sharded is never `flat` again.
    flat: bool,
}

/// The completion handle of a sharded submit: either routed to a shard
/// worker, or decided synchronously by the router (arity gate, rule
/// barrier).
pub enum ShardHandle {
    /// Queued on a shard; the outcome's version is re-encoded with the
    /// routing epoch and shard on the way out.
    Routed {
        /// Epoch the request was routed in.
        epoch: u64,
        /// Shard that carries the request.
        shard: u32,
        /// Raw (flat-database) versions: no token encoding.
        single: bool,
        /// The shard worker's completion handle.
        handle: SubmitHandle,
    },
    /// Decided at the router without touching a shard.
    Ready(Outcome),
}

impl ShardHandle {
    /// Blocks until the request is decided.
    pub fn wait(&self) -> Outcome {
        match self {
            ShardHandle::Ready(outcome) => outcome.clone(),
            ShardHandle::Routed { epoch, shard, single, handle } => {
                map_outcome(handle.wait(), *epoch, *shard, *single)
            }
        }
    }

    /// The outcome if already decided.
    pub fn try_get(&self) -> Option<Outcome> {
        match self {
            ShardHandle::Ready(outcome) => Some(outcome.clone()),
            ShardHandle::Routed { epoch, shard, single, handle } => {
                handle.try_get().map(|o| map_outcome(o, *epoch, *shard, *single))
            }
        }
    }
}

fn map_outcome(outcome: Outcome, epoch: u64, shard: u32, single: bool) -> Outcome {
    match outcome {
        Outcome::Accepted { group, version } => {
            Outcome::Accepted { group, version: encode_version(epoch, version, shard, single) }
        }
        rejected => rejected,
    }
}

/// Encodes a shard-local commit version into a client-visible token.
/// Identity for flat (never-sharded) databases — wire byte-compatibility.
pub fn encode_version(epoch: u64, version: u64, shard: u32, single: bool) -> u64 {
    if single {
        version
    } else {
        (epoch << EPOCH_SHIFT) | ((version & VERSION_MASK) << VERSION_SHIFT) | u64::from(shard)
    }
}

/// Decodes a token into `(epoch, shard_version, shard)`.
fn decode_version(token: u64) -> (u64, u64, u32) {
    (token >> EPOCH_SHIFT, (token >> VERSION_SHIFT) & VERSION_MASK, (token & SHARD_MASK) as u32)
}

/// A composed read view: the published snapshot of every shard at one
/// instant, presented as a single model. Relations are disjoint across
/// shards, so lookup is a first-match scan.
pub struct ShardedSnapshot {
    /// The client-visible version token of this view.
    pub version: u64,
    /// Aggregated durability counters (sums; `None` for in-memory).
    pub durability: Option<DurabilityStats>,
    parts: Vec<Arc<VersionedSnapshot>>,
}

impl ShardedSnapshot {
    /// Total facts across the shard models.
    pub fn model_facts(&self) -> usize {
        self.parts.iter().map(|p| p.model.len()).sum()
    }

    /// All facts of the composed model, in the canonical sorted order —
    /// the same order a single-worker model reports.
    pub fn sorted_facts(&self) -> Vec<Fact> {
        let mut facts: Vec<Fact> = self.parts.iter().flat_map(|p| p.model.sorted_facts()).collect();
        facts.sort();
        facts
    }

    /// The per-shard snapshots backing this view.
    pub fn parts(&self) -> &[Arc<VersionedSnapshot>] {
        &self.parts
    }
}

impl RelSource for ShardedSnapshot {
    fn relation(&self, rel: Symbol) -> Option<&Relation> {
        self.parts.iter().find_map(|p| p.model.relation(rel))
    }
}

impl ShardedDb {
    /// Opens (or recovers) a sharded database.
    ///
    /// * `StorageSpec::Mem` — fresh in-memory shards over `program`.
    /// * `StorageSpec::Wal` with a [`ShardManifest`] under its directory —
    ///   recovers that epoch's shards; the manifest's shard count wins
    ///   until the next rule barrier re-shards to `opts.shards`.
    /// * `StorageSpec::Wal`, no manifest, `opts.shards == 1` — the legacy
    ///   flat layout, byte-identical to an unsharded [`Service`].
    /// * `StorageSpec::Wal`, no manifest, `opts.shards > 1` — a fresh
    ///   sharded root; a non-empty directory is first recovered through a
    ///   flat engine and migrated into epoch 0 (the flat files are left
    ///   behind inert — the manifest takes precedence from then on).
    pub fn open(
        program: Program,
        storage: &StorageSpec,
        opts: &DbOptions,
    ) -> Result<ShardedDb, MaintenanceError> {
        let target = opts.shards.clamp(1, MAX_SHARDS);
        let manifest = match storage {
            StorageSpec::Mem => None,
            StorageSpec::Wal(spec) => ShardManifest::load(&spec.dir)
                .map_err(|e| MaintenanceError::Storage(e.to_string()))?,
        };
        let db = ShardedDb {
            inner: RwLock::new(Router {
                shards: Vec::new(),
                plan: ShardPlan { assign: FxHashMap::default(), shards: 1 },
                epoch: 0,
                book: Mutex::new(FxHashMap::default()),
            }),
            counters: RouterCounters::default(),
            strategy: opts.strategy.clone(),
            target,
            storage: storage.clone(),
            cfg: opts.cfg,
            sup: opts.sup,
            faults: opts.faults.clone(),
            budget: opts.budget.clone(),
            flat: target == 1 && manifest.is_none(),
        };
        let registry = EngineRegistry::standard();
        let router = match (storage, manifest) {
            (StorageSpec::Mem, _) => db.open_mem(&registry, program)?,
            (StorageSpec::Wal(spec), Some(manifest)) => db.open_epoch(&registry, spec, manifest)?,
            (StorageSpec::Wal(_), None) if target == 1 => db.open_flat(&registry, program)?,
            (StorageSpec::Wal(spec), None) => db.open_fresh_or_migrate(&registry, spec, program)?,
        };
        *db.write() = router;
        Ok(db)
    }

    /// Fresh in-memory shards.
    fn open_mem(
        &self,
        registry: &EngineRegistry,
        program: Program,
    ) -> Result<Router, MaintenanceError> {
        let plan = ShardPlan::compute(&program, self.target);
        let book = program.arities().collect();
        let engines = if plan.shards() == 1 {
            vec![registry
                .build(&self.strategy, program)
                .map_err(|e| MaintenanceError::Storage(e.to_string()))?]
        } else {
            plan.partition(&program)
                .into_iter()
                .map(|part| {
                    registry
                        .build(&self.strategy, part)
                        .map_err(|e| MaintenanceError::Storage(e.to_string()))
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(Router {
            shards: self.start_services(engines, 0),
            plan,
            epoch: 0,
            book: Mutex::new(book),
        })
    }

    /// The legacy flat layout: one durable engine over the root itself.
    fn open_flat(
        &self,
        registry: &EngineRegistry,
        program: Program,
    ) -> Result<Router, MaintenanceError> {
        let engine = registry
            .build_with_storage_faults(&self.strategy, program, &self.storage, self.faults.clone())
            .map_err(|e| MaintenanceError::Storage(e.to_string()))?;
        let book = engine.program().arities().collect();
        let plan = ShardPlan::compute(engine.program(), 1);
        Ok(Router {
            shards: self.start_services(vec![engine], 0),
            plan,
            epoch: 0,
            book: Mutex::new(book),
        })
    }

    /// Recovers the manifest's epoch: one durable engine per shard
    /// directory, the plan recomputed from the merged recovered program —
    /// deterministic, because rules only change at epoch barriers.
    fn open_epoch(
        &self,
        registry: &EngineRegistry,
        spec: &WalSpec,
        manifest: ShardManifest,
    ) -> Result<Router, MaintenanceError> {
        let mut engines = Vec::with_capacity(manifest.shards as usize);
        for k in 0..manifest.shards {
            let shard_spec = shard_storage(spec, manifest.epoch, k);
            let engine = registry
                .build_with_storage_faults(
                    &self.strategy,
                    Program::new(),
                    &shard_spec,
                    self.faults.clone(),
                )
                .map_err(|e| MaintenanceError::Storage(e.to_string()))?;
            engines.push(engine);
        }
        let union = merge_programs(engines.iter().map(|e| e.program()))?;
        let plan = ShardPlan::compute(&union, manifest.shards);
        let book = union.arities().collect();
        manifest.remove_orphan_epochs(&spec.dir);
        Ok(Router {
            shards: self.start_services(engines, manifest.epoch),
            plan,
            epoch: manifest.epoch,
            book: Mutex::new(book),
        })
    }

    /// A manifest-less root with more than one target shard: fresh, or a
    /// flat store to migrate. A non-empty directory is recovered through
    /// a flat engine first — its program (asserted facts + rules) seeds
    /// the sharded epoch, so no committed update is lost.
    fn open_fresh_or_migrate(
        &self,
        registry: &EngineRegistry,
        spec: &WalSpec,
        program: Program,
    ) -> Result<Router, MaintenanceError> {
        let occupied =
            std::fs::read_dir(&spec.dir).map(|mut d| d.next().is_some()).unwrap_or(false);
        let seed = if occupied {
            let engine = registry
                .build_with_storage_faults(
                    &self.strategy,
                    program,
                    &self.storage,
                    self.faults.clone(),
                )
                .map_err(|e| MaintenanceError::Storage(e.to_string()))?;
            let recovered = engine.program().clone();
            drop(engine); // releases the flat store's lock
            recovered
        } else {
            program
        };
        let plan = ShardPlan::compute(&seed, self.target);
        let book = seed.arities().collect();
        let engines = self.build_epoch(registry, spec, 0, &plan.partition(&seed))?;
        ShardManifest { epoch: 0, shards: plan.shards() }
            .store(&spec.dir)
            .map_err(|e| MaintenanceError::Storage(e.to_string()))?;
        Ok(Router {
            shards: self.start_services(engines, 0),
            plan,
            epoch: 0,
            book: Mutex::new(book),
        })
    }

    /// Builds and **checkpoints** one durable engine per part under
    /// `epoch`'s directory. The checkpoint is load-bearing: the manifest
    /// may flip to this epoch the moment we return, and recovery must
    /// find the program on disk, not trust an in-memory seed.
    fn build_epoch(
        &self,
        registry: &EngineRegistry,
        spec: &WalSpec,
        epoch: u64,
        parts: &[Program],
    ) -> Result<Vec<EngineBox>, MaintenanceError> {
        let build = || -> Result<Vec<EngineBox>, MaintenanceError> {
            let mut engines = Vec::with_capacity(parts.len());
            for (k, part) in parts.iter().enumerate() {
                let shard_spec = shard_storage(spec, epoch, k as u32);
                let mut engine = registry
                    .build_with_storage_faults(
                        &self.strategy,
                        part.clone(),
                        &shard_spec,
                        self.faults.clone(),
                    )
                    .map_err(|e| MaintenanceError::Storage(e.to_string()))?;
                engine.checkpoint()?;
                engines.push(engine);
            }
            Ok(engines)
        };
        let engines = build();
        if engines.is_err() {
            // Half-built epochs are orphans; reclaim eagerly rather than
            // waiting for the next open.
            let _ = std::fs::remove_dir_all(ShardManifest::epoch_dir(&spec.dir, epoch));
        }
        engines
    }

    /// Wraps engines in supervised per-shard services. Durable shards get
    /// a reopen-from-their-own-store rebuild; in-memory shards degrade to
    /// read-only on persistent failure, like a plain in-memory service.
    fn start_services(&self, engines: Vec<EngineBox>, epoch: u64) -> Vec<Service> {
        engines
            .into_iter()
            .enumerate()
            .map(|(k, engine)| {
                let rebuild: Option<EngineRebuild> = match &self.storage {
                    StorageSpec::Mem => None,
                    StorageSpec::Wal(spec) => {
                        let shard_spec = if self.flat {
                            self.storage.clone()
                        } else {
                            shard_storage(spec, epoch, k as u32)
                        };
                        let strategy = self.strategy.clone();
                        let faults = self.faults.clone();
                        Some(Arc::new(move || {
                            EngineRegistry::standard()
                                .build_with_storage_faults(
                                    &strategy,
                                    Program::new(),
                                    &shard_spec,
                                    faults.clone(),
                                )
                                .map_err(|e| {
                                    MaintenanceError::Storage(format!("rebuild failed: {e}"))
                                })
                        }))
                    }
                };
                Service::start_budgeted(
                    engine,
                    self.cfg,
                    self.sup,
                    rebuild,
                    self.faults.clone(),
                    self.budget.clone(),
                )
            })
            .collect()
    }

    /// Submits one update. Fact updates (after [`normalize`]) route to
    /// their relation's shard; rule updates run the epoch barrier (or,
    /// flat, flow through the worker queue exactly like an unsharded
    /// service).
    pub fn submit(&self, update: Update) -> ShardHandle {
        let update = normalize(&update);
        match update {
            Update::InsertFact(_) | Update::DeleteFact(_) => self.submit_fact(update),
            rule => self.submit_rule(rule),
        }
    }

    /// Idempotent submit, routed to the owning shard's dedup window. Rule
    /// updates skip deduplication: the barrier serializes them under the
    /// router's write lock, and retrying an already-applied rule change
    /// is rejected by the engine (duplicate insert / unknown delete) —
    /// ambiguous but never double-applied.
    pub fn submit_dedup(&self, client: &str, seq: u64, update: Update) -> ShardHandle {
        let update = normalize(&update);
        match &update {
            Update::InsertFact(_) | Update::DeleteFact(_) => {
                let r = self.read();
                if let Some(ready) = self.arity_gate(&r, &update) {
                    return ShardHandle::Ready(ready);
                }
                let shard = r.plan.shard_of(fact_rel(&update));
                ShardHandle::Routed {
                    epoch: r.epoch,
                    shard,
                    single: self.flat,
                    handle: r.shards[shard as usize].submit_dedup(client, seq, update),
                }
            }
            _ => self.submit_rule(update),
        }
    }

    fn submit_fact(&self, update: Update) -> ShardHandle {
        let r = self.read();
        if let Some(ready) = self.arity_gate(&r, &update) {
            return ShardHandle::Ready(ready);
        }
        let shard = r.plan.shard_of(fact_rel(&update));
        ShardHandle::Routed {
            epoch: r.epoch,
            shard,
            single: self.flat,
            handle: r.shards[shard as usize].submit(update),
        }
    }

    /// The router arity gate (module docs): inserts are checked against
    /// the book before routing, because the oracle's coalescer would have
    /// checked them against recordings no single shard coalescer holds.
    /// Deletes never arity-check, exactly like the coalescer. With one
    /// shard there is no gate — that shard's coalescer *is* the oracle's.
    fn arity_gate(&self, r: &Router, update: &Update) -> Option<Outcome> {
        if r.shards.len() <= 1 {
            return None;
        }
        let Update::InsertFact(fact) = update else { return None };
        let mut book = r.book.lock().unwrap_or_else(|p| p.into_inner());
        match book.get(&fact.rel) {
            Some(&expected) if expected != fact.arity() => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Some(Outcome::Rejected(MaintenanceError::Datalog(DatalogError::ArityMismatch {
                    rel: fact.rel,
                    expected,
                    found: fact.arity(),
                })))
            }
            Some(_) => None,
            None => {
                book.insert(fact.rel, fact.arity());
                None
            }
        }
    }

    fn submit_rule(&self, update: Update) -> ShardHandle {
        {
            let r = self.read();
            if r.shards.len() == 1 && self.target == 1 {
                // The oracle path: the single worker decides the rule in
                // stream order with everything else.
                return ShardHandle::Routed {
                    epoch: r.epoch,
                    shard: 0,
                    single: self.flat,
                    handle: r.shards[0].submit(update),
                };
            }
        }
        ShardHandle::Ready(self.rule_barrier(update))
    }

    /// The global barrier (module docs): flush every shard, decide the
    /// rule against the merged program with a scratch replica of the same
    /// strategy, re-partition into a new epoch, flip the manifest, swap
    /// the services.
    fn rule_barrier(&self, update: Update) -> Outcome {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let ordinal = self.counters.barriers.fetch_add(1, Ordering::Relaxed) + 1;
        let reject = |e: MaintenanceError| {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            Outcome::Rejected(e)
        };
        let mut r = self.write();
        // Phase 1: drain and commit everything in flight. After this, the
        // shard programs *are* the database.
        let flushes: Vec<SubmitHandle> = r.shards.iter().map(|s| s.submit_flush()).collect();
        for f in flushes {
            f.wait();
        }
        // The book stands in for the oracle coalescer's precheck; its
        // recordings are permanent even when the check fails, mirroring
        // `Coalescer::precheck_rule`.
        if let Update::InsertRule(rule) = &update {
            let mut book = r.book.lock().unwrap_or_else(|p| p.into_inner());
            if let Err(e) = precheck_rule_book(&mut book, rule) {
                drop(book);
                return reject(e);
            }
        }
        let programs = collect_programs(&r.shards);
        let union = match merge_programs(programs.iter()) {
            Ok(u) => u,
            Err(e) => return reject(e),
        };
        // The decision replica: a scratch in-memory engine of the same
        // strategy over the union program answers exactly as the oracle
        // engine would (stratification, unknown rule, arity, safety).
        let registry = EngineRegistry::standard();
        let mut scratch = match registry.build(&self.strategy, union) {
            Ok(s) => s,
            Err(e) => return reject(MaintenanceError::Storage(e.to_string())),
        };
        if let Err(e) = scratch.apply(&update) {
            return reject(e);
        }
        let new_union = scratch.program().clone();
        drop(scratch);
        // Phase 2 — re-shard: build epoch e+1 completely, then commit by
        // manifest flip. A failure up to the flip leaves the old epoch
        // running untouched.
        let new_epoch = r.epoch + 1;
        let plan = ShardPlan::compute(&new_union, self.target);
        let parts = plan.partition(&new_union);
        let engines = match &self.storage {
            StorageSpec::Mem => {
                let built = parts
                    .iter()
                    .map(|part| {
                        registry
                            .build(&self.strategy, part.clone())
                            .map_err(|e| MaintenanceError::Storage(e.to_string()))
                    })
                    .collect::<Result<Vec<_>, _>>();
                match built {
                    Ok(engines) => engines,
                    Err(e) => return reject(e),
                }
            }
            StorageSpec::Wal(spec) => {
                let engines = match self.build_epoch(&registry, spec, new_epoch, &parts) {
                    Ok(engines) => engines,
                    Err(e) => return reject(e),
                };
                let manifest = ShardManifest { epoch: new_epoch, shards: plan.shards() };
                if let Err(e) = manifest.store(&spec.dir) {
                    let _ = std::fs::remove_dir_all(ShardManifest::epoch_dir(&spec.dir, new_epoch));
                    return reject(MaintenanceError::Storage(e.to_string()));
                }
                engines
            }
        };
        // Swap: the old services shut down (releasing their store locks),
        // then their now-orphaned epoch directory is reclaimed.
        for old in std::mem::take(&mut r.shards) {
            old.shutdown();
        }
        r.shards = self.start_services(engines, new_epoch);
        r.plan = plan;
        r.epoch = new_epoch;
        // Reseed the book: the new program's arities, plus every stream
        // recording that survives only in the book (coalesced-away or
        // rejected-rule relations keep their recorded arity).
        {
            let mut book = r.book.lock().unwrap_or_else(|p| p.into_inner());
            for (rel, arity) in new_union.arities() {
                book.entry(rel).or_insert(arity);
            }
        }
        if let StorageSpec::Wal(spec) = &self.storage {
            ShardManifest { epoch: new_epoch, shards: r.plan.shards() }
                .remove_orphan_epochs(&spec.dir);
        }
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        Outcome::Accepted { group: ordinal, version: encode_version(new_epoch, 0, 0, self.flat) }
    }

    /// Flushes every shard; returns a version token the published state
    /// already satisfies — an "at least this" watermark.
    pub fn flush(&self) -> u64 {
        let r = self.read();
        let handles: Vec<SubmitHandle> = r.shards.iter().map(|s| s.submit_flush()).collect();
        let mut first = 0;
        for (k, h) in handles.into_iter().enumerate() {
            if let Outcome::Accepted { version, .. } = h.wait() {
                if k == 0 {
                    first = version;
                }
            }
        }
        encode_version(r.epoch, first, 0, self.flat)
    }

    /// The current composed view: every shard's published snapshot.
    pub fn snapshot(&self) -> ShardedSnapshot {
        let r = self.read();
        let parts: Vec<Arc<VersionedSnapshot>> = r.shards.iter().map(|s| s.snapshot()).collect();
        compose(parts, r.epoch, self.flat)
    }

    /// A composed view at least as new as `token` (read-your-writes).
    /// Tokens from earlier epochs are satisfied by the current view: the
    /// barrier that bumped the epoch flushed everything first. `Err`
    /// carries the freshest token currently available.
    pub fn snapshot_at(&self, token: u64) -> Result<ShardedSnapshot, u64> {
        let r = self.read();
        if self.flat {
            return match r.shards[0].snapshot_at(token) {
                Ok(snap) => Ok(compose(vec![snap], r.epoch, true)),
                Err(latest) => Err(latest),
            };
        }
        let (epoch, version, shard) = decode_version(token);
        if epoch < r.epoch || shard as usize >= r.shards.len() {
            let parts: Vec<Arc<VersionedSnapshot>> =
                r.shards.iter().map(|s| s.snapshot()).collect();
            return Ok(compose(parts, r.epoch, false));
        }
        match r.shards[shard as usize].snapshot_at(version) {
            Ok(snap) => {
                let parts: Vec<Arc<VersionedSnapshot>> = r
                    .shards
                    .iter()
                    .enumerate()
                    .map(
                        |(k, s)| {
                            if k == shard as usize {
                                Arc::clone(&snap)
                            } else {
                                s.snapshot()
                            }
                        },
                    )
                    .collect();
                Ok(compose(parts, r.epoch, false))
            }
            Err(latest) => Err(encode_version(r.epoch, latest, shard, false)),
        }
    }

    /// Aggregated service statistics: per-shard sums plus the router's
    /// own decisions (gate rejections, barriers). `read_only` is sticky
    /// across shards — one wedged shard makes the database report it.
    pub fn stats(&self) -> ServiceStats {
        let r = self.read();
        let shard_stats: Vec<ServiceStats> = r.shards.iter().map(|s| s.stats()).collect();
        let sum = |f: fn(&ServiceStats) -> u64| shard_stats.iter().map(f).sum::<u64>();
        let durability = aggregate_durability(shard_stats.iter().map(|s| s.durability.as_ref()));
        ServiceStats {
            submitted: sum(|s| s.submitted) + self.counters.submitted.load(Ordering::Relaxed),
            accepted: sum(|s| s.accepted) + self.counters.accepted.load(Ordering::Relaxed),
            rejected: sum(|s| s.rejected) + self.counters.rejected.load(Ordering::Relaxed),
            groups: sum(|s| s.groups) + self.counters.barriers.load(Ordering::Relaxed),
            commits: sum(|s| s.commits),
            committed_updates: sum(|s| s.committed_updates),
            coalesced: sum(|s| s.coalesced),
            flushes: sum(|s| s.flushes),
            pending: shard_stats.iter().map(|s| s.pending).sum(),
            blocked: sum(|s| s.blocked),
            snapshot_version: encode_version(
                r.epoch,
                shard_stats.first().map(|s| s.snapshot_version).unwrap_or(0),
                0,
                self.flat,
            ),
            snapshot_reads: sum(|s| s.snapshot_reads),
            model_facts: shard_stats.iter().map(|s| s.model_facts).sum(),
            worker_restarts: sum(|s| s.worker_restarts),
            deduped: sum(|s| s.deduped),
            read_only: shard_stats.iter().any(|s| s.read_only),
            durability,
        }
    }

    /// Pushes per-shard gauges into the global registry under
    /// `{db="…",shard="…"}` labels, plus per-database aggregates.
    pub fn fill_registry(&self, db: &str) {
        let r = self.read();
        let reg = strata_obs::global();
        for (k, service) in r.shards.iter().enumerate() {
            let s = service.stats();
            let shard = k.to_string();
            let labels = [("db", db), ("shard", shard.as_str())];
            reg.gauge_with("strata_queue_depth", &labels).set(s.pending as u64);
            reg.gauge_with("strata_service_commits", &labels).set(s.commits);
            reg.gauge_with("strata_service_read_only", &labels).set(u64::from(s.read_only));
        }
        reg.gauge_with("strata_db_shards", &[("db", db)]).set(r.shards.len() as u64);
        reg.gauge_with("strata_db_epoch", &[("db", db)]).set(r.epoch);
    }

    /// The union support dump: every shard's entries, re-sorted into the
    /// canonical order — comparable against a single-worker oracle dump.
    pub fn support_dump(&self) -> SupportDump {
        let r = self.read();
        let entries =
            r.shards.iter().flat_map(|s| s.with_engine(|e| e.support_dump().entries)).collect();
        SupportDump::from_entries(entries)
    }

    /// The merged program across shards (asserted facts + rules).
    pub fn program(&self) -> Program {
        let r = self.read();
        merge_programs(collect_programs(&r.shards).iter())
            .expect("shard programs are disjoint by construction")
    }

    /// Checkpoints every shard; returns the highest snapshot sequence
    /// written, if any.
    pub fn compact(&self) -> Result<Option<u64>, MaintenanceError> {
        let r = self.read();
        let mut max = None;
        for s in &r.shards {
            if let Some(seq) = s.compact()? {
                max = Some(max.map_or(seq, |m: u64| m.max(seq)));
            }
        }
        Ok(max)
    }

    /// Number of shards currently serving.
    pub fn shards(&self) -> u32 {
        self.read().shards.len() as u32
    }

    /// The current re-shard epoch.
    pub fn epoch(&self) -> u64 {
        self.read().epoch
    }

    /// The shard a relation currently routes to (tests, metrics).
    pub fn shard_of(&self, rel: Symbol) -> u32 {
        self.read().plan.shard_of(rel)
    }

    /// Drains and stops every shard worker; returns the final engines in
    /// shard order (tests inspect their models and dumps).
    pub fn shutdown(self) -> Vec<EngineBox> {
        let router = self.inner.into_inner().unwrap_or_else(|p| p.into_inner());
        router.shards.into_iter().map(|s| s.shutdown()).collect()
    }

    fn read(&self) -> RwLockReadGuard<'_, Router> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Router> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

/// Mirror of `Coalescer::precheck_rule` over the router book: head first,
/// then body literals in order; first-touch recordings are permanent even
/// when a later literal fails.
fn precheck_rule_book(
    book: &mut MutexGuard<'_, FxHashMap<Symbol, usize>>,
    rule: &Rule,
) -> Result<(), MaintenanceError> {
    let mut check = |rel: Symbol, found: usize| match book.get(&rel) {
        Some(&expected) if expected != found => {
            Err(MaintenanceError::Datalog(DatalogError::ArityMismatch { rel, expected, found }))
        }
        Some(_) => Ok(()),
        None => {
            book.insert(rel, found);
            Ok(())
        }
    };
    check(rule.head.rel, rule.head.arity())?;
    for lit in &rule.body {
        check(lit.atom.rel, lit.atom.arity())?;
    }
    Ok(())
}

fn fact_rel(update: &Update) -> Symbol {
    match update {
        Update::InsertFact(f) | Update::DeleteFact(f) => f.rel,
        _ => unreachable!("fact path receives only fact updates"),
    }
}

/// Clones each shard's program out from under its engine lock.
fn collect_programs(shards: &[Service]) -> Vec<Program> {
    shards.iter().map(|s| s.with_engine(|e| e.program().clone())).collect()
}

/// Merges disjoint shard programs back into the oracle program.
fn merge_programs<'a>(
    programs: impl Iterator<Item = &'a Program>,
) -> Result<Program, MaintenanceError> {
    let mut union = Program::new();
    for p in programs {
        for (rel, arity) in p.arities() {
            union
                .note_arity(rel, arity)
                .map_err(|e| MaintenanceError::Storage(format!("shard programs disagree: {e}")))?;
        }
        for (_, rule) in p.rules() {
            union
                .add_rule(rule.clone())
                .map_err(|e| MaintenanceError::Storage(format!("shard programs disagree: {e}")))?;
        }
        for fact in p.facts() {
            union
                .assert_fact(fact.clone())
                .map_err(|e| MaintenanceError::Storage(format!("shard programs disagree: {e}")))?;
        }
    }
    Ok(union)
}

/// The per-shard storage spec: the template with its directory swapped
/// for the shard's epoch directory.
fn shard_storage(template: &WalSpec, epoch: u64, shard: u32) -> StorageSpec {
    let mut spec = template.clone();
    spec.dir = ShardManifest::shard_dir(&template.dir, epoch, shard);
    StorageSpec::Wal(spec)
}

fn compose(parts: Vec<Arc<VersionedSnapshot>>, epoch: u64, single: bool) -> ShardedSnapshot {
    let version = encode_version(epoch, parts.first().map(|p| p.version).unwrap_or(0), 0, single);
    let durability = aggregate_durability(parts.iter().map(|p| p.durability.as_ref()));
    ShardedSnapshot { version, durability, parts }
}

/// Sums durability counters across shards: counters add, booleans OR,
/// `recovery_ms` and `snapshot_chain_len` take the worst shard, and
/// `replay_mode` reports `Bulk` if any shard bulk-replayed. `None` when
/// no shard is storage-backed.
fn aggregate_durability<'a>(
    parts: impl Iterator<Item = Option<&'a DurabilityStats>>,
) -> Option<DurabilityStats> {
    let mut acc: Option<DurabilityStats> = None;
    for d in parts.flatten() {
        let a = acc.get_or_insert_with(|| DurabilityStats {
            replay_mode: d.replay_mode,
            ..DurabilityStats::default()
        });
        a.recovered_txns += d.recovered_txns;
        a.recovered_updates += d.recovered_updates;
        a.recovered_torn_tail |= d.recovered_torn_tail;
        a.recovered_quarantined |= d.recovered_quarantined;
        a.wal_txns += d.wal_txns;
        a.wal_bytes += d.wal_bytes;
        a.recovery_ms = a.recovery_ms.max(d.recovery_ms);
        a.snapshot_chain_len = a.snapshot_chain_len.max(d.snapshot_chain_len);
        a.snapshot_seq = a.snapshot_seq.max(d.snapshot_seq);
        if d.replay_mode == ReplayMode::Bulk {
            a.replay_mode = ReplayMode::Bulk;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_component_program() -> Program {
        Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).
             edge(a, b). path(X, Y) :- edge(X, Y).
             lone(7).",
        )
        .unwrap()
    }

    fn ins(s: &str) -> Update {
        Update::InsertFact(Fact::parse(s).unwrap())
    }

    fn del(s: &str) -> Update {
        Update::DeleteFact(Fact::parse(s).unwrap())
    }

    #[test]
    fn plan_keeps_components_together_and_apart() {
        let p = two_component_program();
        let plan = ShardPlan::compute(&p, 2);
        let of = |n: &str| plan.shard_of(Symbol::new(n));
        // Rule-connected relations stay with their component…
        assert_eq!(of("submitted"), of("rejected"));
        assert_eq!(of("submitted"), of("accepted"));
        assert_eq!(of("edge"), of("path"));
        // …and the two components land on different shards (round-robin
        // over two components and two shards).
        assert_ne!(of("submitted"), of("edge"));
        // A plan is a pure function of the program: recomputing agrees.
        let again = ShardPlan::compute(&p, 2);
        for rel in ["submitted", "accepted", "rejected", "edge", "path", "lone", "never_seen"] {
            assert_eq!(plan.shard_of(Symbol::new(rel)), again.shard_of(Symbol::new(rel)), "{rel}");
        }
    }

    #[test]
    fn partition_splits_facts_and_rules_along_the_plan() {
        let p = two_component_program();
        let plan = ShardPlan::compute(&p, 2);
        let parts = plan.partition(&p);
        assert_eq!(parts.len(), 2);
        let total_facts: usize = parts.iter().map(|p| p.num_facts()).sum();
        let total_rules: usize = parts.iter().map(|p| p.num_rules()).sum();
        assert_eq!(total_facts, p.num_facts());
        assert_eq!(total_rules, p.num_rules());
        // The rejected-rule shard holds its whole component.
        let k = plan.shard_of(Symbol::new("rejected")) as usize;
        assert!(parts[k].arity_of(Symbol::new("submitted")).is_some());
        assert!(parts[k].arity_of(Symbol::new("accepted")).is_some());
    }

    #[test]
    fn version_tokens_roundtrip() {
        let token = encode_version(3, 12345, 7, false);
        assert_eq!(decode_version(token), (3, 12345, 7));
        // Flat databases keep raw versions.
        assert_eq!(encode_version(9, 42, 3, true), 42);
    }

    #[test]
    fn sharded_mem_matches_oracle_decisions_and_model() {
        let program = two_component_program();
        let mut oracle = EngineRegistry::standard().build("cascade", program.clone()).unwrap();
        let mut opts = DbOptions::new("cascade");
        opts.shards = 2;
        let db = ShardedDb::open(program, &StorageSpec::Mem, &opts).unwrap();
        assert_eq!(db.shards(), 2);
        let updates = vec![
            ins("submitted(3)"),
            ins("edge(b, c)"),
            del("accepted(2)"),
            ins("lone(8)"),
            del("lone(99)"), // NotAsserted on both sides
            ins("edge(b)"),  // arity mismatch on both sides
        ];
        for u in updates {
            let want = oracle.apply(&u).map(|_| ()).err();
            let got = match db.submit(u.clone()).wait() {
                Outcome::Accepted { .. } => None,
                Outcome::Rejected(e) => Some(e),
            };
            assert_eq!(got, want, "decision diverged on {u}");
        }
        db.flush();
        let snap = db.snapshot();
        assert_eq!(snap.sorted_facts(), oracle.model().sorted_facts());
        assert_eq!(db.support_dump(), oracle.support_dump());
        db.shutdown();
    }

    #[test]
    fn rule_barrier_reshards_and_preserves_oracle_errors() {
        let program = two_component_program();
        let mut oracle = EngineRegistry::standard().build("cascade", program.clone()).unwrap();
        let mut opts = DbOptions::new("cascade");
        opts.shards = 2;
        let db = ShardedDb::open(program, &StorageSpec::Mem, &opts).unwrap();
        // A rule joining the two components forces them onto one shard.
        let joining =
            Update::InsertRule(Rule::parse("linked(X) :- rejected(X), path(X, X).").unwrap());
        let want = oracle.apply(&joining).map(|_| ()).err();
        let got = match db.submit(joining).wait() {
            Outcome::Accepted { .. } => None,
            Outcome::Rejected(e) => Some(e),
        };
        assert_eq!(got, want);
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.shard_of(Symbol::new("rejected")), db.shard_of(Symbol::new("path")));
        // An unstratifiable rule rejects identically on both sides.
        let bad = Update::InsertRule(Rule::parse("lone(X) :- submitted(X), !lone(X).").unwrap());
        let want = oracle.apply(&bad).unwrap_err();
        let Outcome::Rejected(got) = db.submit(bad).wait() else {
            panic!("unstratifiable rule must reject");
        };
        assert_eq!(got, want);
        // Post-barrier facts still agree.
        let want = oracle.apply(&ins("submitted(9)")).map(|_| ()).err();
        let got = match db.submit(ins("submitted(9)")).wait() {
            Outcome::Accepted { .. } => None,
            Outcome::Rejected(e) => Some(e),
        };
        assert_eq!(got, want);
        db.flush();
        assert_eq!(db.snapshot().sorted_facts(), oracle.model().sorted_facts());
        db.shutdown();
    }

    #[test]
    fn router_arity_gate_remembers_rejected_rules() {
        let mut opts = DbOptions::new("cascade");
        opts.shards = 2;
        let db = ShardedDb::open(two_component_program(), &StorageSpec::Mem, &opts).unwrap();
        // The rule is rejected (unstratifiable), but its arity recordings
        // must stick, as the oracle coalescer's would.
        let bad =
            Update::InsertRule(Rule::parse("fresh(X, Y) :- fresh(Y, X), !fresh(X, Y).").unwrap());
        assert!(matches!(db.submit(bad).wait(), Outcome::Rejected(_)));
        let Outcome::Rejected(MaintenanceError::Datalog(DatalogError::ArityMismatch {
            expected,
            found,
            ..
        })) = db.submit(ins("fresh(1)")).wait()
        else {
            panic!("insert against a rejected rule's recorded arity must reject");
        };
        assert_eq!((expected, found), (2, 1));
        db.shutdown();
    }

    #[test]
    fn flat_database_is_a_plain_service() {
        let db =
            ShardedDb::open(two_component_program(), &StorageSpec::Mem, &DbOptions::new("cascade"))
                .unwrap();
        assert_eq!(db.shards(), 1);
        let Outcome::Accepted { version, .. } = db.submit(ins("submitted(3)")).wait() else {
            panic!("insert must be accepted");
        };
        assert_eq!(version, 1, "flat databases keep raw versions");
        // Rule updates flow through the worker queue, no epoch bump.
        let rule = Update::InsertRule(Rule::parse("big(X) :- submitted(X).").unwrap());
        assert!(matches!(db.submit(rule).wait(), Outcome::Accepted { .. }));
        assert_eq!(db.epoch(), 0);
        db.shutdown();
    }
}
