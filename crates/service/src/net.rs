//! The `std::net` TCP front-end and its blocking client.
//!
//! [`serve`] binds a listener and spawns one acceptor thread plus threads
//! per connection; every connection speaks the [`crate::protocol`] line
//! protocol against a shared [`Service`]. Group commit happens across
//! connections: ten clients submitting concurrently land in the same
//! coalescing queue and share fsyncs.
//!
//! [`serve_cluster`] is the multi-tenant flavor of the same front-end: it
//! serves a [`Cluster`] of named databases instead of one [`Service`].
//! Each connection is bound to one database at a time — [`DEFAULT_DB`]
//! until it issues `use <db>` — and `db create|list|drop` manage the
//! registry. Submits route through the bound database's shard router, so
//! a multi-shard tenant commits disjoint strata in parallel while the
//! wire surface stays the single-database protocol.
//!
//! ## Pipelining
//!
//! A connection is served by three threads — reader, completion, writer —
//! so the reader never blocks on an in-flight group commit:
//!
//! * **queries and stats** are answered from the published snapshot the
//!   moment they are read (no engine access at all);
//! * **submits and flushes** enqueue into the service and park their
//!   completion handles on the completion thread, which delivers each ack
//!   (with its commit version) as the worker decides it.
//!
//! Ordering: **untagged** requests keep the classic strict
//! request-response order — their responses are threaded through the
//! completion queue behind any earlier acks. **Tagged** requests
//! (`#<tag> verb`) opt into out-of-order responses: a tagged query's
//! answer may overtake the ack of an earlier in-flight submit, which is
//! the whole point — readers are not serialized behind writers even on
//! one connection.
//!
//! [`Client`] is the matching blocking client: one request line out, read
//! lines until the `ok`/`err` terminator. Connect/read timeouts
//! ([`Client::connect_timeout`], [`Client::set_read_timeout`]) keep a hung
//! server from wedging a reader forever; [`Client::send_raw`] /
//! [`Client::recv_raw`] expose the tagged wire for pipelined use.
//!
//! [`RetryClient`] layers idempotent at-most-once submission on top:
//! it declares a client id (`client <id>`), stamps every submit with a
//! sequence number, and retries ambiguous failures — dropped connections,
//! `code=panicked`, `code=read-only` — with exponential backoff and
//! jitter. The server's dedup window makes the retry safe: an update
//! acked by a lost response is *replayed*, never applied twice.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use strata_core::{MaintenanceError, Update};
use strata_datalog::query::render_row;
use strata_datalog::RelSource;

use crate::protocol::{self, Request};
use crate::queue::{Outcome, SubmitHandle};
use crate::service::Service;
use crate::shard::{ShardHandle, ShardedDb};
use crate::tenant::{Cluster, DEFAULT_DB};

/// A latched one-way signal: any connection's `shutdown` verb (or the
/// process's signal handler) raises it; the server's owner blocks on
/// [`ShutdownFlag::wait_timeout`] and runs the graceful teardown.
#[derive(Debug, Default)]
pub struct ShutdownFlag {
    raised: Mutex<bool>,
    cv: Condvar,
}

impl ShutdownFlag {
    /// Raises the flag and wakes every waiter. Idempotent.
    pub fn request(&self) {
        let mut raised = self.raised.lock().unwrap_or_else(|p| p.into_inner());
        *raised = true;
        self.cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn requested(&self) -> bool {
        *self.raised.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Blocks until the flag is raised, up to `wait`; returns whether it
    /// was raised. A bounded wait lets the caller interleave polls of
    /// signal-handler state (which cannot safely notify a condvar).
    pub fn wait_timeout(&self, wait: Duration) -> bool {
        let mut raised = self.raised.lock().unwrap_or_else(|p| p.into_inner());
        if !*raised {
            let (guard, _timeout) =
                self.cv.wait_timeout(raised, wait).unwrap_or_else(|p| p.into_inner());
            raised = guard;
        }
        *raised
    }
}

/// A running TCP front-end. Dropping (or [`ServerHandle::stop`]) unbinds
/// the listener; connections already accepted finish their current
/// request-response exchange on their own threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shutdown_requests: Arc<ShutdownFlag>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with a `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The flag a client's `shutdown` verb raises — the server's owner
    /// waits on it to run its graceful teardown (stop accepting, flush the
    /// queue, checkpoint, exit).
    pub fn shutdown_requests(&self) -> Arc<ShutdownFlag> {
        Arc::clone(&self.shutdown_requests)
    }

    /// Stops accepting connections and joins the acceptor thread.
    pub fn stop(mut self) {
        self.shutdown_acceptor();
    }

    fn shutdown_acceptor(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's `accept` with a throwaway connection. A
        // wildcard bind (0.0.0.0 / ::) is not a connectable destination
        // everywhere, so aim the poke at loopback on the bound port.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            target.set_ip(match target {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect(target);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_acceptor();
    }
}

/// What the listener hands each connection: one database, or the whole
/// tenant registry.
#[derive(Clone)]
enum Backend {
    /// The classic single-database server.
    Single(Arc<Service>),
    /// A multi-tenant server; connections start bound to [`DEFAULT_DB`]
    /// and rebind with `use <db>`.
    Cluster(Arc<Cluster>),
}

/// Binds `addr` (e.g. `127.0.0.1:7171`, or port `0` for an ephemeral one)
/// and serves `service` until the handle is stopped or dropped.
pub fn serve(service: Arc<Service>, addr: &str) -> io::Result<ServerHandle> {
    serve_backend(Backend::Single(service), addr)
}

/// Binds `addr` and serves a whole [`Cluster`]: every connection starts
/// bound to the `default` database, rebinds with `use <db>`, and manages
/// tenants with `db create|list|drop`. A connection's binding holds its
/// database open, so `db drop` refuses a database any connection is still
/// using.
pub fn serve_cluster(cluster: Arc<Cluster>, addr: &str) -> io::Result<ServerHandle> {
    serve_backend(Backend::Cluster(cluster), addr)
}

fn serve_backend(backend: Backend, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shutdown_requests = Arc::new(ShutdownFlag::default());
    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let shutdown_requests = Arc::clone(&shutdown_requests);
        std::thread::Builder::new().name("strata-accept".into()).spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let backend = backend.clone();
                let shutdown_requests = Arc::clone(&shutdown_requests);
                let _ = std::thread::Builder::new()
                    .name("strata-conn".into())
                    .spawn(move || serve_connection(stream, backend, &shutdown_requests));
            }
        })?
    };
    Ok(ServerHandle { addr, shutdown, shutdown_requests, acceptor: Some(acceptor) })
}

/// A pending submit decision from either front-end flavor.
enum AnyHandle {
    /// Straight from a single service's queue.
    Direct(SubmitHandle),
    /// Routed through a sharded database (version already re-encoded).
    Routed(ShardHandle),
}

impl AnyHandle {
    fn wait(&self) -> Outcome {
        match self {
            AnyHandle::Direct(h) => h.wait(),
            AnyHandle::Routed(h) => h.wait(),
        }
    }
}

/// One unit of response work, in request-arrival order.
enum Job {
    /// Park on a submit/flush handle; render and emit its ack when the
    /// worker decides it. `flush` switches the ack's surface form.
    Wait { tag: Option<String>, handle: AnyHandle, flush: bool },
    /// Barrier-flush a sharded database (every shard) and ack with the
    /// composite watermark. Runs on the completion thread so the reader
    /// keeps pipelining behind it.
    FlushDb { tag: Option<String>, db: Arc<ShardedDb> },
    /// An already-rendered response (untagged query/stats/parse errors):
    /// emitted here to stay behind earlier untagged acks.
    Lines(Vec<String>),
    /// Emit the goodbye line and stop.
    Quit(String),
}

/// Renders a submit/flush decision, tag applied.
fn render_ack(tag: Option<&str>, outcome: &Outcome, flush: bool) -> String {
    let line = match (flush, outcome) {
        (true, Outcome::Accepted { version, .. }) => format!("ok flushed version={version}"),
        _ => protocol::render_outcome(outcome),
    };
    protocol::render_tagged(tag, &line)
}

/// The `query @<version>` timeout line.
fn version_unpublished(tag: Option<&str>, version: u64, published: u64) -> Vec<String> {
    vec![protocol::render_tagged(
        tag,
        &format!(
            "err version {version} not published within the read wait (published: {published})"
        ),
    )]
}

/// Renders a query's full response (rows + terminator) against any fact
/// source, tag applied to every line.
fn render_query<S: RelSource + ?Sized>(
    src: &S,
    tag: Option<&str>,
    query: &strata_datalog::Query,
) -> Vec<String> {
    if query.is_boolean() {
        vec![protocol::render_tagged(tag, &format!("ok {}", query.holds(src)))]
    } else {
        let rows = query.eval(src);
        let mut out = Vec::with_capacity(rows.len() + 1);
        for row in &rows {
            out.push(protocol::render_tagged(tag, &format!("row {}", render_row(query, row))));
        }
        out.push(protocol::render_tagged(tag, &format!("ok {}", rows.len())));
        out
    }
}

/// What this connection's requests currently run against: the single
/// service of a classic server, or the database a cluster connection is
/// bound to. The held [`Arc<ShardedDb>`] keeps the binding's database
/// alive — [`Cluster::drop_db`] counts it as "in use".
enum Bound {
    Single(Arc<Service>),
    Db { name: String, db: Arc<ShardedDb> },
}

impl Bound {
    fn submit(&self, update: Update) -> AnyHandle {
        match self {
            Bound::Single(s) => AnyHandle::Direct(s.submit(update)),
            Bound::Db { db, .. } => AnyHandle::Routed(db.submit(update)),
        }
    }

    fn submit_dedup(&self, client: &str, seq: u64, update: Update) -> AnyHandle {
        match self {
            Bound::Single(s) => AnyHandle::Direct(s.submit_dedup(client, seq, update)),
            Bound::Db { db, .. } => AnyHandle::Routed(db.submit_dedup(client, seq, update)),
        }
    }

    fn flush_job(&self, tag: Option<String>) -> Job {
        match self {
            Bound::Single(s) => {
                Job::Wait { tag, handle: AnyHandle::Direct(s.submit_flush()), flush: true }
            }
            Bound::Db { db, .. } => Job::FlushDb { tag, db: Arc::clone(db) },
        }
    }

    fn compact(&self) -> Result<Option<u64>, MaintenanceError> {
        match self {
            Bound::Single(s) => s.compact(),
            Bound::Db { db, .. } => db.compact(),
        }
    }

    fn stats_line(&self) -> String {
        match self {
            Bound::Single(s) => protocol::render_stats(&s.stats()),
            Bound::Db { name, db } => protocol::render_stats_for(&db.stats(), name, db.shards()),
        }
    }

    fn query_lines(
        &self,
        tag: Option<&str>,
        query: &strata_datalog::Query,
        at: Option<u64>,
    ) -> Vec<String> {
        match self {
            Bound::Single(service) => {
                let snap = match at {
                    None => service.snapshot(),
                    Some(version) => match service.snapshot_at(version) {
                        Ok(snap) => snap,
                        Err(published) => return version_unpublished(tag, version, published),
                    },
                };
                render_query(&snap.model, tag, query)
            }
            Bound::Db { db, .. } => {
                let snap = match at {
                    None => db.snapshot(),
                    Some(version) => match db.snapshot_at(version) {
                        Ok(snap) => snap,
                        Err(published) => return version_unpublished(tag, version, published),
                    },
                };
                render_query(&snap, tag, query)
            }
        }
    }
}

/// The answer every `use`/`db` verb gets on a single-database server.
const NO_CLUSTER: &str =
    "err this is a single-database server: `use` and `db` need a cluster front-end";

/// One connection's request loop — the reader of the three-thread pipeline
/// described in the module docs. Returns on `quit`, EOF, or any I/O error.
fn serve_connection(
    stream: TcpStream,
    backend: Backend,
    shutdown_requests: &ShutdownFlag,
) -> io::Result<()> {
    let cluster = match &backend {
        Backend::Single(_) => None,
        Backend::Cluster(c) => Some(Arc::clone(c)),
    };
    let mut bound = match backend {
        Backend::Single(service) => Bound::Single(service),
        Backend::Cluster(cluster) => {
            Bound::Db { name: DEFAULT_DB.to_string(), db: cluster.default_db() }
        }
    };
    let mut reader = BufReader::new(stream.try_clone()?);
    let (write_tx, write_rx) = mpsc::channel::<Vec<String>>();
    let (job_tx, job_rx) = mpsc::channel::<Job>();

    // Writer: the single owner of the outbound stream.
    let writer_thread = {
        let mut writer = stream;
        std::thread::Builder::new().name("strata-conn-write".into()).spawn(move || {
            while let Ok(lines) = write_rx.recv() {
                for line in &lines {
                    if writeln!(writer, "{line}").is_err() {
                        return;
                    }
                }
                if writer.flush().is_err() {
                    return;
                }
            }
        })?
    };

    // Completion: drains jobs in request order, parking on handles.
    let completion_thread = {
        let write_tx = write_tx.clone();
        std::thread::Builder::new().name("strata-conn-ack".into()).spawn(move || {
            while let Ok(job) = job_rx.recv() {
                let done = matches!(job, Job::Quit(_));
                let lines = match job {
                    Job::Wait { tag, handle, flush } => {
                        vec![render_ack(tag.as_deref(), &handle.wait(), flush)]
                    }
                    Job::FlushDb { tag, db } => {
                        let version = db.flush();
                        vec![protocol::render_tagged(
                            tag.as_deref(),
                            &format!("ok flushed version={version}"),
                        )]
                    }
                    Job::Lines(lines) => lines,
                    Job::Quit(line) => vec![line],
                };
                if write_tx.send(lines).is_err() || done {
                    return;
                }
            }
        })?
    };

    // The client id declared by this connection's `client` verb, if any.
    // Sequenced submits (`submit seq=<n>`) route through the service's
    // idempotency window keyed on it.
    let mut client_id: Option<String> = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break; // EOF: client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        let (tag, rest) = protocol::split_tag(line.trim());
        let tag = tag.map(str::to_string);
        // Tagged responses may overtake pending acks (direct to writer);
        // untagged ones queue behind them to keep the classic ordering.
        let respond = |lines: Vec<String>| -> Result<(), ()> {
            if tag.is_some() {
                write_tx.send(lines).map_err(|_| ())
            } else {
                job_tx.send(Job::Lines(lines)).map_err(|_| ())
            }
        };
        let sent = match protocol::parse_request(rest) {
            Err(e) => respond(vec![protocol::render_tagged(tag.as_deref(), &format!("err {e}"))]),
            Ok(Request::Quit) => {
                let bye = protocol::render_tagged(tag.as_deref(), "ok bye");
                let _ = job_tx.send(Job::Quit(bye));
                break;
            }
            Ok(Request::Submit { update, seq }) => {
                // Blocks only on queue backpressure; the ack is delivered
                // by the completion thread once the group commits.
                match (seq, client_id.as_deref()) {
                    (None, _) => {
                        let handle = bound.submit(update);
                        job_tx
                            .send(Job::Wait { tag: tag.clone(), handle, flush: false })
                            .map_err(|_| ())
                    }
                    (Some(seq), Some(client)) => {
                        let handle = bound.submit_dedup(client, seq, update);
                        job_tx
                            .send(Job::Wait { tag: tag.clone(), handle, flush: false })
                            .map_err(|_| ())
                    }
                    (Some(_), None) => respond(vec![protocol::render_tagged(
                        tag.as_deref(),
                        "err seq= requires a client id: send `client <id>` first",
                    )]),
                }
            }
            Ok(Request::Hello { client }) => {
                let line = format!("ok client={client}");
                client_id = Some(client);
                respond(vec![protocol::render_tagged(tag.as_deref(), &line)])
            }
            Ok(Request::Shutdown) => {
                shutdown_requests.request();
                respond(vec![protocol::render_tagged(tag.as_deref(), "ok shutting down")])
            }
            Ok(Request::Flush) => job_tx.send(bound.flush_job(tag.clone())).map_err(|_| ()),
            Ok(Request::Compact) => {
                let line = match bound.compact() {
                    Ok(Some(seq)) => format!("ok compacted seq={seq}"),
                    Ok(None) => "err nothing to compact: engine is in-memory".to_string(),
                    Err(e) => format!("err code={} {e}", e.code()),
                };
                respond(vec![protocol::render_tagged(tag.as_deref(), &line)])
            }
            Ok(Request::Stats) => {
                let line = bound.stats_line();
                respond(vec![protocol::render_tagged(tag.as_deref(), &line)])
            }
            Ok(Request::Metrics) => {
                // Sync the service-level gauges into the registry first so
                // the exposition always agrees with the `stats` line. A
                // cluster syncs every tenant — the registry is global.
                match (&cluster, &bound) {
                    (Some(c), _) => c.fill_registry(),
                    (None, Bound::Single(s)) => s.fill_registry(),
                    (None, Bound::Db { .. }) => unreachable!("cluster bindings imply a cluster"),
                }
                let text = strata_obs::render();
                let mut lines: Vec<String> =
                    text.lines().map(|l| protocol::render_tagged(tag.as_deref(), l)).collect();
                let count = lines.len();
                lines.push(protocol::render_tagged(tag.as_deref(), &format!("ok {count}")));
                respond(lines)
            }
            Ok(Request::Trace { n }) => {
                let spans = strata_obs::trace::recent_spans(n);
                let mut lines: Vec<String> = spans
                    .iter()
                    .map(|s| {
                        protocol::render_tagged(tag.as_deref(), &format!("span {}", s.render()))
                    })
                    .collect();
                lines.push(protocol::render_tagged(tag.as_deref(), &format!("ok {}", spans.len())));
                respond(lines)
            }
            Ok(Request::Query { query, at }) => {
                respond(bound.query_lines(tag.as_deref(), &query, at))
            }
            Ok(Request::Use { db }) => {
                let line = match &cluster {
                    None => NO_CLUSTER.to_string(),
                    Some(c) => match c.get(&db) {
                        Some(handle) => {
                            bound = Bound::Db { name: db.clone(), db: handle };
                            format!("ok db={db}")
                        }
                        None => {
                            format!("err no database named {db} (create it with `db create {db}`)")
                        }
                    },
                };
                respond(vec![protocol::render_tagged(tag.as_deref(), &line)])
            }
            Ok(Request::DbCreate { db }) => {
                let line = match &cluster {
                    None => NO_CLUSTER.to_string(),
                    Some(c) => match c.create(&db) {
                        Ok(_) => format!("ok created db={db}"),
                        Err(e) => format!("err {e}"),
                    },
                };
                respond(vec![protocol::render_tagged(tag.as_deref(), &line)])
            }
            Ok(Request::DbDrop { db }) => {
                let line = match &cluster {
                    None => NO_CLUSTER.to_string(),
                    Some(c) => match c.drop_db(&db) {
                        Ok(()) => format!("ok dropped db={db}"),
                        Err(e) => format!("err {e}"),
                    },
                };
                respond(vec![protocol::render_tagged(tag.as_deref(), &line)])
            }
            Ok(Request::DbList) => match &cluster {
                None => respond(vec![protocol::render_tagged(tag.as_deref(), NO_CLUSTER)]),
                Some(c) => {
                    let infos = c.list();
                    let mut lines: Vec<String> = infos
                        .iter()
                        .map(|i| {
                            protocol::render_tagged(
                                tag.as_deref(),
                                &format!(
                                    "db {} shards={} facts={}",
                                    i.name, i.shards, i.model_facts
                                ),
                            )
                        })
                        .collect();
                    lines.push(protocol::render_tagged(
                        tag.as_deref(),
                        &format!("ok {}", infos.len()),
                    ));
                    respond(lines)
                }
            },
        };
        if sent.is_err() {
            break; // a downstream thread died (broken pipe): stop reading
        }
    }
    drop(job_tx);
    let _ = completion_thread.join();
    drop(write_tx);
    let _ = writer_thread.join();
    Ok(())
}

/// What a query returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryReply {
    /// A boolean query's truth value.
    Boolean(bool),
    /// A binding query's rendered rows.
    Rows(Vec<String>),
}

/// An accepted submit's acknowledgment: the group that carried it and the
/// commit version whose published snapshot includes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ack {
    /// Drain ordinal of the group.
    pub group: u64,
    /// Commit version — pin it with [`Client::query_at`] for
    /// read-your-writes on any connection.
    pub version: u64,
}

fn parse_ack(tail: &str) -> Ack {
    let mut ack = Ack { group: 0, version: 0 };
    for kv in tail.split_whitespace() {
        if let Some(v) = kv.strip_prefix("group=") {
            ack.group = v.parse().unwrap_or(0);
        } else if let Some(v) = kv.strip_prefix("version=") {
            ack.version = v.parse().unwrap_or(0);
        }
    }
    ack
}

/// The blocking client for the line protocol.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connects with a bound on both the connection attempt and every
    /// subsequent read ([`Client::set_read_timeout`] with the same
    /// duration), so a hung or unreachable server surfaces as a timed-out
    /// `Err` instead of wedging the caller forever.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> io::Result<Client> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("cannot resolve `{addr}`"))
        })?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        let client = Client::from_stream(stream)?;
        client.set_read_timeout(Some(timeout))?;
        Ok(client)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// Bounds every subsequent read; `None` restores blocking reads. A
    /// read that times out surfaces as an `Err` of kind `WouldBlock` or
    /// `TimedOut` (platform-dependent).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one raw request line (the pipelined path: prefix a `#tag`
    /// yourself and pair responses by tag via [`Client::recv_raw`]).
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Receives one response line, split into `(tag, payload)`.
    pub fn recv_raw(&mut self) -> io::Result<(Option<String>, String)> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let (tag, rest) = protocol::split_tag(reply.trim_end());
        Ok((tag.map(str::to_string), rest.to_string()))
    }

    /// Sends one request line, collecting `row` lines until the
    /// terminator. Returns `(rows, terminator-without-prefix)`; an `err`
    /// terminator becomes `Err(reason)` in the outer protocol result.
    fn roundtrip(&mut self, line: &str) -> io::Result<Result<(Vec<String>, String), String>> {
        self.send_raw(line)?;
        let mut rows = Vec::new();
        loop {
            let (_tag, reply) = self.recv_raw()?;
            if let Some(rest) = reply.strip_prefix("row ") {
                rows.push(rest.to_string());
            } else if let Some(rest) = reply.strip_prefix("ok") {
                return Ok(Ok((rows, rest.trim().to_string())));
            } else if let Some(rest) = reply.strip_prefix("err") {
                return Ok(Err(rest.trim().to_string()));
            } else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed response line: {reply}"),
                ));
            }
        }
    }

    /// Submits one update; `Ok(ack)` on acceptance, `Err(reason)` on
    /// rejection.
    pub fn submit(&mut self, update: &Update) -> io::Result<Result<Ack, String>> {
        self.submit_text(&protocol::render_update(update))
    }

    /// Submits raw update text (`+ p(1)`).
    pub fn submit_text(&mut self, update: &str) -> io::Result<Result<Ack, String>> {
        Ok(self.roundtrip(&format!("submit {update}"))?.map(|(_, tail)| parse_ack(&tail)))
    }

    /// Evaluates a query against the server's latest published snapshot.
    pub fn query(&mut self, body: &str) -> io::Result<Result<QueryReply, String>> {
        self.query_line(&format!("query {body}"))
    }

    /// Evaluates a query pinned at a commit version: the server waits
    /// (bounded) until its published snapshot reaches `version`, so a
    /// client passing its own [`Ack::version`] observes its own write —
    /// on this or any other connection.
    pub fn query_at(&mut self, version: u64, body: &str) -> io::Result<Result<QueryReply, String>> {
        self.query_line(&format!("query @{version} {body}"))
    }

    fn query_line(&mut self, line: &str) -> io::Result<Result<QueryReply, String>> {
        Ok(self.roundtrip(line)?.map(|(rows, tail)| match tail.as_str() {
            "true" => QueryReply::Boolean(true),
            "false" => QueryReply::Boolean(false),
            _ => QueryReply::Rows(rows),
        }))
    }

    /// Blocks until everything submitted before (on any connection) is
    /// decided; returns the commit version current at the flush point.
    pub fn flush(&mut self) -> io::Result<Result<u64, String>> {
        Ok(self.roundtrip("flush")?.map(|(_, tail)| parse_ack(&tail).version))
    }

    /// The server's stats line (`key=value` pairs).
    pub fn stats(&mut self) -> io::Result<Result<String, String>> {
        Ok(self.roundtrip("stats")?.map(|(_, tail)| tail))
    }

    /// Checkpoints the server's durable store now (snapshot + empty the
    /// WAL). `Ok(seq)` is the transaction sequence the snapshot chain
    /// covers through; `Err(reason)` for an in-memory server or a failed
    /// checkpoint.
    pub fn compact(&mut self) -> io::Result<Result<u64, String>> {
        Ok(self.roundtrip("compact")?.map(|(_, tail)| {
            tail.split_whitespace()
                .find_map(|kv| kv.strip_prefix("seq="))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        }))
    }

    /// Sends a request whose response streams arbitrary payload lines
    /// (`metrics`, `trace`) before the `ok <count>` terminator — unlike
    /// [`Client::roundtrip`], which only accepts `row ` lines.
    fn roundtrip_lines(&mut self, line: &str) -> io::Result<Result<Vec<String>, String>> {
        self.send_raw(line)?;
        let mut lines = Vec::new();
        loop {
            let (_tag, reply) = self.recv_raw()?;
            if reply.strip_prefix("ok").is_some_and(|r| r.is_empty() || r.starts_with(' ')) {
                return Ok(Ok(lines));
            }
            if let Some(rest) = reply.strip_prefix("err") {
                return Ok(Err(rest.trim().to_string()));
            }
            lines.push(reply);
        }
    }

    /// The server's metrics registry in Prometheus text exposition format
    /// (`# TYPE` comments and `name{label} value` samples, sorted by
    /// metric name), rejoined with newlines.
    pub fn metrics(&mut self) -> io::Result<Result<String, String>> {
        Ok(self.roundtrip_lines("metrics")?.map(|lines| lines.join("\n")))
    }

    /// One metric's value from the exposition — counters and gauges only
    /// (histograms expose `_bucket`/`_sum`/`_count` series instead).
    pub fn metrics_value(&mut self, name: &str) -> io::Result<Option<u64>> {
        let text = match self.metrics()? {
            Ok(text) => text,
            Err(_) => return Ok(None),
        };
        Ok(text.lines().find_map(|line| {
            let rest = line.strip_prefix(name)?;
            let value = rest.strip_prefix(' ')?;
            value.parse().ok()
        }))
    }

    /// The server's last `n` sealed group spans, oldest first, one
    /// rendered span per element (without the `span ` prefix).
    pub fn trace(&mut self, n: usize) -> io::Result<Result<Vec<String>, String>> {
        Ok(self.roundtrip_lines(&format!("trace {n}"))?.map(|lines| {
            lines.into_iter().filter_map(|l| l.strip_prefix("span ").map(str::to_string)).collect()
        }))
    }

    /// One stats field, parsed.
    pub fn stats_field(&mut self, key: &str) -> io::Result<Option<u64>> {
        let line = match self.stats()? {
            Ok(line) => line,
            Err(_) => return Ok(None),
        };
        Ok(line.split_whitespace().find_map(|kv| {
            kv.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix('='))
                .and_then(|v| v.parse().ok())
        }))
    }

    /// Declares this connection's client id, enabling sequenced
    /// (`seq=<n>`) idempotent submits.
    pub fn hello(&mut self, id: &str) -> io::Result<Result<(), String>> {
        Ok(self.roundtrip(&format!("client {id}"))?.map(|_| ()))
    }

    /// Binds this connection to a database on a multi-tenant server
    /// ([`serve_cluster`]); every subsequent submit/query/stats runs
    /// against it.
    pub fn use_db(&mut self, name: &str) -> io::Result<Result<(), String>> {
        Ok(self.roundtrip(&format!("use {name}"))?.map(|_| ()))
    }

    /// Creates a database on a multi-tenant server.
    pub fn db_create(&mut self, name: &str) -> io::Result<Result<(), String>> {
        Ok(self.roundtrip(&format!("db create {name}"))?.map(|_| ()))
    }

    /// Drops a database on a multi-tenant server. Fails while any
    /// connection (including this one) is still bound to it.
    pub fn db_drop(&mut self, name: &str) -> io::Result<Result<(), String>> {
        Ok(self.roundtrip(&format!("db drop {name}"))?.map(|_| ()))
    }

    /// Lists the server's databases, sorted by name: one
    /// `<name> shards=<n> facts=<m>` entry per database.
    pub fn db_list(&mut self) -> io::Result<Result<Vec<String>, String>> {
        Ok(self.roundtrip_lines("db list")?.map(|lines| {
            lines.into_iter().filter_map(|l| l.strip_prefix("db ").map(str::to_string)).collect()
        }))
    }

    /// Asks the server's owner to shut down gracefully: raises the
    /// server's [`ShutdownFlag`]. The server acknowledges before its
    /// owner begins the drain, so the ack always arrives.
    pub fn request_shutdown(&mut self) -> io::Result<Result<(), String>> {
        Ok(self.roundtrip("shutdown")?.map(|_| ()))
    }

    /// Says goodbye and closes the connection.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.roundtrip("quit")?;
        Ok(())
    }
}

/// Whether a wire rejection is worth retrying: the server marks its
/// transient failure surface with `code=` prefixes whose
/// [`strata_core::MaintenanceError::is_retryable`] is true.
fn is_retryable_rejection(reason: &str) -> bool {
    let Some(code) = reason.split_whitespace().next().and_then(|t| t.strip_prefix("code=")) else {
        return false;
    };
    matches!(code, "storage" | "panicked" | "read-only" | "shutdown")
}

/// An idempotent, self-reconnecting client for at-most-once submission.
///
/// Every submit carries a fresh sequence number under the client's
/// declared id. On an ambiguous failure — the connection died before the
/// ack arrived, or the server rejected with a retryable `code=` (worker
/// panicked mid-group, read-only degradation, storage fault) — the client
/// reconnects and **resends the same sequence number** after an
/// exponentially backed-off, jittered pause. The server's dedup window
/// guarantees the retry is safe: if the first attempt was in fact decided,
/// the recorded outcome is replayed verbatim; the update is never applied
/// twice.
#[derive(Debug)]
pub struct RetryClient {
    addr: String,
    id: String,
    seq: u64,
    attempts: u32,
    base_backoff: Duration,
    client: Option<Client>,
    rng: SmallRng,
}

impl RetryClient {
    /// A retrying client with the default policy: 8 attempts, 5 ms base
    /// backoff (doubling, jittered). The id must be stable across the
    /// client's lifetime — it keys the server's dedup window.
    pub fn new(addr: &str, id: &str) -> RetryClient {
        RetryClient::with_policy(addr, id, 8, Duration::from_millis(5))
    }

    /// A retrying client with an explicit attempt budget and base backoff.
    pub fn with_policy(addr: &str, id: &str, attempts: u32, base_backoff: Duration) -> RetryClient {
        // Seed the jitter from the id so two clients with distinct ids
        // desynchronize their retry storms deterministically.
        let seed =
            id.bytes().fold(0xcafe_f00d_u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        RetryClient {
            addr: addr.to_string(),
            id: id.to_string(),
            seq: 0,
            attempts: attempts.max(1),
            base_backoff,
            client: None,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The highest sequence number issued so far.
    pub fn last_seq(&self) -> u64 {
        self.seq
    }

    /// The live connection, (re)established and handshaken on demand.
    fn connected(&mut self) -> io::Result<&mut Client> {
        if self.client.is_none() {
            let mut client = Client::connect(&self.addr)?;
            match client.roundtrip(&format!("client {}", self.id))? {
                Ok(_) => {}
                Err(reason) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("client handshake rejected: {reason}"),
                    ));
                }
            }
            self.client = Some(client);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// Sleeps `base * 2^(attempt-1)` plus uniform jitter of up to one base
    /// interval, so concurrent retriers spread out instead of stampeding.
    fn backoff(&mut self, attempt: u32) {
        let base = self.base_backoff.as_millis() as u64;
        let pause = base.saturating_mul(1_u64 << (attempt - 1).min(10));
        let jitter = if base > 0 { self.rng.gen_range(0..=base) } else { 0 };
        std::thread::sleep(Duration::from_millis(pause + jitter));
    }

    /// Submits one update idempotently; retries ambiguous failures.
    pub fn submit(&mut self, update: &Update) -> io::Result<Result<Ack, String>> {
        self.submit_text(&protocol::render_update(update))
    }

    /// Submits raw update text (`+ p(1)`) idempotently under a fresh
    /// sequence number. `Ok(ack)` on acceptance; `Err(reason)` only for
    /// *deterministic* rejections (semantic errors the engine would repeat
    /// on any retry). Transient failures are retried until the attempt
    /// budget runs out, then surface as an `io::Error`.
    pub fn submit_text(&mut self, update: &str) -> io::Result<Result<Ack, String>> {
        self.seq += 1;
        let line = format!("submit seq={} {update}", self.seq);
        self.retry_roundtrip(&line).map(|r| r.map(|(_, tail)| parse_ack(&tail)))
    }

    /// Evaluates a query, reconnecting and retrying on connection loss
    /// (reads are naturally idempotent).
    pub fn query(&mut self, body: &str) -> io::Result<Result<QueryReply, String>> {
        self.retry_roundtrip(&format!("query {body}")).map(|r| {
            r.map(|(rows, tail)| match tail.as_str() {
                "true" => QueryReply::Boolean(true),
                "false" => QueryReply::Boolean(false),
                _ => QueryReply::Rows(rows),
            })
        })
    }

    /// Flushes (idempotent barrier), reconnecting and retrying on
    /// connection loss; returns the commit version at the flush point.
    pub fn flush(&mut self) -> io::Result<Result<u64, String>> {
        self.retry_roundtrip("flush").map(|r| r.map(|(_, tail)| parse_ack(&tail).version))
    }

    /// The shared retry loop: resend `line` verbatim until it yields a
    /// terminal answer or the attempt budget is exhausted.
    fn retry_roundtrip(&mut self, line: &str) -> io::Result<Result<(Vec<String>, String), String>> {
        let mut last = String::from("no attempts made");
        for attempt in 0..self.attempts {
            if attempt > 0 {
                self.backoff(attempt);
            }
            let outcome = match self.connected() {
                Ok(client) => client.roundtrip(line),
                Err(e) => Err(e),
            };
            match outcome {
                Err(e) => {
                    // Connection-level failure: ambiguous (the request may
                    // have committed). Reconnect and resend the same seq.
                    self.client = None;
                    last = format!("i/o: {e}");
                }
                Ok(Ok(done)) => return Ok(Ok(done)),
                Ok(Err(reason)) => {
                    if is_retryable_rejection(&reason) {
                        last = reason;
                    } else {
                        return Ok(Err(reason));
                    }
                }
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("retries exhausted after {} attempts; last failure: {last}", self.attempts),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IngestConfig;
    use strata_core::registry::EngineRegistry;
    use strata_datalog::{Fact, Program};

    fn pods_server() -> (Arc<Service>, ServerHandle) {
        let program = Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap();
        let engine = EngineRegistry::standard().build("cascade", program).unwrap();
        let service = Arc::new(Service::start(engine, IngestConfig::default()));
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        (service, handle)
    }

    #[test]
    fn submit_query_flush_stats_roundtrip() {
        let (_service, handle) = pods_server();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        assert_eq!(client.query("rejected(1)").unwrap().unwrap(), QueryReply::Boolean(true));
        let ack = client
            .submit(&Update::InsertFact(Fact::parse("accepted(1)").unwrap()))
            .unwrap()
            .unwrap();
        assert!(ack.group >= 1);
        assert!(ack.version >= 1, "a committing submit must carry its version");
        assert_eq!(client.query("rejected(1)").unwrap().unwrap(), QueryReply::Boolean(false));
        let reply = client.query("rejected(X)").unwrap().unwrap();
        assert_eq!(reply, QueryReply::Rows(vec![]), "everyone is accepted or rejected(2)? no");
        let flushed_at = client.flush().unwrap().unwrap();
        assert!(flushed_at >= ack.version);
        assert_eq!(client.stats_field("accepted").unwrap(), Some(1));
        assert_eq!(client.stats_field("snapshot_version").unwrap(), Some(flushed_at));
        client.quit().unwrap();
        handle.stop();
    }

    #[test]
    fn rejections_travel_as_err_lines() {
        let (_service, handle) = pods_server();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let err = client.submit_text("- ghost(1)").unwrap().unwrap_err();
        assert!(err.contains("not an asserted fact"), "{err}");
        let err = client.submit_text("nonsense").unwrap().unwrap_err();
        assert!(err.contains("+"), "{err}");
        client.quit().unwrap();
        handle.stop();
    }

    #[test]
    fn two_clients_share_one_database() {
        let (_service, handle) = pods_server();
        let addr = handle.addr().to_string();
        let mut a = Client::connect(&addr).unwrap();
        let mut b = Client::connect(&addr).unwrap();
        a.submit_text("+ submitted(9)").unwrap().unwrap();
        assert_eq!(b.query("rejected(9)").unwrap().unwrap(), QueryReply::Boolean(true));
        b.submit_text("+ accepted(9)").unwrap().unwrap();
        assert_eq!(a.query("rejected(9)").unwrap().unwrap(), QueryReply::Boolean(false));
        handle.stop();
    }

    #[test]
    fn read_your_writes_across_connections() {
        let (_service, handle) = pods_server();
        let addr = handle.addr().to_string();
        let mut writer = Client::connect(&addr).unwrap();
        let mut reader = Client::connect(&addr).unwrap();
        let ack = writer.submit_text("+ accepted(1)").unwrap().unwrap();
        // The other connection pins the writer's version: guaranteed view.
        assert_eq!(
            reader.query_at(ack.version, "rejected(1)").unwrap().unwrap(),
            QueryReply::Boolean(false),
        );
        handle.stop();
    }

    #[test]
    fn versioned_query_for_future_version_errors() {
        let program = Program::parse("p(1).").unwrap();
        let engine = EngineRegistry::standard().build("cascade", program).unwrap();
        let cfg = IngestConfig { read_wait: Duration::from_millis(30), ..IngestConfig::default() };
        let service = Arc::new(Service::start(engine, cfg));
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let err = client.query_at(1_000_000, "p(X)").unwrap().unwrap_err();
        assert!(err.contains("not published"), "{err}");
        // The connection stays usable after the versioned-read timeout.
        assert_eq!(client.query("p(1)").unwrap().unwrap(), QueryReply::Boolean(true));
        handle.stop();
    }

    #[test]
    fn tagged_requests_interleave_on_one_connection() {
        let (_service, handle) = pods_server();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        // Fire three tagged requests back to back without reading.
        client.send_raw("#a submit + submitted(70)").unwrap();
        client.send_raw("#b query rejected(2)").unwrap();
        client.send_raw("#c stats").unwrap();
        let mut seen = std::collections::HashMap::new();
        for _ in 0..3 {
            let (tag, line) = client.recv_raw().unwrap();
            seen.insert(tag.expect("tagged responses"), line);
        }
        assert!(seen["a"].starts_with("ok group="), "{:?}", seen["a"]);
        assert!(seen["a"].contains("version="), "{:?}", seen["a"]);
        assert_eq!(seen["b"], "ok false");
        assert!(seen["c"].contains("snapshot_version="), "{:?}", seen["c"]);
        client.quit().unwrap();
        handle.stop();
    }

    #[test]
    fn sequenced_submits_replay_instead_of_reapplying() {
        let (service, handle) = pods_server();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        client.hello("alice").unwrap().unwrap();
        let first = client.roundtrip("submit seq=1 + submitted(41)").unwrap().unwrap();
        // A retry of the same sequence number replays the recorded ack —
        // same group, same version — rather than re-running the update.
        let retry = client.roundtrip("submit seq=1 + submitted(41)").unwrap().unwrap();
        assert_eq!(first, retry, "replayed ack must be byte-identical");
        assert_eq!(client.stats_field("deduped").unwrap(), Some(1));
        // A deterministic rejection replays too, as the same error.
        let e1 = client.roundtrip("submit seq=2 - ghost(1)").unwrap().unwrap_err();
        let e2 = client.roundtrip("submit seq=2 - ghost(1)").unwrap().unwrap_err();
        assert_eq!(e1, e2);
        assert!(e1.starts_with("code=not-asserted"), "{e1}");
        let _ = service.stats();
        client.quit().unwrap();
        handle.stop();
    }

    #[test]
    fn sequenced_submit_without_client_id_is_refused() {
        let (_service, handle) = pods_server();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let err = client.roundtrip("submit seq=1 + submitted(50)").unwrap().unwrap_err();
        assert!(err.contains("client"), "{err}");
        // Unsequenced submits still work without a client id.
        client.submit_text("+ submitted(50)").unwrap().unwrap();
        client.quit().unwrap();
        handle.stop();
    }

    #[test]
    fn shutdown_verb_raises_the_server_flag() {
        let (_service, handle) = pods_server();
        let flag = handle.shutdown_requests();
        assert!(!flag.requested());
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        client.request_shutdown().unwrap().unwrap();
        assert!(flag.wait_timeout(Duration::from_secs(5)), "verb must raise the flag");
        // The connection stays live until the owner actually tears down.
        assert_eq!(client.query("rejected(1)").unwrap().unwrap(), QueryReply::Boolean(true));
        handle.stop();
    }

    #[test]
    fn retry_client_reconnects_across_a_server_restart() {
        let (service, handle) = pods_server();
        let addr = handle.addr().to_string();
        let mut rc = RetryClient::new(&addr, "riley");
        let ack = rc.submit_text("+ submitted(77)").unwrap().unwrap();
        assert!(ack.version >= 1);
        assert_eq!(rc.query("rejected(77)").unwrap().unwrap(), QueryReply::Boolean(true));
        // Kill the listener out from under the client; rebind on the same
        // port and make sure the client re-handshakes and keeps its seq.
        handle.stop();
        let handle = serve(Arc::clone(&service), &addr).expect("rebind same port");
        let ack2 = rc.submit_text("+ accepted(77)").unwrap().unwrap();
        assert!(ack2.version > ack.version);
        assert_eq!(rc.last_seq(), 2, "each submit takes exactly one sequence number");
        assert_eq!(rc.query("rejected(77)").unwrap().unwrap(), QueryReply::Boolean(false));
        // Deterministic rejections surface immediately, not as retries.
        let reason = rc.submit_text("- ghost(9)").unwrap().unwrap_err();
        assert!(reason.starts_with("code=not-asserted"), "{reason}");
        handle.stop();
    }

    #[test]
    fn retryable_code_classification() {
        assert!(is_retryable_rejection("code=read-only service degraded"));
        assert!(is_retryable_rejection("code=panicked worker lost"));
        assert!(is_retryable_rejection("code=storage fsync failed"));
        assert!(is_retryable_rejection("code=shutdown closing"));
        assert!(!is_retryable_rejection("code=not-asserted cannot delete"));
        assert!(!is_retryable_rejection("code=unstratified rule"));
        assert!(!is_retryable_rejection("plain parse error"));
    }

    fn pods_cluster(shards: u32) -> (Arc<crate::tenant::Cluster>, ServerHandle) {
        let program = Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap();
        let mut opts = crate::shard::DbOptions::new("cascade");
        opts.shards = shards;
        let cluster =
            crate::tenant::Cluster::new(program, strata_core::StorageSpec::Mem, None, opts)
                .unwrap();
        let handle = serve_cluster(Arc::clone(&cluster), "127.0.0.1:0").expect("bind");
        (cluster, handle)
    }

    #[test]
    fn cluster_connections_bind_and_isolate_databases() {
        let (_cluster, handle) = pods_cluster(1);
        let addr = handle.addr().to_string();
        let mut a = Client::connect(&addr).unwrap();
        // Fresh connections serve the default database.
        assert_eq!(a.query("rejected(1)").unwrap().unwrap(), QueryReply::Boolean(true));
        let stats = a.stats().unwrap().unwrap();
        assert!(stats.contains("db=default"), "{stats}");
        // Create and bind a tenant; its writes never touch default.
        a.db_create("tenant1").unwrap().unwrap();
        a.use_db("tenant1").unwrap().unwrap();
        assert!(a.use_db("ghost").unwrap().is_err(), "unknown database");
        a.submit_text("+ item(1)").unwrap().unwrap();
        a.flush().unwrap().unwrap();
        assert_eq!(a.query("item(1)").unwrap().unwrap(), QueryReply::Boolean(true));
        let stats = a.stats().unwrap().unwrap();
        assert!(stats.contains("db=tenant1"), "{stats}");
        let mut b = Client::connect(&addr).unwrap();
        assert_eq!(b.query("item(1)").unwrap().unwrap(), QueryReply::Boolean(false));
        let listing = b.db_list().unwrap().unwrap();
        assert_eq!(listing.len(), 2, "{listing:?}");
        assert!(listing[0].starts_with("default "), "{listing:?}");
        assert!(listing[1].starts_with("tenant1 "), "{listing:?}");
        // Drop: refused while a is bound, fine once it rebinds away.
        assert!(b.db_drop("tenant1").unwrap().is_err(), "still bound by a");
        a.use_db("default").unwrap().unwrap();
        b.db_drop("tenant1").unwrap().unwrap();
        assert!(b.db_drop("default").unwrap().is_err(), "default is permanent");
        handle.stop();
    }

    #[test]
    fn cluster_serves_sharded_databases_over_the_wire() {
        let (_cluster, handle) = pods_cluster(2);
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let stats = client.stats().unwrap().unwrap();
        assert!(stats.ends_with("db=default shards=2"), "{stats}");
        // Writes to both components, read-your-writes via the encoded
        // version token.
        let ack = client.submit_text("+ accepted(1)").unwrap().unwrap();
        assert_eq!(
            client.query_at(ack.version, "rejected(1)").unwrap().unwrap(),
            QueryReply::Boolean(false)
        );
        // Sequenced submits dedup per shard.
        client.hello("carol").unwrap().unwrap();
        let first = client.roundtrip("submit seq=1 + submitted(9)").unwrap().unwrap();
        let retry = client.roundtrip("submit seq=1 + submitted(9)").unwrap().unwrap();
        assert_eq!(first, retry, "replayed ack must be byte-identical");
        // A rule update is a global barrier; the database keeps answering.
        client.submit_text("+ flagged(X) :- rejected(X)").unwrap().unwrap();
        let v = client.flush().unwrap().unwrap();
        assert_eq!(client.query_at(v, "flagged(9)").unwrap().unwrap(), QueryReply::Boolean(true));
        // Deterministic rejections travel with their codes intact.
        let err = client.submit_text("- ghost(1)").unwrap().unwrap_err();
        assert!(err.starts_with("code=not-asserted"), "{err}");
        client.quit().unwrap();
        handle.stop();
    }

    #[test]
    fn single_server_refuses_database_verbs() {
        let (_service, handle) = pods_server();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        for reply in [
            client.use_db("other").unwrap(),
            client.db_create("other").unwrap(),
            client.db_drop("other").unwrap(),
        ] {
            let err = reply.unwrap_err();
            assert!(err.contains("single-database"), "{err}");
        }
        assert!(client.db_list().unwrap().is_err());
        client.quit().unwrap();
        handle.stop();
    }

    #[test]
    fn read_timeout_unwedges_a_hung_server() {
        // A listener that accepts and then never answers: the classic hung
        // server. A bounded client must surface a timed-out read instead
        // of blocking forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
            drop(stream);
        });
        let t0 = std::time::Instant::now();
        let mut client = Client::connect_timeout(&addr.to_string(), Duration::from_millis(50))
            .expect("connect succeeds; it is the reads that hang");
        let err = client.query("p(X)").expect_err("read must time out");
        assert!(matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut), "{err}");
        assert!(t0.elapsed() < Duration::from_millis(450), "must not wait out the server");
        hold.join().unwrap();
        // Against a live server the timeout client works normally.
        let (_service, handle) = pods_server();
        let mut client =
            Client::connect_timeout(&handle.addr().to_string(), Duration::from_secs(5)).unwrap();
        assert_eq!(client.query("rejected(1)").unwrap().unwrap(), QueryReply::Boolean(true));
        client.quit().unwrap();
        handle.stop();
    }
}
