//! The `std::net` TCP front-end and its blocking client.
//!
//! [`serve`] binds a listener and spawns one acceptor thread plus one
//! thread per connection; every connection speaks the [`crate::protocol`]
//! line protocol against a shared [`Service`]. Group commit happens across
//! connections: ten clients submitting concurrently land in the same
//! coalescing queue and share fsyncs.
//!
//! [`Client`] is the matching blocking client: one request line out, read
//! lines until the `ok`/`err` terminator.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use strata_core::Update;
use strata_datalog::query::render_row;

use crate::protocol::{self, Request};
use crate::service::Service;

/// A running TCP front-end. Dropping (or [`ServerHandle::stop`]) unbinds
/// the listener; connections already accepted finish their current
/// request-response exchange on their own threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with a `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the acceptor thread.
    pub fn stop(mut self) {
        self.shutdown_acceptor();
    }

    fn shutdown_acceptor(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's `accept` with a throwaway connection. A
        // wildcard bind (0.0.0.0 / ::) is not a connectable destination
        // everywhere, so aim the poke at loopback on the bound port.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            target.set_ip(match target {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect(target);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_acceptor();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:7171`, or port `0` for an ephemeral one)
/// and serves `service` until the handle is stopped or dropped.
pub fn serve(service: Arc<Service>, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new().name("strata-accept".into()).spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&service);
                let _ = std::thread::Builder::new()
                    .name("strata-conn".into())
                    .spawn(move || serve_connection(stream, &service));
            }
        })?
    };
    Ok(ServerHandle { addr, shutdown, acceptor: Some(acceptor) })
}

/// One connection's request loop: read a line, answer with `row*` lines
/// and exactly one `ok`/`err` terminator. Returns on `quit`, EOF, or any
/// I/O error.
fn serve_connection(stream: TcpStream, service: &Service) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF: client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        match protocol::parse_request(&line) {
            Err(e) => writeln!(writer, "err {e}")?,
            Ok(Request::Quit) => {
                writeln!(writer, "ok bye")?;
                return Ok(());
            }
            Ok(Request::Submit(update)) => {
                // Wait for the group decision before answering: `ok` means
                // durably committed (for a durable engine). Concurrency
                // comes from many connections sharing the queue, not from
                // pipelining within one.
                let outcome = service.apply(update);
                writeln!(writer, "{}", protocol::render_outcome(&outcome))?;
            }
            Ok(Request::Flush) => {
                service.flush();
                writeln!(writer, "ok flushed")?;
            }
            Ok(Request::Stats) => {
                writeln!(writer, "{}", protocol::render_stats(&service.stats()))?;
            }
            Ok(Request::Query(q)) => {
                if q.is_boolean() {
                    let holds = service.with_engine(|e| q.holds(e.model()));
                    writeln!(writer, "ok {holds}")?;
                } else {
                    let rows = service.with_engine(|e| q.eval(e.model()));
                    for row in &rows {
                        writeln!(writer, "row {}", render_row(&q, row))?;
                    }
                    writeln!(writer, "ok {}", rows.len())?;
                }
            }
        }
        writer.flush()?;
    }
}

/// What a query returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryReply {
    /// A boolean query's truth value.
    Boolean(bool),
    /// A binding query's rendered rows.
    Rows(Vec<String>),
}

/// The blocking client for the line protocol.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// Sends one request line, collecting `row` lines until the
    /// terminator. Returns `(rows, terminator-without-prefix)`; an `err`
    /// terminator becomes `Err(reason)` in the outer protocol result.
    fn roundtrip(&mut self, line: &str) -> io::Result<Result<(Vec<String>, String), String>> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut rows = Vec::new();
        loop {
            let mut reply = String::new();
            if self.reader.read_line(&mut reply)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            let reply = reply.trim_end();
            if let Some(rest) = reply.strip_prefix("row ") {
                rows.push(rest.to_string());
            } else if let Some(rest) = reply.strip_prefix("ok") {
                return Ok(Ok((rows, rest.trim().to_string())));
            } else if let Some(rest) = reply.strip_prefix("err") {
                return Ok(Err(rest.trim().to_string()));
            } else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed response line: {reply}"),
                ));
            }
        }
    }

    /// Submits one update; `Ok(group)` on acceptance, `Err(reason)` on
    /// rejection.
    pub fn submit(&mut self, update: &Update) -> io::Result<Result<u64, String>> {
        self.submit_text(&protocol::render_update(update))
    }

    /// Submits raw update text (`+ p(1)`).
    pub fn submit_text(&mut self, update: &str) -> io::Result<Result<u64, String>> {
        Ok(self
            .roundtrip(&format!("submit {update}"))?
            .map(|(_, tail)| tail.strip_prefix("group=").and_then(|g| g.parse().ok()).unwrap_or(0)))
    }

    /// Evaluates a query.
    pub fn query(&mut self, body: &str) -> io::Result<Result<QueryReply, String>> {
        Ok(self.roundtrip(&format!("query {body}"))?.map(|(rows, tail)| match tail.as_str() {
            "true" => QueryReply::Boolean(true),
            "false" => QueryReply::Boolean(false),
            _ => QueryReply::Rows(rows),
        }))
    }

    /// Blocks until everything submitted before (on any connection) is
    /// decided.
    pub fn flush(&mut self) -> io::Result<Result<(), String>> {
        Ok(self.roundtrip("flush")?.map(|_| ()))
    }

    /// The server's stats line (`key=value` pairs).
    pub fn stats(&mut self) -> io::Result<Result<String, String>> {
        Ok(self.roundtrip("stats")?.map(|(_, tail)| tail))
    }

    /// One stats field, parsed.
    pub fn stats_field(&mut self, key: &str) -> io::Result<Option<u64>> {
        let line = match self.stats()? {
            Ok(line) => line,
            Err(_) => return Ok(None),
        };
        Ok(line.split_whitespace().find_map(|kv| {
            kv.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix('='))
                .and_then(|v| v.parse().ok())
        }))
    }

    /// Says goodbye and closes the connection.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.roundtrip("quit")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IngestConfig;
    use strata_core::registry::EngineRegistry;
    use strata_datalog::{Fact, Program};

    fn pods_server() -> (Arc<Service>, ServerHandle) {
        let program = Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap();
        let engine = EngineRegistry::standard().build("cascade", program).unwrap();
        let service = Arc::new(Service::start(engine, IngestConfig::default()));
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        (service, handle)
    }

    #[test]
    fn submit_query_flush_stats_roundtrip() {
        let (_service, handle) = pods_server();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        assert_eq!(client.query("rejected(1)").unwrap().unwrap(), QueryReply::Boolean(true));
        let group = client
            .submit(&Update::InsertFact(Fact::parse("accepted(1)").unwrap()))
            .unwrap()
            .unwrap();
        assert!(group >= 1);
        assert_eq!(client.query("rejected(1)").unwrap().unwrap(), QueryReply::Boolean(false));
        let reply = client.query("rejected(X)").unwrap().unwrap();
        assert_eq!(reply, QueryReply::Rows(vec![]), "everyone is accepted or rejected(2)? no");
        client.flush().unwrap().unwrap();
        assert_eq!(client.stats_field("accepted").unwrap(), Some(1));
        client.quit().unwrap();
        handle.stop();
    }

    #[test]
    fn rejections_travel_as_err_lines() {
        let (_service, handle) = pods_server();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let err = client.submit_text("- ghost(1)").unwrap().unwrap_err();
        assert!(err.contains("not an asserted fact"), "{err}");
        let err = client.submit_text("nonsense").unwrap().unwrap_err();
        assert!(err.contains("+"), "{err}");
        client.quit().unwrap();
        handle.stop();
    }

    #[test]
    fn two_clients_share_one_database() {
        let (_service, handle) = pods_server();
        let addr = handle.addr().to_string();
        let mut a = Client::connect(&addr).unwrap();
        let mut b = Client::connect(&addr).unwrap();
        a.submit_text("+ submitted(9)").unwrap().unwrap();
        assert_eq!(b.query("rejected(9)").unwrap().unwrap(), QueryReply::Boolean(true));
        b.submit_text("+ accepted(9)").unwrap().unwrap();
        assert_eq!(a.query("rejected(9)").unwrap().unwrap(), QueryReply::Boolean(false));
        handle.stop();
    }
}
