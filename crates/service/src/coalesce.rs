//! The coalescing decision layer: per-request oracle decisions + net batch.
//!
//! [`Coalescer::plan_group`] takes a group of fact updates (in submission
//! order) and answers, without touching the engine: which requests would
//! the per-update oracle accept, and what is the smallest batch whose
//! single `apply_all` leaves the engine exactly where the oracle would?
//!
//! The decision rules mirror the engines' validation *exactly* (the
//! differential tests hold the two to equality, error values included):
//!
//! * insert of a fact — accepted, including duplicates (a no-op for the
//!   oracle), unless its arity contradicts the relation's recorded arity
//!   (`DatalogError::ArityMismatch`, as `Program::assert_fact` raises);
//! * delete of a fact — accepted iff the fact is asserted at that point in
//!   the stream ([`MaintenanceError::NotAsserted`] otherwise);
//! * rule updates never reach `plan_group`: they are group **barriers**
//!   the service applies directly through the engine (stratification
//!   checking belongs to the engines). [`Coalescer::precheck_rule`] covers
//!   the one part the engine cannot see — arities recorded by updates that
//!   coalesced away before the engine ever saw them.
//!
//! ## Sticky arities
//!
//! `Program` records a relation's arity on first mention and keeps it even
//! if every fact of the relation is later retracted — so the oracle
//! rejects `p(1,2)` after `+p(1) -p(1)` although its program no longer
//! holds any `p` fact. A coalesced engine never sees that transient
//! insert, so the coalescer keeps its own append-only arity overlay of
//! everything the *stream* has mentioned, consulted before the engine's
//! program. The overlay only ever grows, mirroring `Program`'s behavior.

use rustc_hash::FxHashMap;
use strata_core::engine::normalize;
use strata_core::{MaintenanceError, Update};
use strata_datalog::error::DatalogError;
use strata_datalog::{Fact, Program, Rule, Symbol};

/// The oracle decision for one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// The per-update oracle would accept this request.
    Accepted,
    /// The per-update oracle would reject it with exactly this error.
    Rejected(MaintenanceError),
}

impl Decision {
    /// Whether this is [`Decision::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, Decision::Accepted)
    }
}

/// What [`Coalescer::plan_group`] computed for one group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupPlan {
    /// Per-request decisions, aligned with the input updates.
    pub decisions: Vec<Decision>,
    /// The net batch: one update per fact whose asserted-state differs
    /// between group entry and group exit, in first-touch order. Applying
    /// it as one `apply_all` reproduces the oracle's post-group state.
    pub batch: Vec<Update>,
    /// Accepted requests that left no trace in the batch — duplicate
    /// inserts, re-deletes, and insert/delete pairs that cancelled. The
    /// throughput the coalescer won before the engine ran at all.
    pub coalesced: usize,
    /// Relations whose arity this group recorded into the overlay for the
    /// first time. If the group's commit fails at the storage layer — so
    /// every request is rejected and the oracle history never happened —
    /// pass these to [`Coalescer::forget_relations`] to unwind them.
    pub new_relations: Vec<Symbol>,
}

/// The decision-and-coalescing state for one ingest session.
///
/// One coalescer lives in the service worker for the engine's lifetime;
/// its arity overlay accumulates across groups (see module docs).
#[derive(Debug, Default)]
pub struct Coalescer {
    /// Stream-recorded arities the engine may not know about (sticky, like
    /// `Program`'s own arity map).
    arities: FxHashMap<Symbol, usize>,
}

impl Coalescer {
    /// A fresh coalescer with no stream history.
    pub fn new() -> Coalescer {
        Coalescer::default()
    }

    /// The recorded arity of `rel`: the stream overlay first, then the
    /// engine's program.
    fn arity(&self, program: &Program, rel: Symbol) -> Option<usize> {
        self.arities.get(&rel).copied().or_else(|| program.arity_of(rel))
    }

    /// Checks one atom against the recorded arity, recording it if new —
    /// the exact behavior of `Program::check_arity`. A first-time
    /// recording is also pushed onto `recorded`, so a caller whose commit
    /// later fails can unwind it.
    fn check_arity(
        &mut self,
        program: &Program,
        rel: Symbol,
        found: usize,
        recorded: &mut Vec<Symbol>,
    ) -> Result<(), MaintenanceError> {
        match self.arity(program, rel) {
            Some(expected) if expected != found => {
                Err(MaintenanceError::Datalog(DatalogError::ArityMismatch { rel, expected, found }))
            }
            Some(_) => Ok(()),
            None => {
                self.arities.insert(rel, found);
                recorded.push(rel);
                Ok(())
            }
        }
    }

    /// Unwinds overlay recordings from a group whose commit failed (its
    /// requests were all rejected, so the oracle history they would have
    /// created never happened).
    pub fn forget_relations(&mut self, rels: &[Symbol]) {
        for rel in rels {
            self.arities.remove(rel);
        }
    }

    /// Plans one group of **fact** updates (rule updates are barriers and
    /// must not appear here; fact-clause rule updates are normalized to
    /// fact updates first).
    ///
    /// # Panics
    /// If a (non-fact-clause) rule update is passed — the queue layer
    /// guarantees groups are fact-only.
    pub fn plan_group<'a>(
        &mut self,
        program: &Program,
        updates: impl IntoIterator<Item = &'a Update>,
    ) -> GroupPlan {
        // The group-local overlay: facts whose asserted-state the group
        // has (so far) changed relative to the engine, plus first-touch
        // order for a deterministic batch.
        let mut overlay: FxHashMap<Fact, bool> = FxHashMap::default();
        let mut order: Vec<Fact> = Vec::new();
        let mut decisions = Vec::new();
        let mut new_relations = Vec::new();
        let mut accepted = 0usize;
        for u in updates {
            match normalize(u) {
                Update::InsertFact(f) => {
                    if let Err(e) = self.check_arity(program, f.rel, f.arity(), &mut new_relations)
                    {
                        decisions.push(Decision::Rejected(e));
                        continue;
                    }
                    let asserted =
                        overlay.get(&f).copied().unwrap_or_else(|| program.is_asserted(&f));
                    if !asserted {
                        if !overlay.contains_key(&f) {
                            order.push(f.clone());
                        }
                        overlay.insert(f, true);
                    }
                    decisions.push(Decision::Accepted);
                    accepted += 1;
                }
                Update::DeleteFact(f) => {
                    let asserted =
                        overlay.get(&f).copied().unwrap_or_else(|| program.is_asserted(&f));
                    if !asserted {
                        decisions.push(Decision::Rejected(MaintenanceError::NotAsserted(f)));
                        continue;
                    }
                    if !overlay.contains_key(&f) {
                        order.push(f.clone());
                    }
                    overlay.insert(f, false);
                    decisions.push(Decision::Accepted);
                    accepted += 1;
                }
                Update::InsertRule(_) | Update::DeleteRule(_) => {
                    panic!("rule updates are group barriers; plan_group takes fact updates only")
                }
            }
        }
        let mut batch = Vec::new();
        for f in order {
            let target = overlay[&f];
            if target != program.is_asserted(&f) {
                batch.push(if target { Update::InsertFact(f) } else { Update::DeleteFact(f) });
            }
        }
        let coalesced = accepted - batch.len();
        GroupPlan { decisions, batch, coalesced, new_relations }
    }

    /// Pre-checks a rule insertion against stream-recorded arities before
    /// it is handed to the engine, mirroring `Program::add_rule`'s
    /// check-and-record order (head first, then body literals): on a
    /// mismatch the atoms *before* the offending one stay recorded, just
    /// as the oracle's program would keep them.
    ///
    /// `Ok` means the engine sees at least the arities the overlay knows
    /// (its own map is a subset), so passing the rule through cannot
    /// produce an arity decision the oracle would not.
    pub fn precheck_rule(
        &mut self,
        program: &Program,
        rule: &Rule,
    ) -> Result<(), MaintenanceError> {
        // Recordings here are permanent even on failure: the oracle's own
        // `add_rule` keeps the arity prefix of a rejected rule too.
        let mut recorded = Vec::new();
        self.check_arity(program, rule.head.rel, rule.head.arity(), &mut recorded)?;
        for lit in &rule.body {
            self.check_arity(program, lit.atom.rel, lit.atom.arity(), &mut recorded)?;
        }
        Ok(())
    }

    /// Number of relations in the stream-recorded arity overlay.
    pub fn recorded_relations(&self) -> usize {
        self.arities.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(s: &str) -> Fact {
        Fact::parse(s).unwrap()
    }

    fn ins(s: &str) -> Update {
        Update::InsertFact(fact(s))
    }

    fn del(s: &str) -> Update {
        Update::DeleteFact(fact(s))
    }

    fn pods() -> Program {
        Program::parse(
            "submitted(1). submitted(2). accepted(2).
             rejected(X) :- submitted(X), !accepted(X).",
        )
        .unwrap()
    }

    #[test]
    fn opposing_updates_cancel_and_repeats_dedup() {
        let program = pods();
        let mut c = Coalescer::new();
        let plan = c.plan_group(
            &program,
            &[ins("accepted(1)"), ins("accepted(1)"), del("accepted(1)"), ins("submitted(9)")],
        );
        assert!(plan.decisions.iter().all(Decision::is_accepted), "{:?}", plan.decisions);
        assert_eq!(plan.batch, vec![ins("submitted(9)")]);
        assert_eq!(plan.coalesced, 3);
    }

    #[test]
    fn delete_then_reinsert_of_preexisting_fact_nets_out() {
        let program = pods();
        let mut c = Coalescer::new();
        let plan = c.plan_group(&program, &[del("accepted(2)"), ins("accepted(2)")]);
        assert!(plan.decisions.iter().all(Decision::is_accepted));
        assert!(plan.batch.is_empty(), "{:?}", plan.batch);
        assert_eq!(plan.coalesced, 2);
    }

    #[test]
    fn deletes_of_unasserted_facts_reject_with_the_oracle_error() {
        let program = pods();
        let mut c = Coalescer::new();
        let plan = c.plan_group(&program, &[del("ghost(1)"), ins("ghost(1)"), del("ghost(1)")]);
        assert_eq!(
            plan.decisions[0],
            Decision::Rejected(MaintenanceError::NotAsserted(fact("ghost(1)")))
        );
        assert!(plan.decisions[1].is_accepted(), "insert after failed delete");
        assert!(plan.decisions[2].is_accepted(), "delete after pending insert");
        assert!(plan.batch.is_empty(), "transient ghost(1) cancels: {:?}", plan.batch);
    }

    #[test]
    fn duplicate_insert_of_existing_fact_is_accepted_noop() {
        let program = pods();
        let mut c = Coalescer::new();
        let plan = c.plan_group(&program, &[ins("submitted(1)")]);
        assert_eq!(plan.decisions, vec![Decision::Accepted]);
        assert!(plan.batch.is_empty());
        assert_eq!(plan.coalesced, 1);
    }

    #[test]
    fn arity_mismatch_rejects_like_the_oracle() {
        let program = pods();
        let mut c = Coalescer::new();
        let plan = c.plan_group(&program, &[ins("submitted(1, 2)")]);
        let Decision::Rejected(MaintenanceError::Datalog(DatalogError::ArityMismatch {
            expected,
            found,
            ..
        })) = &plan.decisions[0]
        else {
            panic!("expected arity rejection, got {:?}", plan.decisions[0]);
        };
        assert_eq!((*expected, *found), (1, 2));
        assert!(plan.batch.is_empty());
    }

    #[test]
    fn arities_are_sticky_across_groups_even_for_coalesced_facts() {
        // +p(1) -p(1) coalesces to nothing, so the engine never learns p/1;
        // the overlay must still reject a later p(1,2) like the oracle.
        let program = pods();
        let mut c = Coalescer::new();
        let plan = c.plan_group(&program, &[ins("p(1)"), del("p(1)")]);
        assert!(plan.batch.is_empty());
        let plan = c.plan_group(&program, &[ins("p(1, 2)")]);
        assert!(
            matches!(&plan.decisions[0], Decision::Rejected(MaintenanceError::Datalog(_))),
            "{:?}",
            plan.decisions[0]
        );
        assert_eq!(c.recorded_relations(), 1);
    }

    #[test]
    fn rule_precheck_records_prefix_arities_on_failure() {
        let program = pods();
        let mut c = Coalescer::new();
        // h and p are new; submitted/2 contradicts submitted/1.
        let rule = Rule::parse("h(X) :- p(X), submitted(X, X), q(X).").unwrap();
        let err = c.precheck_rule(&program, &rule).unwrap_err();
        assert!(matches!(err, MaintenanceError::Datalog(DatalogError::ArityMismatch { .. })));
        // h/1 and p/1 were recorded before the failure, q was not — the
        // oracle's program would keep exactly that prefix.
        let plan = c.plan_group(&program, &[ins("h(1, 2)"), ins("q(1, 2)")]);
        assert!(matches!(&plan.decisions[0], Decision::Rejected(_)), "h/1 is sticky");
        assert!(plan.decisions[1].is_accepted(), "q was never recorded");
    }

    #[test]
    fn fact_clause_rule_updates_are_normalized_to_facts() {
        let program = pods();
        let mut c = Coalescer::new();
        let rule = Rule::parse("submitted(9).").unwrap();
        let plan = c.plan_group(&program, &[Update::InsertRule(rule)]);
        assert_eq!(plan.decisions, vec![Decision::Accepted]);
        assert_eq!(plan.batch, vec![ins("submitted(9)")]);
    }

    #[test]
    fn forget_relations_unwinds_failed_group_recordings() {
        let program = pods();
        let mut c = Coalescer::new();
        let plan = c.plan_group(&program, &[ins("p(1)"), ins("q(2)")]);
        assert_eq!(plan.new_relations.len(), 2);
        c.forget_relations(&plan.new_relations);
        assert_eq!(c.recorded_relations(), 0);
        // After unwinding (the group's commit failed, its history never
        // happened), a different arity is acceptable again — as it would
        // be to the oracle, which never saw the rejected requests.
        let plan = c.plan_group(&program, &[ins("p(1, 2)")]);
        assert!(plan.decisions[0].is_accepted(), "{:?}", plan.decisions[0]);
        // Pre-existing relations are never listed as new.
        let plan = c.plan_group(&program, &[ins("submitted(9)")]);
        assert!(plan.new_relations.is_empty());
    }

    #[test]
    #[should_panic(expected = "group barriers")]
    fn rule_updates_panic_in_plan_group() {
        let mut c = Coalescer::new();
        let rule = Rule::parse("a(X) :- b(X).").unwrap();
        c.plan_group(&pods(), &[Update::InsertRule(rule)]);
    }
}
