//! # strata-service
//!
//! The concurrent ingest layer: many clients stream belief-revision
//! requests at one maintained stratified database, and the service turns
//! that stream into a small number of engine transactions.
//!
//! The paper's maintenance problem is inherently transactional — each
//! update is a revision the database may accept or reject — and the
//! engines already expose the batch seam
//! ([`strata_core::MaintenanceEngine::apply_all`]): one batch is one
//! atomic transaction, and the cascade engine walks the strata once for a
//! whole batch. This crate supplies what was missing between "many
//! clients" and that seam:
//!
//! * [`coalesce::Coalescer`] — the pure decision layer. Given the engine's
//!   program and a group of fact updates, it predicts each request's
//!   accept/reject decision exactly as the per-update oracle would
//!   (duplicate inserts accepted as no-ops, deletes of unasserted facts
//!   rejected, arity mismatches rejected — with the same error values),
//!   and emits the **net batch**: opposing insert/delete of the same fact
//!   cancel, repeats dedup.
//! * [`queue::IngestQueue`] — the multi-producer queue. Producers block
//!   only on backpressure ([`IngestConfig::max_pending`]); the worker cuts
//!   groups at a count watermark ([`IngestConfig::max_group`]) or a
//!   latency watermark ([`IngestConfig::max_delay`]), whichever trips
//!   first. Rule updates and flushes are **barriers**: they cut the group
//!   and travel alone.
//! * [`service::Service`] — the single worker that owns a registry-built
//!   engine (any strategy, in-memory or durable). It drains the queue,
//!   commits each group via one `apply_all` — for a durable engine that is
//!   one WAL transaction and **one fsync per group** (group commit) — and
//!   routes per-request decisions back through completion handles
//!   ([`queue::SubmitHandle`]).
//! * [`net`] — a `std::net` TCP front-end speaking the line protocol of
//!   [`protocol`] (`submit` / `query` / `flush` / `stats` / `quit`) over
//!   the existing `Display`/parse round-trip — with optional request tags
//!   for pipelined, out-of-order responses on one connection — plus the
//!   matching blocking [`net::Client`].
//!
//! ## The snapshot consistency guarantee (MVCC reads)
//!
//! The worker publishes an immutable [`service::VersionedSnapshot`] of the
//! committed model after every engine transaction — **before** any of that
//! group's outcomes are delivered — and queries and stats evaluate against
//! the published snapshot with no engine access at all:
//!
//! * **Reads never block behind writes.** A query costs one `Arc` clone of
//!   the latest snapshot; it proceeds at full speed while the worker holds
//!   the engine mutex saturating an arbitrarily large group commit.
//! * **Reads see a committed model.** Every answer is computed against the
//!   model as of some commit version — never a half-applied revision. A
//!   plain `query` sees the latest published version, which may trail the
//!   commit a concurrent writer is acknowledging by a moment.
//! * **`@version` gives read-your-writes.** Every acknowledgment carries
//!   its commit version; `query @<version>` (or
//!   [`service::Service::snapshot_at`]) blocks — bounded by
//!   [`IngestConfig::read_wait`] — until the published snapshot reaches
//!   that version, so a client that pins the version from its own ack is
//!   guaranteed to observe its own write, on any connection.
//!
//! ## The differential guarantee
//!
//! For any interleaved multi-client stream, the service reports exactly
//! the per-request accept/reject decisions (error values included) of the
//! per-update oracle — the same stream applied one update at a time in
//! queue order — and lands on the same final program and model. The
//! belief state agrees in **canonical form**: support dumps coincide
//! after canonicalization (the store's checkpoint normal form — what a
//! fresh engine believes from the final program). Raw dump *content* is a
//! sound approximation whose exact shape is update-path-dependent for the
//! support-bearing engines (the cascade attaches a rule pointer only when
//! a firing first derives a fact; §4.2 keeps one arbitrary valid witness
//! pair), so two paths to the same belief state may legitimately hold
//! different, equally sound dumps. Durability is exact, not canonical: a
//! kill-and-reopen replays the service's own transactions and reproduces
//! its live model *and* support dump byte for byte. All of this is
//! verified by `tests/service_coalescing.rs` (proptest over engines ×
//! streams × group sizes, durable included) and `tests/service_ingest.rs`
//! (multi-client integration with kill-and-reopen).
//!
//! ## Failure guarantees (the supervised service)
//!
//! Started via [`service::Service::start_supervised`], the worker is a
//! supervision loop, and the service makes these promises under faults
//! (worker panics, WAL write/fsync failures, storage corruption):
//!
//! * **A failure costs exactly the in-flight group.** Each group commits
//!   under `catch_unwind`; a panic or storage error rejects every
//!   *undecided* request of that group with a typed, retryable error
//!   ([`strata_core::MaintenanceError::Panicked`] /
//!   [`strata_core::MaintenanceError::Storage`] — `err code=panicked` /
//!   `err code=storage` on the wire). Requests already acked keep their
//!   acks; requests in other groups are untouched.
//! * **Acked implies committed.** Outcomes are delivered only after the
//!   group's transaction commits (durable engines: after the fsync) and
//!   the snapshot publishes, so no acknowledged update can be lost by a
//!   subsequent crash, restart, or degradation. The converse is *not*
//!   promised: a fault between commit and delivery may reject requests
//!   whose group did commit — the ambiguous window idempotent retries
//!   exist for.
//! * **Self-healing is bounded and verified.** After a failure the
//!   supervisor rebuilds the engine through its
//!   [`service::EngineRebuild`] (for a durable engine: reopen and replay
//!   the WAL), proves the store writable with an empty probing
//!   transaction, swaps the fresh engine in, and re-publishes a bumped
//!   snapshot version — at most [`service::SupervisorConfig::max_restarts`]
//!   times per failure, with doubling backoff.
//! * **Degradation is read-only, never dead.** When healing is exhausted
//!   (or impossible — no rebuild source), the service enters read-only
//!   mode: snapshot queries, versioned reads, stats, and flush barriers
//!   keep serving from the last committed snapshot; submits reject with
//!   `err code=read-only` (retryable); a periodic probe re-arms writes
//!   the moment the store recovers. Reads never block on the failure.
//! * **Retries are exactly-once.** A client that declares an id (`client
//!   <id>`) and sequences its submits (`submit seq=<n>`) may retry any
//!   ambiguous failure verbatim: the per-client dedup window
//!   ([`IngestConfig::dedup_window`]) replays decided outcomes instead of
//!   re-applying updates, and re-executes only decided *retryable*
//!   rejections. [`net::RetryClient`] packages this loop (reconnect,
//!   exponential backoff, jitter).
//!
//! All of this is exercised by `tests/service_chaos.rs` (seed ×
//! fault-point matrix over the real WAL with kill-and-reopen oracles) and
//! `tests/service_retry.rs` (a lossy TCP proxy that kills connections
//! before and after commit).
//!
//! ## Observability
//!
//! The whole pipeline is instrumented through [`strata_obs`] (zero
//! dependencies, lock-free record path): every submit gets a trace id at
//! enqueue, carried through queue → coalesce → apply → WAL fsync →
//! snapshot publish, and each drained group seals one
//! [`strata_obs::GroupSpan`] — **before** its outcomes are delivered, so
//! an observed ack implies the span is already in the trace ring. The
//! group pipeline feeds latency histograms (`strata_group_commit_us`,
//! `strata_group_coalesce_us`, `strata_group_apply_us`,
//! `strata_snapshot_publish_us`, `strata_queue_wait_us`,
//! `strata_group_size`), the queue keeps a depth gauge
//! (`strata_queue_depth`) and backpressure counter
//! (`strata_queue_blocked_total`), and the supervisor emits typed events
//! (panic caught, heal attempt, healed, read-only enter/exit) plus
//! restart/backoff metrics. The wire surface is the `metrics` verb
//! (Prometheus text exposition) and the `trace <n>` verb (recent sealed
//! spans); [`service::Service::fill_registry`] syncs the service-level
//! gauges so `metrics` and `stats` always agree.
//!
//! ```
//! use strata_core::registry::EngineRegistry;
//! use strata_core::Update;
//! use strata_datalog::{Fact, Program};
//! use strata_service::{IngestConfig, Service};
//!
//! let program = Program::parse(
//!     "submitted(1). rejected(X) :- submitted(X), !accepted(X).",
//! ).unwrap();
//! let engine = EngineRegistry::standard().build("cascade", program).unwrap();
//! let service = Service::start(engine, IngestConfig::default());
//! let h = service.submit(Update::InsertFact(Fact::parse("accepted(1)").unwrap()));
//! assert!(h.wait().is_accepted());
//! service.flush();
//! assert!(service.with_engine(|e| !e.model().contains_parsed("rejected(1)")));
//! let engine = service.shutdown();
//! ```

pub mod coalesce;
pub mod net;
pub mod protocol;
pub mod queue;
pub mod service;
pub mod shard;
pub mod tenant;

use std::time::Duration;

pub use coalesce::{Coalescer, Decision, GroupPlan};
pub use net::{Ack, Client, QueryReply, RetryClient, ServerHandle, ShutdownFlag};
pub use queue::{IngestQueue, Outcome, SubmitHandle};
pub use service::{EngineRebuild, Service, ServiceStats, SupervisorConfig, VersionedSnapshot};
pub use shard::{DbOptions, ShardHandle, ShardPlan, ShardedDb, ShardedSnapshot};
pub use tenant::{Cluster, DbInfo, WorkerBudget, DEFAULT_DB};

/// Group-cutting and backpressure knobs for the ingest queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestConfig {
    /// Count watermark: a group is cut as soon as this many requests are
    /// pending. Larger groups amortize the per-transaction fsync further
    /// but raise the latency of the first request in the group.
    pub max_group: usize,
    /// Latency watermark: a partial group is cut once its oldest request
    /// has waited this long, so a trickle of traffic is never starved
    /// waiting for a full group.
    pub max_delay: Duration,
    /// Backpressure bound: `submit` blocks while this many requests are
    /// pending, so producers cannot outrun the worker without bound.
    pub max_pending: usize,
    /// Upper bound on how long a versioned read
    /// ([`Service::snapshot_at`], the protocol's `query @<version>`) waits
    /// for the published snapshot to reach the requested version before
    /// erroring, so a read for a version that never commits cannot wedge a
    /// reader forever.
    pub read_wait: Duration,
    /// Per-client idempotency window: how many recent `(client, seq)`
    /// submissions the service remembers for duplicate detection
    /// ([`Service::submit_dedup`], the protocol's `client` / `submit
    /// seq=<n>` forms). A retry whose first attempt was already decided
    /// replays the recorded outcome instead of re-applying the update.
    pub dedup_window: usize,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            max_group: 64,
            max_delay: Duration::from_millis(2),
            max_pending: 8192,
            read_wait: Duration::from_secs(5),
            dedup_window: 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = IngestConfig::default();
        assert!(c.max_group >= 2, "grouping must be able to group");
        assert!(c.max_pending >= c.max_group, "backpressure must admit a full group");
        assert!(c.max_delay > Duration::ZERO);
    }
}
