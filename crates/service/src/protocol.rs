//! The line-oriented text protocol of the TCP front-end.
//!
//! Requests and responses are single lines of UTF-8, newline-terminated;
//! fact, rule, and query text rides the crate's existing `Display`/parse
//! round-trip (symbols are quoted on write, so arbitrary names survive
//! the wire).
//!
//! ## Grammar
//!
//! ```text
//! request  ::= tag? verb
//! tag      ::= "#" token SP                   -- client-chosen request id
//! verb     ::= "submit" SP seq? update
//!            | "query" SP at? body
//!            | "client" SP token              -- declare a client id
//!            | "trace" (SP n)?                -- last n group spans (16)
//!            | "use" SP name                  -- bind this connection to a database
//!            | "db" SP ("create" SP name | "drop" SP name | "list")
//!            | "flush" | "compact" | "stats" | "metrics" | "quit" | "shutdown"
//! seq      ::= "seq=" n SP                    -- idempotency token
//! at       ::= "@" version SP                 -- read-your-writes pin
//! update   ::= ("+" | "-") SP? clause        -- insert | delete
//! clause   ::= fact | rule                    -- `p(1)` or `p(X) :- q(X).`
//! body     ::= literal ("," literal)*         -- `rejected(X), !late(X)`
//! ```
//!
//! ## Responses
//!
//! Every request ends with exactly one terminator line starting `ok` or
//! `err`; a `query` may stream `row <bindings>` lines before it. When the
//! request carried a tag, **every** line of its response is prefixed with
//! the same `#tag ` — and responses to differently-tagged requests may
//! interleave in any order (pipelining). Untagged requests are answered in
//! order, untagged.
//!
//! ```text
//! submit → "ok group=<n> version=<v>"  accepted (durable once delivered;
//!        |                             the published snapshot already
//!        |                             carries version <v>)
//!        | "err code=<code> <reason>"  rejected, database unchanged
//! query  → ("row <bindings>")* then "ok <count>"   -- binding queries
//!        | "ok true" | "ok false"                  -- boolean queries
//! client → "ok client=<id>"
//! flush  → "ok flushed version=<v>"
//! compact → "ok compacted seq=<n>"     -- checkpoint the durable store
//!         | "err <reason>"             -- in-memory engine: nothing to compact
//! stats  → "ok <key>=<value> ..."
//! metrics → (exposition line)* then "ok <count>"   -- Prometheus text
//! trace  → ("span <fields>")* then "ok <count>"    -- recent group spans
//! use    → "ok db=<name>"
//! db create → "ok created db=<name>"
//! db drop   → "ok dropped db=<name>"
//! db list   → ("db <name> shards=<n> facts=<m>")* then "ok <count>"
//! quit   → "ok bye"
//! shutdown → "ok shutting down"
//! ```
//!
//! The `use` / `db` verbs exist only on a multi-tenant front-end
//! ([`crate::net::serve_cluster`]); a single-database server answers them
//! with an `err` line. Every connection starts bound to the `default`
//! database; `use <name>` rebinds it, and the binding holds the database
//! open — `db drop` refuses a database any connection is still bound to.
//! On a tenant-bound connection `stats` appends ` db=<name> shards=<n>`
//! after the fixed key sequence (appended, never inserted, so the legacy
//! prefix keeps its wire contract).
//!
//! `metrics` streams the global registry in Prometheus text exposition
//! format (`# TYPE` comments and `name{label} value` samples, sorted by
//! metric name — see [`strata_obs`]); `# TYPE` lines never collide with
//! response tags because a tag is `#token` with **no** space after the
//! hash. `trace <n>` streams the last `n` (default 16) sealed group
//! spans, oldest first, one `span ` line each
//! ([`strata_obs::GroupSpan::render`]).
//!
//! ## Failure surface
//!
//! A rejected submit's `err` line leads with a stable machine-readable
//! `code=<code>` token ([`strata_core::MaintenanceError::code`]). Semantic
//! codes (`not-asserted`, `unknown-rule`, `unstratified`, `datalog`) are
//! deterministic — retrying is pointless. Infrastructure codes (`storage`,
//! `panicked`, `read-only`, `shutdown`) are **retryable**
//! ([`strata_core::MaintenanceError::is_retryable`]); paired with
//! `client <id>` + `submit seq=<n>` the retry is also **idempotent**: the
//! server's dedup window replays an already-decided `(client, seq)` rather
//! than re-applying it.
//!
//! ## Idempotent submission
//!
//! `client <id>` declares the connection's client identity; after it,
//! `submit seq=<n> <update>` routes through the service's dedup window
//! keyed by `(id, n)`. Retries of the same `seq` — after a dropped
//! connection, a worker panic, a read-only window — are safe: an
//! already-acked update is never applied twice.
//!
//! Queries and stats are answered from the published snapshot — they never
//! wait on an in-flight commit. `query @<version> body` first waits
//! (bounded by [`crate::IngestConfig::read_wait`]) until the published
//! snapshot reaches `version`; pinning the version from one's own `submit`
//! ack is read-your-writes on any connection.

use strata_core::Update;
use strata_datalog::{Fact, Query, Rule};

use crate::queue::Outcome;
use crate::service::ServiceStats;

/// A parsed client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Enqueue one update; `seq` (with a declared client id) routes it
    /// through the idempotent dedup window.
    Submit {
        /// The update to enqueue.
        update: Update,
        /// Idempotency token (`submit seq=<n> …`).
        seq: Option<u64>,
    },
    /// Evaluate a query against the published snapshot; `at` pins a
    /// minimum commit version (read-your-writes).
    Query {
        /// The compiled query body.
        query: Query,
        /// Wait until the published snapshot reaches this version first.
        at: Option<u64>,
    },
    /// Declare this connection's client identity for idempotent submits.
    Hello {
        /// The client-chosen id (`client <id>`).
        client: String,
    },
    /// Wait until everything submitted before this point is decided.
    Flush,
    /// Checkpoint the durable store (snapshot + empty the WAL), honoring
    /// the engine's configured snapshot mode.
    Compact,
    /// A stats snapshot.
    Stats,
    /// The global metrics registry in Prometheus text exposition format.
    Metrics,
    /// The last `n` sealed group spans from the trace ring.
    Trace {
        /// How many spans to return (`trace <n>`, default 16).
        n: usize,
    },
    /// Bind this connection to a database (`use <name>`).
    Use {
        /// The database name.
        db: String,
    },
    /// Create a database (`db create <name>`).
    DbCreate {
        /// The database name.
        db: String,
    },
    /// List every database (`db list`).
    DbList,
    /// Drop a database (`db drop <name>`).
    DbDrop {
        /// The database name.
        db: String,
    },
    /// Close the connection.
    Quit,
    /// Ask the server to shut down gracefully (stop accepting, drain the
    /// queue, checkpoint, exit).
    Shutdown,
}

/// Splits an optional `#tag ` prefix off a request or response line.
/// A tag is `#` followed by one non-empty whitespace-free token; the rest
/// of the line follows after whitespace. A lone `#token` with no payload
/// yields an empty rest (an error for requests, caught downstream).
pub fn split_tag(line: &str) -> (Option<&str>, &str) {
    let trimmed = line.trim_start();
    let Some(after_hash) = trimmed.strip_prefix('#') else {
        return (None, line);
    };
    let end = after_hash.find(char::is_whitespace).unwrap_or(after_hash.len());
    if end == 0 {
        return (None, line); // `# ...`: empty tag is no tag
    }
    (Some(&after_hash[..end]), after_hash[end..].trim_start())
}

/// Prefixes `line` with `#tag ` when a tag is present (the response-side
/// inverse of [`split_tag`]).
pub fn render_tagged(tag: Option<&str>, line: &str) -> String {
    match tag {
        Some(t) => format!("#{t} {line}"),
        None => line.to_string(),
    }
}

/// Parses `("+" | "-") clause` into an update — the same surface grammar
/// as the `strata` shell.
pub fn parse_update(line: &str) -> Result<Update, String> {
    let line = line.trim();
    let (insert, rest) = if let Some(rest) = line.strip_prefix('+') {
        (true, rest)
    } else if let Some(rest) = line.strip_prefix('-') {
        (false, rest)
    } else {
        return Err("update must start with `+` (insert) or `-` (delete)".into());
    };
    let src = rest.trim().trim_end_matches('.');
    if let Ok(f) = Fact::parse(src) {
        return Ok(if insert { Update::InsertFact(f) } else { Update::DeleteFact(f) });
    }
    match Rule::parse(&format!("{src}.")) {
        Ok(r) => Ok(if insert { Update::InsertRule(r) } else { Update::DeleteRule(r) }),
        Err(e) => Err(format!("cannot parse `{src}` as fact or rule: {e}")),
    }
}

/// Renders an update back into the `submit` surface form.
pub fn render_update(update: &Update) -> String {
    match update {
        Update::InsertFact(f) => format!("+ {f}"),
        Update::DeleteFact(f) => format!("- {f}"),
        Update::InsertRule(r) => format!("+ {r}"),
        Update::DeleteRule(r) => format!("- {r}"),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    match verb {
        "submit" => {
            let (seq, rest) = match rest.strip_prefix("seq=") {
                Some(after) => {
                    let end = after.find(char::is_whitespace).unwrap_or(after.len());
                    let seq: u64 = after[..end]
                        .parse()
                        .map_err(|_| format!("bad sequence `seq={}`", &after[..end]))?;
                    (Some(seq), after[end..].trim_start())
                }
                None => (None, rest),
            };
            parse_update(rest).map(|update| Request::Submit { update, seq })
        }
        "client" => {
            if rest.is_empty() || rest.contains(char::is_whitespace) {
                Err("client needs one whitespace-free id (`client <id>`)".into())
            } else {
                Ok(Request::Hello { client: rest.to_string() })
            }
        }
        "query" => {
            let (at, body) = match rest.strip_prefix('@') {
                Some(after) => {
                    let end = after.find(char::is_whitespace).unwrap_or(after.len());
                    let version: u64 = after[..end]
                        .parse()
                        .map_err(|_| format!("bad version `@{}`", &after[..end]))?;
                    (Some(version), after[end..].trim_start())
                }
                None => (None, rest),
            };
            Query::parse(body.trim_end_matches('.'))
                .map(|query| Request::Query { query, at })
                .map_err(|e| format!("cannot parse query: {e}"))
        }
        "flush" if rest.is_empty() => Ok(Request::Flush),
        "compact" if rest.is_empty() => Ok(Request::Compact),
        "stats" if rest.is_empty() => Ok(Request::Stats),
        "metrics" if rest.is_empty() => Ok(Request::Metrics),
        "trace" => {
            if rest.is_empty() {
                Ok(Request::Trace { n: 16 })
            } else {
                rest.parse()
                    .map(|n| Request::Trace { n })
                    .map_err(|_| format!("bad span count `trace {rest}`"))
            }
        }
        "use" => {
            if rest.is_empty() || rest.contains(char::is_whitespace) {
                Err("use needs one database name (`use <db>`)".into())
            } else {
                Ok(Request::Use { db: rest.to_string() })
            }
        }
        "db" => {
            let (sub, name) = match rest.find(char::is_whitespace) {
                Some(i) => (&rest[..i], rest[i..].trim()),
                None => (rest, ""),
            };
            match sub {
                "list" if name.is_empty() => Ok(Request::DbList),
                "create" | "drop" => {
                    if name.is_empty() || name.contains(char::is_whitespace) {
                        Err(format!("db {sub} needs one database name (`db {sub} <name>`)"))
                    } else if sub == "create" {
                        Ok(Request::DbCreate { db: name.to_string() })
                    } else {
                        Ok(Request::DbDrop { db: name.to_string() })
                    }
                }
                other => Err(format!("unknown db subcommand `{other}` (create | list | drop)")),
            }
        }
        "quit" if rest.is_empty() => Ok(Request::Quit),
        "shutdown" if rest.is_empty() => Ok(Request::Shutdown),
        "" => Err("empty request".into()),
        other => Err(format!(
            "unknown verb `{other}` (submit | query | client | use | db | flush | compact | \
             stats | metrics | trace | quit | shutdown)"
        )),
    }
}

/// Renders a submit decision as its terminator line. Rejections lead with
/// the stable machine-readable `code=` token so clients can classify
/// (retryable vs deterministic) without parsing prose.
pub fn render_outcome(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Accepted { group, version } => format!("ok group={group} version={version}"),
        Outcome::Rejected(e) => format!("err code={} {e}", e.code()),
    }
}

/// Renders the stats snapshot as its terminator line.
///
/// The key order is **fixed** — part of the wire contract, so scripted
/// consumers (and diffs of captured output) stay stable across releases:
///
/// ```text
/// submitted accepted rejected groups commits committed_updates coalesced
/// flushes pending blocked snapshot_version snapshot_reads model_facts
/// worker_restarts deduped read_only
/// ```
///
/// followed, for storage-backed engines only, by
///
/// ```text
/// wal_txns wal_bytes recovered_txns recovered_updates recovered_torn_tail
/// recovered_quarantined recovery_ms snapshot_chain_len snapshot_seq
/// replay_mode
/// ```
///
/// New keys are only ever appended, never inserted or reordered.
pub fn render_stats(s: &ServiceStats) -> String {
    let mut line = format!(
        "ok submitted={} accepted={} rejected={} groups={} commits={} committed_updates={} \
         coalesced={} flushes={} pending={} blocked={} snapshot_version={} snapshot_reads={} \
         model_facts={} worker_restarts={} deduped={} read_only={}",
        s.submitted,
        s.accepted,
        s.rejected,
        s.groups,
        s.commits,
        s.committed_updates,
        s.coalesced,
        s.flushes,
        s.pending,
        s.blocked,
        s.snapshot_version,
        s.snapshot_reads,
        s.model_facts,
        s.worker_restarts,
        s.deduped,
        u8::from(s.read_only),
    );
    if let Some(d) = &s.durability {
        line.push_str(&format!(
            " wal_txns={} wal_bytes={} recovered_txns={} recovered_updates={} \
             recovered_torn_tail={} recovered_quarantined={}",
            d.wal_txns,
            d.wal_bytes,
            d.recovered_txns,
            d.recovered_updates,
            d.recovered_torn_tail,
            u8::from(d.recovered_quarantined),
        ));
        line.push_str(&format!(
            " recovery_ms={} snapshot_chain_len={} snapshot_seq={} replay_mode={}",
            d.recovery_ms,
            d.snapshot_chain_len,
            d.snapshot_seq,
            d.replay_mode.name(),
        ));
    }
    line
}

/// Renders the stats line for a tenant-bound connection: the fixed
/// [`render_stats`] sequence with ` db=<name> shards=<n>` **appended** at
/// the end — the legacy prefix never changes, so scripted consumers that
/// only know the single-database keys keep working against a cluster.
pub fn render_stats_for(s: &ServiceStats, db: &str, shards: u32) -> String {
    let mut line = render_stats(s);
    line.push_str(&format!(" db={db} shards={shards}"));
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_core::MaintenanceError;

    #[test]
    fn parses_submit_updates() {
        let Request::Submit { update: Update::InsertFact(f), seq: None } =
            parse_request("submit + p(1)").unwrap()
        else {
            panic!("expected fact insert")
        };
        assert_eq!(f, Fact::parse("p(1)").unwrap());
        let Request::Submit { update: Update::DeleteFact(_), seq: None } =
            parse_request("submit - p(1).").unwrap()
        else {
            panic!("expected fact delete")
        };
        let Request::Submit { update: Update::InsertRule(r), .. } =
            parse_request("submit + a(X) :- b(X), !c(X).").unwrap()
        else {
            panic!("expected rule insert")
        };
        assert_eq!(r.to_string(), "a(X) :- b(X), !c(X).");
    }

    #[test]
    fn parses_sequenced_submits_and_client_ids() {
        let Request::Submit { update: Update::InsertFact(f), seq: Some(42) } =
            parse_request("submit seq=42 + p(1)").unwrap()
        else {
            panic!("expected sequenced insert")
        };
        assert_eq!(f, Fact::parse("p(1)").unwrap());
        assert!(parse_request("submit seq=x + p(1)").is_err(), "non-numeric seq");
        let Request::Hello { client } = parse_request("client alice-7").unwrap() else {
            panic!("expected hello")
        };
        assert_eq!(client, "alice-7");
        assert!(parse_request("client").is_err(), "id required");
        assert!(parse_request("client two words").is_err(), "one token only");
        assert!(matches!(parse_request("shutdown").unwrap(), Request::Shutdown));
        assert!(parse_request("shutdown now").is_err());
    }

    #[test]
    fn parses_meta_verbs_strictly() {
        assert!(matches!(parse_request("flush").unwrap(), Request::Flush));
        assert!(matches!(parse_request("compact").unwrap(), Request::Compact));
        assert!(parse_request("compact now").is_err());
        assert!(matches!(parse_request("stats").unwrap(), Request::Stats));
        assert!(matches!(parse_request("quit").unwrap(), Request::Quit));
        assert!(matches!(
            parse_request("query rejected(X)").unwrap(),
            Request::Query { at: None, .. }
        ));
        assert!(parse_request("flush now").is_err());
        assert!(parse_request("submit p(1)").is_err(), "missing +/-");
        assert!(parse_request("frobnicate").is_err());
        assert!(parse_request("").is_err());
        assert!(parse_request("query !unsafe(X)").is_err());
    }

    #[test]
    fn parses_versioned_queries() {
        let Request::Query { query, at } = parse_request("query @42 rejected(X)").unwrap() else {
            panic!("expected query")
        };
        assert_eq!(at, Some(42));
        assert_eq!(query.to_string(), "rejected(X)");
        assert!(parse_request("query @x p(X)").is_err(), "non-numeric version");
        assert!(parse_request("query @42").is_err(), "version with no body");
    }

    #[test]
    fn tags_split_and_render() {
        assert_eq!(split_tag("#7 query p(X)"), (Some("7"), "query p(X)"));
        assert_eq!(split_tag("#req-1 flush"), (Some("req-1"), "flush"));
        assert_eq!(split_tag("query p(X)"), (None, "query p(X)"));
        // `#` alone is not a tag; neither is `# ` (empty token).
        assert_eq!(split_tag("# query p(X)"), (None, "# query p(X)"));
        assert_eq!(render_tagged(Some("7"), "ok group=1 version=1"), "#7 ok group=1 version=1");
        assert_eq!(render_tagged(None, "ok bye"), "ok bye");
        // Round-trip: a rendered tagged line splits back.
        let line = render_tagged(Some("a-b_c"), "row X = 1");
        assert_eq!(split_tag(&line), (Some("a-b_c"), "row X = 1"));
    }

    #[test]
    fn update_round_trips_through_render() {
        for line in ["+ p(1)", "- p(1)", "+ a(X) :- b(X).", "- a(X) :- b(X)."] {
            let u = parse_update(line).unwrap();
            assert_eq!(parse_update(&render_update(&u)).unwrap(), u, "{line}");
        }
        // Hostile symbols survive via quote-on-write.
        let u = parse_update("+ p(\"tricky. name\")").unwrap();
        assert_eq!(parse_update(&render_update(&u)).unwrap(), u);
    }

    #[test]
    fn outcome_lines() {
        assert_eq!(
            render_outcome(&Outcome::Accepted { group: 7, version: 3 }),
            "ok group=7 version=3"
        );
        let e = MaintenanceError::NotAsserted(Fact::parse("p(1)").unwrap());
        assert_eq!(
            render_outcome(&Outcome::Rejected(e)),
            "err code=not-asserted cannot delete `p(1)`: not an asserted fact"
        );
        // Infrastructure rejections surface their retryable codes.
        assert!(render_outcome(&Outcome::Rejected(MaintenanceError::ReadOnly))
            .starts_with("err code=read-only "));
        assert!(render_outcome(&Outcome::Rejected(MaintenanceError::Shutdown))
            .starts_with("err code=shutdown "));
        assert!(render_outcome(&Outcome::Rejected(MaintenanceError::Panicked("boom".into())))
            .starts_with("err code=panicked "));
    }

    #[test]
    fn parses_metrics_and_trace_verbs() {
        assert!(matches!(parse_request("metrics").unwrap(), Request::Metrics));
        assert!(parse_request("metrics all").is_err(), "metrics takes no argument");
        assert!(matches!(parse_request("trace").unwrap(), Request::Trace { n: 16 }));
        assert!(matches!(parse_request("trace 3").unwrap(), Request::Trace { n: 3 }));
        assert!(parse_request("trace many").is_err(), "span count must be numeric");
    }

    #[test]
    fn stats_key_order_is_fixed() {
        let s = ServiceStats {
            durability: Some(strata_core::DurabilityStats::default()),
            ..Default::default()
        };
        let line = render_stats(&s);
        let keys: Vec<&str> = line
            .trim_start_matches("ok ")
            .split(' ')
            .map(|kv| kv.split('=').next().unwrap())
            .collect();
        assert_eq!(
            keys,
            [
                "submitted",
                "accepted",
                "rejected",
                "groups",
                "commits",
                "committed_updates",
                "coalesced",
                "flushes",
                "pending",
                "blocked",
                "snapshot_version",
                "snapshot_reads",
                "model_facts",
                "worker_restarts",
                "deduped",
                "read_only",
                "wal_txns",
                "wal_bytes",
                "recovered_txns",
                "recovered_updates",
                "recovered_torn_tail",
                "recovered_quarantined",
                "recovery_ms",
                "snapshot_chain_len",
                "snapshot_seq",
                "replay_mode",
            ]
        );
    }

    #[test]
    fn parses_database_verbs() {
        let Request::Use { db } = parse_request("use tenant1").unwrap() else {
            panic!("expected use")
        };
        assert_eq!(db, "tenant1");
        assert!(parse_request("use").is_err(), "name required");
        assert!(parse_request("use two words").is_err(), "one token only");
        let Request::DbCreate { db } = parse_request("db create t2").unwrap() else {
            panic!("expected db create")
        };
        assert_eq!(db, "t2");
        let Request::DbDrop { db } = parse_request("db drop t2").unwrap() else {
            panic!("expected db drop")
        };
        assert_eq!(db, "t2");
        assert!(matches!(parse_request("db list").unwrap(), Request::DbList));
        assert!(parse_request("db").is_err());
        assert!(parse_request("db create").is_err());
        assert!(parse_request("db drop a b").is_err());
        assert!(parse_request("db list all").is_err());
        assert!(parse_request("db frobnicate x").is_err());
    }

    #[test]
    fn tenant_stats_suffix_is_appended_after_the_fixed_keys() {
        let s = ServiceStats {
            durability: Some(strata_core::DurabilityStats::default()),
            ..Default::default()
        };
        let legacy = render_stats(&s);
        let bound = render_stats_for(&s, "tenant1", 4);
        // The legacy line is a strict prefix: nothing inserted or reordered.
        assert!(bound.starts_with(&legacy), "{bound}");
        assert!(bound.ends_with(" db=tenant1 shards=4"), "{bound}");
    }

    #[test]
    fn stats_line_includes_durability_only_when_present() {
        let mut s = ServiceStats { submitted: 3, accepted: 2, rejected: 1, ..Default::default() };
        let line = render_stats(&s);
        assert!(line.starts_with("ok submitted=3 accepted=2 rejected=1"), "{line}");
        assert!(!line.contains("wal_txns"), "{line}");
        s.durability = Some(strata_core::DurabilityStats {
            recovered_txns: 4,
            wal_txns: 2,
            ..Default::default()
        });
        let line = render_stats(&s);
        assert!(line.contains("wal_txns=2") && line.contains("recovered_txns=4"), "{line}");
    }
}
